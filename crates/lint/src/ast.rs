//! # ast — Rust-lite item/block parser for the static lock analysis
//!
//! Parses a [`crate::token`] stream into the small slice of Rust the
//! lock-order analysis needs (DESIGN.md §13):
//!
//! * **struct fields** (name + base type + whether the field is a
//!   `Mutex`/`RwLock`/`Condvar`) — lock identity is keyed by
//!   `Type.field`;
//! * **statics** holding locks;
//! * **fn items** with their impl-type context, parameter types, and a
//!   flattened **event stream**: scope opens/closes, statement ends,
//!   guard acquisitions (`.lock()`/`.read()`/`.write()` and `try_`
//!   variants), condvar waits/notifies, `drop(..)` calls, ordinary
//!   calls, and `let`-alias typing hints.
//!
//! The parser is forgiving by design: anything it does not recognize is
//! skipped, and the analyses built on top are explicitly *approximate*
//! (the soundness/completeness trade is documented in DESIGN.md §13 and
//! cross-validated against the runtime sanitizer). It never panics on
//! arbitrary input — `fuzz_tests` in `lib.rs` drives it with garbage.

use crate::token::{tokenize, Tok, TokKind};

// ---------------------------------------------------------------------------
// Output model
// ---------------------------------------------------------------------------

/// Which lock primitive a field/static/local holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockKind {
    /// `parking_lot::Mutex` (or a std `Mutex` — indistinguishable here).
    Mutex,
    /// `parking_lot::RwLock`.
    RwLock,
    /// `parking_lot::Condvar` (a wait-graph node, not a guard source).
    Condvar,
}

/// One struct field declaration (all fields, lock-typed or not — the
/// non-lock ones drive `let`-alias typing).
#[derive(Clone, Debug)]
pub struct FieldDecl {
    /// Declaring struct's name.
    pub strukt: String,
    /// Field name.
    pub field: String,
    /// Last non-wrapper identifier of the field's type (`CommitPipeline`
    /// for `Option<Arc<CommitPipeline>>`), or empty if none.
    pub base_ty: String,
    /// `Some` iff the field's type mentions a lock primitive.
    pub lock: Option<LockKind>,
}

/// A `static` item whose type mentions a lock primitive.
#[derive(Clone, Debug)]
pub struct StaticLock {
    /// The static's name.
    pub name: String,
    /// Which primitive it holds.
    pub kind: LockKind,
}

/// How a guard is acquired (maps 1:1 onto the compat `parking_lot` API).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcqKind {
    /// `.lock()`
    Lock,
    /// `.read()`
    Read,
    /// `.write()`
    Write,
    /// `.try_lock()`
    TryLock,
    /// `.try_read()`
    TryRead,
    /// `.try_write()`
    TryWrite,
}

impl AcqKind {
    /// The primitive this acquisition belongs to.
    pub fn lock_kind(self) -> LockKind {
        match self {
            AcqKind::Lock | AcqKind::TryLock => LockKind::Mutex,
            _ => LockKind::RwLock,
        }
    }
}

/// What a `let` binding's initializer looked like — the typing hint the
/// analysis uses to resolve `var.field.lock()` receivers.
#[derive(Clone, Debug)]
pub enum AliasSrc {
    /// Explicit annotation or `Type::new(..)` init: the base type name.
    Type(String),
    /// Init was a field access chain ending in this field name.
    Field(String),
    /// Init was a call to this (bare) function name.
    Call(String),
}

/// One event in a function body, in source order. `Open`/`Close`/
/// `StmtEnd` give the analysis exact guard extents without a full
/// expression tree.
#[derive(Clone, Debug)]
pub enum Ev {
    /// A `{` — one scope deeper.
    Open,
    /// A `}` — scope closes; guards born inside die.
    Close,
    /// A `;` at statement level — temporaries die.
    StmtEnd,
    /// A lock acquisition.
    Acquire {
        /// Receiver path segments (`["shard", "state"]` for
        /// `shard.state.read()`). Last segment is the lock field/var.
        recv: Vec<String>,
        /// True when the receiver chain starts at an opaque expression
        /// (`foo().bar.lock()`), so the head variable is unknown.
        head_unknown: bool,
        /// Which acquisition method.
        kind: AcqKind,
        /// `Some(name)` when bound by the enclosing `let`; `None` for a
        /// temporary that dies at statement end.
        binding: Option<String>,
        /// True when the statement opens a block (`if let`, `while let`,
        /// `for`, `match`): the guard/temporary lives until that block
        /// closes instead of the statement end.
        til_block: bool,
        /// 1-based source line.
        line: u32,
    },
    /// `cv.wait(&mut g)` / `cv.wait_for(&mut g, ..)`.
    CvWait {
        /// Condvar receiver path.
        recv: Vec<String>,
        /// Whether the receiver head is opaque.
        head_unknown: bool,
        /// The paired guard variable (released during the wait).
        paired: String,
        /// 1-based source line.
        line: u32,
    },
    /// `cv.notify_one()` / `cv.notify_all()`.
    CvNotify {
        /// Condvar receiver path.
        recv: Vec<String>,
        /// Whether the receiver head is opaque.
        head_unknown: bool,
        /// 1-based source line.
        line: u32,
    },
    /// `drop(a)` / `drop((a, b))`: early guard release.
    DropVars {
        /// The identifiers inside the `drop(..)`.
        names: Vec<String>,
    },
    /// Any other call, by bare (last-segment) name.
    Call {
        /// Callee's bare name.
        name: String,
        /// True for `recv.name(..)` method calls.
        method: bool,
        /// Receiver path for method calls (`self.inner.apply()` →
        /// `["self", "inner"]`), or the `::` qualifier path for path
        /// calls (`Wal::open()` → `["Wal"]`). Empty for plain calls.
        recv: Vec<String>,
        /// Typing hint for an opaque receiver (empty `recv`): the
        /// struct-literal type or the producing call's name.
        head_hint: Option<HeadHint>,
        /// True when the argument list is empty (`x.join()` vs
        /// `path.join("wal")` — some blocking rules require this).
        empty: bool,
        /// 1-based source line.
        line: u32,
    },
    /// `let name = Mutex::new(..)`-style local lock definition.
    LocalLock {
        /// Bound variable.
        name: String,
        /// Which primitive.
        kind: LockKind,
    },
    /// Typing hint from a `let` binding.
    Alias {
        /// Bound variable.
        name: String,
        /// What the initializer looked like.
        src: AliasSrc,
    },
}

/// How an opaque method-call receiver can still be typed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeadHint {
    /// `Lexer { .. }.run()` — a struct-literal receiver of this type.
    Ty(String),
    /// `shard.svc().client()` — the receiver is the result of calling
    /// this function; its return type types the receiver.
    CallRet(String),
}

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type's last path segment, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the declared return type mentions `Result`.
    pub returns_result: bool,
    /// Last non-wrapper identifier of the return type (for `let` alias
    /// typing through calls), or empty.
    pub ret_base: String,
    /// True under `#[cfg(test)]` or `#[test]`.
    pub in_test: bool,
    /// Whether the fn takes a `self` receiver (a *method*). Used to
    /// restrict call resolution: `x.foo()` never reaches a free `foo`.
    pub has_self: bool,
    /// `(name, base type)` for each non-self parameter.
    pub params: Vec<(String, String)>,
    /// The body event stream (empty for bodyless trait methods).
    pub body: Vec<Ev>,
}

/// Everything the analysis needs from one source file.
#[derive(Clone, Debug, Default)]
pub struct FileAst {
    /// All parsed fn items.
    pub fns: Vec<FnDef>,
    /// All struct field declarations.
    pub fields: Vec<FieldDecl>,
    /// Lock-typed statics.
    pub statics: Vec<StaticLock>,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Type-path segments that wrap rather than name a value's base type.
const WRAPPERS: &[&str] = &[
    "Arc", "Rc", "Box", "Option", "Vec", "VecDeque", "Cell", "RefCell", "Result", "std", "sync",
    "collections", "crate", "super", "self", "Self", "dyn", "impl", "mut", "ref", "HashMap",
    "BTreeMap",
];

/// The "base type" of a type-token run, used for alias resolution: the
/// first uppercase identifier that is neither a wrapper nor a lock
/// primitive (`Option<Arc<CommitPipeline>>` → `CommitPipeline`,
/// `Mutex<PipelineState>` → `PipelineState`). When only lock primitives
/// appear (`Arc<Mutex<u32>>`), the first of those wins — the resolver
/// treats a lock-named base type as "this variable *is* a lock".
fn base_ty(toks: &[Tok<'_>]) -> String {
    let uppercase_ident = |t: &&Tok<'_>| {
        t.kind == TokKind::Ident
            && !WRAPPERS.contains(&t.text)
            && t.text.chars().next().is_some_and(|c| c.is_uppercase())
    };
    let is_lock = |s: &str| matches!(s, "Mutex" | "RwLock" | "Condvar");
    if let Some(t) = toks.iter().filter(uppercase_ident).find(|t| !is_lock(t.text)) {
        return t.text.to_string();
    }
    toks.iter()
        .filter(uppercase_ident)
        .find(|t| is_lock(t.text))
        .map(|t| t.text.to_string())
        .unwrap_or_default()
}

fn lock_kind_of(toks: &[Tok<'_>]) -> Option<LockKind> {
    for t in toks {
        if t.kind == TokKind::Ident {
            match t.text {
                "Mutex" => return Some(LockKind::Mutex),
                "RwLock" => return Some(LockKind::RwLock),
                "Condvar" => return Some(LockKind::Condvar),
                _ => {}
            }
        }
    }
    None
}

fn acq_kind(name: &str) -> Option<AcqKind> {
    Some(match name {
        "lock" => AcqKind::Lock,
        "read" => AcqKind::Read,
        "write" => AcqKind::Write,
        "try_lock" => AcqKind::TryLock,
        "try_read" => AcqKind::TryRead,
        "try_write" => AcqKind::TryWrite,
        _ => return None,
    })
}

struct Parser<'a> {
    toks: Vec<Tok<'a>>,
    i: usize,
    out: FileAst,
}

/// Parse one file's source. Never panics; unrecognized constructs are
/// skipped.
pub fn parse_file(src: &str) -> FileAst {
    let toks: Vec<Tok<'_>> = tokenize(src)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut p = Parser {
        toks,
        i: 0,
        out: FileAst::default(),
    };
    p.items(None, false, 0);
    p.out
}

impl<'a> Parser<'a> {
    fn at(&self, off: usize) -> Option<&Tok<'a>> {
        self.toks.get(self.i + off)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    /// Skip a balanced `(..)`, `[..]`, `{..}`, or `<..>` group whose
    /// opener is the current token; no-op otherwise.
    fn skip_group(&mut self) {
        let (open, close) = match self.at(0).map(|t| t.kind) {
            Some(TokKind::Punct(b'(')) => (b'(', b')'),
            Some(TokKind::Punct(b'[')) => (b'[', b']'),
            Some(TokKind::Punct(b'{')) => (b'{', b'}'),
            Some(TokKind::Punct(b'<')) => (b'<', b'>'),
            _ => return,
        };
        let mut depth = 0i64;
        while let Some(t) = self.at(0) {
            match t.kind {
                TokKind::Punct(p) if p == open => depth += 1,
                TokKind::Punct(p) if p == close => {
                    // `->` is not a generics closer.
                    if close == b'>' && self.prev_is_dash() {
                        self.bump();
                        continue;
                    }
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    fn prev_is_dash(&self) -> bool {
        self.i > 0
            && self
                .toks
                .get(self.i - 1)
                .is_some_and(|t| t.kind == TokKind::Punct(b'-'))
    }

    /// Item-level loop inside `impl`/`mod`/file scope. `depth` guards
    /// against pathological nesting on fuzz input.
    fn items(&mut self, impl_type: Option<&str>, in_test: bool, depth: u32) {
        if depth > 64 {
            return;
        }
        let mut attr_test = false;
        while let Some(t) = self.at(0) {
            match t.kind {
                TokKind::Punct(b'}') => {
                    self.bump();
                    return;
                }
                TokKind::Punct(b'#') => {
                    // Attribute: `#[...]` (or `#![...]`). Remember
                    // cfg(test)/test markers for the next item.
                    self.bump();
                    if self.at(0).is_some_and(|t| t.is_punct(b'!')) {
                        self.bump();
                    }
                    let start = self.i;
                    self.skip_group();
                    let body: Vec<&str> = self.toks[start..self.i.min(self.toks.len())]
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text)
                        .collect();
                    if body.first() == Some(&"cfg") && body.contains(&"test")
                        || body.first() == Some(&"test")
                    {
                        attr_test = true;
                    }
                }
                TokKind::Ident => {
                    let word = t.text;
                    match word {
                        "struct" => {
                            self.bump();
                            self.parse_struct();
                            attr_test = false;
                        }
                        "static" | "const" => {
                            self.bump();
                            // `const fn …` is a function, not an item
                            // binding — let the `fn` arm pick it up.
                            if !self.at(0).is_some_and(|t| t.is_ident("fn")) {
                                self.parse_static();
                            }
                            attr_test = false;
                        }
                        "impl" => {
                            self.bump();
                            self.parse_impl(in_test, depth);
                            attr_test = false;
                        }
                        "mod" => {
                            self.bump();
                            // `mod name {` or `mod name;`
                            if self.at(0).map(|t| t.kind) == Some(TokKind::Ident) {
                                self.bump();
                            }
                            if self.at(0).is_some_and(|t| t.is_punct(b'{')) {
                                self.bump();
                                self.items(impl_type, in_test || attr_test, depth + 1);
                            }
                            attr_test = false;
                        }
                        "trait" => {
                            self.bump();
                            // `trait Name<..>: Bounds {` — items inside.
                            while let Some(t) = self.at(0) {
                                if t.is_punct(b'{') || t.is_punct(b';') {
                                    break;
                                }
                                if t.is_punct(b'<') {
                                    self.skip_group();
                                } else {
                                    self.bump();
                                }
                            }
                            if self.at(0).is_some_and(|t| t.is_punct(b'{')) {
                                self.bump();
                                self.items(impl_type, in_test, depth + 1);
                            }
                            attr_test = false;
                        }
                        "fn" => {
                            self.bump();
                            self.parse_fn(impl_type, in_test || attr_test);
                            attr_test = false;
                        }
                        _ => {
                            self.bump();
                        }
                    }
                }
                TokKind::Punct(b'{') => {
                    // An unexpected brace at item level (enum body, union,
                    // …): recurse so inner items are still found.
                    self.bump();
                    self.items(impl_type, in_test, depth + 1);
                }
                _ => self.bump(),
            }
        }
    }

    /// After the `struct` keyword: record all named fields.
    fn parse_struct(&mut self) {
        let Some(name_tok) = self.at(0) else { return };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let strukt = name_tok.text.to_string();
        self.bump();
        if self.at(0).is_some_and(|t| t.is_punct(b'<')) {
            self.skip_group();
        }
        // Tuple struct: `struct X(..);` — skip to the `;`.
        if self.at(0).is_some_and(|t| t.is_punct(b'(')) {
            self.skip_group();
            while let Some(t) = self.at(0) {
                let done = t.is_punct(b';');
                self.bump();
                if done {
                    return;
                }
            }
            return;
        }
        // Skip a `where` clause (or give up at `;` for unit structs).
        while let Some(t) = self.at(0) {
            if t.is_punct(b'{') {
                break;
            }
            if t.is_punct(b';') {
                self.bump();
                return;
            }
            if t.is_punct(b'<') {
                self.skip_group();
            } else {
                self.bump();
            }
        }
        if !self.at(0).is_some_and(|t| t.is_punct(b'{')) {
            return;
        }
        self.bump(); // `{`
        loop {
            match self.at(0) {
                None => return,
                Some(t) if t.is_punct(b'}') => {
                    self.bump();
                    return;
                }
                Some(t) if t.is_punct(b'#') => {
                    self.bump();
                    self.skip_group();
                }
                Some(t) if t.is_ident("pub") => {
                    self.bump();
                    if self.at(0).is_some_and(|t| t.is_punct(b'(')) {
                        self.skip_group();
                    }
                }
                Some(t) if t.kind == TokKind::Ident => {
                    let field = t.text.to_string();
                    self.bump();
                    if !self.at(0).is_some_and(|t| t.is_punct(b':')) {
                        continue;
                    }
                    self.bump();
                    // Collect type tokens up to a `,` or the closing `}`
                    // at group depth 0.
                    let start = self.i;
                    let mut angle = 0i64;
                    while let Some(t) = self.at(0) {
                        match t.kind {
                            TokKind::Punct(b'<') => {
                                angle += 1;
                                self.bump();
                            }
                            TokKind::Punct(b'>') => {
                                if !self.prev_is_dash() {
                                    angle -= 1;
                                }
                                self.bump();
                            }
                            TokKind::Punct(b'(') | TokKind::Punct(b'[') => self.skip_group(),
                            TokKind::Punct(b',') if angle <= 0 => break,
                            TokKind::Punct(b'}') if angle <= 0 => break,
                            _ => self.bump(),
                        }
                    }
                    let ty = &self.toks[start.min(self.toks.len())..self.i.min(self.toks.len())];
                    self.out.fields.push(FieldDecl {
                        strukt: strukt.clone(),
                        field,
                        base_ty: base_ty(ty),
                        lock: lock_kind_of(ty),
                    });
                    if self.at(0).is_some_and(|t| t.is_punct(b',')) {
                        self.bump();
                    }
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// After `static`/`const`: record the item if its type holds a lock.
    fn parse_static(&mut self) {
        if self.at(0).is_some_and(|t| t.is_ident("mut")) {
            self.bump();
        }
        let Some(name_tok) = self.at(0) else { return };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.to_string();
        self.bump();
        if !self.at(0).is_some_and(|t| t.is_punct(b':')) {
            return;
        }
        self.bump();
        let start = self.i;
        while let Some(t) = self.at(0) {
            if t.is_punct(b'=') || t.is_punct(b';') {
                break;
            }
            if t.is_punct(b'<') {
                self.skip_group();
            } else {
                self.bump();
            }
        }
        let ty: Vec<Tok<'a>> =
            self.toks[start.min(self.toks.len())..self.i.min(self.toks.len())].to_vec();
        if let Some(kind) = lock_kind_of(&ty) {
            self.out.statics.push(StaticLock { name, kind });
        }
    }

    /// After the `impl` keyword: resolve the implemented type's last path
    /// segment, then parse the items inside.
    fn parse_impl(&mut self, in_test: bool, depth: u32) {
        if self.at(0).is_some_and(|t| t.is_punct(b'<')) {
            self.skip_group();
        }
        let start = self.i;
        while let Some(t) = self.at(0) {
            if t.is_punct(b'{') || t.is_punct(b';') {
                break;
            }
            if t.is_punct(b'<') {
                self.skip_group();
            } else {
                self.bump();
            }
        }
        let header = &self.toks[start.min(self.toks.len())..self.i.min(self.toks.len())];
        // `impl Trait for Type` names Type after `for`; `impl Type` names
        // it directly. `where` clauses end the type path.
        let mut seg = header;
        if let Some(pos) = header.iter().position(|t| t.is_ident("for")) {
            seg = header.get(pos + 1..).unwrap_or(&[]);
        }
        let impl_type = seg
            .iter()
            .take_while(|t| !t.is_ident("where"))
            .find(|t| {
                t.kind == TokKind::Ident
                    && !WRAPPERS.contains(&t.text)
                    && t.text.chars().next().is_some_and(|c| c.is_uppercase())
            })
            .map(|t| t.text.to_string());
        if self.at(0).is_some_and(|t| t.is_punct(b'{')) {
            self.bump();
            self.items(impl_type.as_deref(), in_test, depth + 1);
        }
    }

    /// After the `fn` keyword: signature + body event stream.
    fn parse_fn(&mut self, impl_type: Option<&str>, in_test: bool) {
        let Some(name_tok) = self.at(0) else { return };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.to_string();
        let line = name_tok.line;
        self.bump();
        if self.at(0).is_some_and(|t| t.is_punct(b'<')) {
            self.skip_group();
        }
        // Parameters.
        let mut params = Vec::new();
        let mut has_self = false;
        if self.at(0).is_some_and(|t| t.is_punct(b'(')) {
            self.bump();
            let mut depth = 0i64;
            let mut cur: Vec<Tok<'a>> = Vec::new();
            let mut groups: Vec<Vec<Tok<'a>>> = Vec::new();
            while let Some(t) = self.at(0) {
                match t.kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'<') => {
                        depth += 1;
                        cur.push(*t);
                        self.bump();
                    }
                    TokKind::Punct(b'>') if self.prev_is_dash() => {
                        cur.push(*t);
                        self.bump();
                    }
                    TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'>') => {
                        if t.is_punct(b')') && depth == 0 {
                            self.bump();
                            break;
                        }
                        depth -= 1;
                        cur.push(*t);
                        self.bump();
                    }
                    TokKind::Punct(b',') if depth == 0 => {
                        groups.push(std::mem::take(&mut cur));
                        self.bump();
                    }
                    _ => {
                        cur.push(*t);
                        self.bump();
                    }
                }
            }
            if !cur.is_empty() {
                groups.push(cur);
            }
            for g in groups {
                let Some(colon) = g.iter().position(|t| t.is_punct(b':')) else {
                    // `self`, `&mut self`, `self` behind lifetimes.
                    if g.iter().any(|t| t.is_ident("self")) {
                        has_self = true;
                    }
                    continue;
                };
                let pname = g[..colon]
                    .iter()
                    .rev()
                    .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
                    .map(|t| t.text.to_string());
                let Some(pname) = pname else { continue };
                if pname == "self" {
                    // `self: Arc<Self>` style receiver.
                    has_self = true;
                    continue;
                }
                params.push((pname, base_ty(g.get(colon + 1..).unwrap_or(&[]))));
            }
        }
        // Return type (up to `{`, `;`, or `where`).
        let ret_start = self.i;
        while let Some(t) = self.at(0) {
            if t.is_punct(b'{') || t.is_punct(b';') || t.is_ident("where") {
                break;
            }
            if t.is_punct(b'<') {
                self.skip_group();
            } else {
                self.bump();
            }
        }
        let ret_toks: Vec<Tok<'a>> =
            self.toks[ret_start.min(self.toks.len())..self.i.min(self.toks.len())].to_vec();
        let returns_result = ret_toks.iter().any(|t| t.is_ident("Result"));
        let ret_base = base_ty(&ret_toks);
        // Skip a `where` clause.
        while let Some(t) = self.at(0) {
            if t.is_punct(b'{') || t.is_punct(b';') {
                break;
            }
            self.bump();
        }
        let body = if self.at(0).is_some_and(|t| t.is_punct(b'{')) {
            self.bump();
            self.parse_body()
        } else {
            if self.at(0).is_some_and(|t| t.is_punct(b';')) {
                self.bump();
            }
            Vec::new()
        };
        self.out.fns.push(FnDef {
            name,
            impl_type: impl_type.map(str::to_string),
            line,
            returns_result,
            ret_base,
            in_test,
            has_self,
            params,
            body,
        });
    }

    /// Body walker: from just after the opening `{` to its matching `}`.
    /// Produces the flat event stream the analyzer consumes.
    fn parse_body(&mut self) -> Vec<Ev> {
        let mut evs = Vec::new();
        let mut depth = 0i64;
        // Statement state.
        let mut stmt_start = true;
        let mut til_block = false;
        let mut pending_let: Option<String> = None;
        let mut let_consumed = false;
        let mut init_toks: Vec<Tok<'a>> = Vec::new();
        let mut collecting_init = false;

        macro_rules! end_stmt {
            () => {
                if let Some(name) = pending_let.take() {
                    if !let_consumed {
                        emit_alias(&mut evs, &name, &init_toks);
                    }
                }
                init_toks.clear();
                collecting_init = false;
                til_block = false;
                stmt_start = true;
                let_consumed = false;
            };
        }

        while let Some(t) = self.at(0).copied() {
            match t.kind {
                TokKind::Punct(b'{') => {
                    evs.push(Ev::Open);
                    depth += 1;
                    self.bump();
                    // Entering a block ends the header of an
                    // `if`/`while`/`for`/`match` statement.
                    if let Some(name) = pending_let.take() {
                        if !let_consumed {
                            emit_alias(&mut evs, &name, &init_toks);
                        }
                    }
                    init_toks.clear();
                    collecting_init = false;
                    til_block = false;
                    stmt_start = true;
                    let_consumed = false;
                }
                TokKind::Punct(b'}') => {
                    self.bump();
                    if depth == 0 {
                        if let Some(name) = pending_let.take() {
                            if !let_consumed {
                                emit_alias(&mut evs, &name, &init_toks);
                            }
                        }
                        return evs;
                    }
                    evs.push(Ev::Close);
                    depth -= 1;
                    stmt_start = true;
                }
                TokKind::Punct(b';') => {
                    self.bump();
                    end_stmt!();
                    evs.push(Ev::StmtEnd);
                }
                TokKind::Ident => {
                    let word = t.text;
                    if stmt_start && matches!(word, "if" | "while" | "for" | "match" | "loop") {
                        til_block = true;
                        stmt_start = false;
                        self.bump();
                        continue;
                    }
                    if word == "else" {
                        // `} else if let …` — keep statement-head state so
                        // the chained `if` still scopes guards to its block.
                        self.bump();
                        continue;
                    }
                    if word == "let" {
                        self.bump();
                        // Pattern up to `=` (stop early at `{`/`;` on
                        // malformed input).
                        let mut last_ident: Option<String> = None;
                        let mut annot: Vec<Tok<'a>> = Vec::new();
                        let mut in_annot = false;
                        while let Some(pt) = self.at(0) {
                            if pt.is_punct(b'=')
                                && !self.at(1).is_some_and(|n| n.is_punct(b'='))
                            {
                                self.bump();
                                break;
                            }
                            if pt.is_punct(b'{') || pt.is_punct(b';') {
                                break;
                            }
                            if pt.is_punct(b':') {
                                in_annot = true;
                                self.bump();
                                continue;
                            }
                            if pt.kind == TokKind::Ident {
                                if in_annot {
                                    annot.push(*pt);
                                } else if !matches!(
                                    pt.text,
                                    "mut" | "ref" | "box" | "Some" | "Ok" | "Err" | "None"
                                ) {
                                    last_ident = Some(pt.text.to_string());
                                }
                            }
                            self.bump();
                        }
                        if let Some(name) = last_ident {
                            if !annot.is_empty() {
                                push_typed(&mut evs, &name, base_ty(&annot));
                            }
                            pending_let = Some(name);
                            let_consumed = false;
                        } else {
                            pending_let = None;
                        }
                        init_toks.clear();
                        collecting_init = pending_let.is_some();
                        stmt_start = false;
                        continue;
                    }
                    if stmt_start {
                        stmt_start = false;
                    }
                    // Free call / macro / plain ident.
                    if self.at(1).is_some_and(|n| n.is_punct(b'(')) {
                        if word == "drop" && !self.prev_is_dot() {
                            // drop(a) / drop((a, b))
                            let mut names = Vec::new();
                            self.bump(); // drop
                            let mut pd = 0i64;
                            while let Some(at) = self.at(0) {
                                match at.kind {
                                    TokKind::Punct(b'(') => {
                                        pd += 1;
                                        self.bump();
                                    }
                                    TokKind::Punct(b')') => {
                                        pd -= 1;
                                        self.bump();
                                        if pd <= 0 {
                                            break;
                                        }
                                    }
                                    TokKind::Ident => {
                                        names.push(at.text.to_string());
                                        self.bump();
                                    }
                                    _ => self.bump(),
                                }
                            }
                            evs.push(Ev::DropVars { names });
                            continue;
                        }
                        if !matches!(
                            word,
                            "if" | "while"
                                | "for"
                                | "match"
                                | "return"
                                | "move"
                                | "Some"
                                | "Ok"
                                | "Err"
                                | "None"
                        ) {
                            let method = self.prev_is_dot();
                            let recv = if method {
                                self.path_ending(self.i.saturating_sub(1)).0
                            } else if self.i >= 2
                                && self.toks[self.i - 1].is_punct(b':')
                                && self.toks[self.i - 2].is_punct(b':')
                            {
                                self.path_ending(self.i - 2).0
                            } else {
                                Vec::new()
                            };
                            let head_hint = if method && recv.is_empty() {
                                self.i.checked_sub(2).and_then(|e| self.opaque_head_hint(e))
                            } else {
                                None
                            };
                            evs.push(Ev::Call {
                                name: word.to_string(),
                                method,
                                recv,
                                head_hint,
                                empty: self.at(2).is_some_and(|t| t.is_punct(b')')),
                                line: t.line,
                            });
                        }
                    } else if self.at(1).is_some_and(|n| n.is_punct(b'!')) {
                        // Macro: skip the name and bang; contents are
                        // walked as ordinary tokens.
                        if collecting_init {
                            init_toks.push(t);
                        }
                        self.bump();
                        self.bump();
                        continue;
                    }
                    if collecting_init {
                        init_toks.push(t);
                    }
                    self.bump();
                }
                TokKind::Punct(b'.') => {
                    // Method call? Look ahead: `.name(` — acquisitions,
                    // condvar ops, and generic method calls.
                    if let (Some(name_t), Some(paren)) = (self.at(1).copied(), self.at(2).copied())
                    {
                        if name_t.kind == TokKind::Ident && paren.is_punct(b'(') {
                            let mname = name_t.text;
                            if let Some(kind) = acq_kind(mname) {
                                if self.at(3).is_some_and(|x| x.is_punct(b')')) {
                                    let (recv, head_unknown) = self.receiver_path();
                                    let binding = self.acq_binding(&mut pending_let, 4);
                                    if binding.is_some() {
                                        let_consumed = true;
                                    }
                                    evs.push(Ev::Acquire {
                                        recv,
                                        head_unknown,
                                        kind,
                                        binding,
                                        til_block,
                                        line: name_t.line,
                                    });
                                    self.bump(); // .
                                    self.bump(); // name
                                    self.bump(); // (
                                    self.bump(); // )
                                    continue;
                                }
                            }
                            if (mname == "wait" || mname == "wait_for")
                                && self.at(3).is_some_and(|x| x.is_punct(b'&'))
                                && self.at(4).is_some_and(|x| x.is_ident("mut"))
                                && self.at(5).map(|x| x.kind) == Some(TokKind::Ident)
                            {
                                let (recv, head_unknown) = self.receiver_path();
                                let paired =
                                    self.at(5).map(|x| x.text.to_string()).unwrap_or_default();
                                evs.push(Ev::CvWait {
                                    recv,
                                    head_unknown,
                                    paired,
                                    line: name_t.line,
                                });
                                self.bump(); // .
                                self.bump(); // wait
                                continue;
                            }
                            if mname == "notify_one" || mname == "notify_all" {
                                let (recv, head_unknown) = self.receiver_path();
                                evs.push(Ev::CvNotify {
                                    recv,
                                    head_unknown,
                                    line: name_t.line,
                                });
                                self.bump();
                                self.bump();
                                continue;
                            }
                        }
                    }
                    if collecting_init {
                        init_toks.push(t);
                    }
                    self.bump();
                }
                _ => {
                    if collecting_init {
                        init_toks.push(t);
                    }
                    if stmt_start && !matches!(t.kind, TokKind::Punct(b'#')) {
                        stmt_start = false;
                    }
                    self.bump();
                }
            }
        }
        evs
    }

    fn prev_is_dot(&self) -> bool {
        self.i > 0
            && self
                .toks
                .get(self.i - 1)
                .is_some_and(|t| t.kind == TokKind::Punct(b'.'))
    }

    /// Walk back from the current `.` to collect the receiver's
    /// `ident(.ident)*` path. Returns the segments in source order plus
    /// whether the chain starts at an opaque expression (call result,
    /// index, `?`).
    fn receiver_path(&self) -> (Vec<String>, bool) {
        self.path_ending(self.i)
    }

    /// Recover a typing hint for an opaque method-call receiver whose
    /// last token sits at index `end`: a struct-literal receiver
    /// (`Lexer { .. }.run()` → [`HeadHint::Ty`]) or a call-result
    /// receiver (`shard.svc().client()` → [`HeadHint::CallRet`]), with
    /// a single trailing `?` tolerated (`open()?.lock()`).
    fn opaque_head_hint(&self, mut end: usize) -> Option<HeadHint> {
        if self.toks.get(end)?.is_punct(b'?') {
            end = end.checked_sub(1)?;
        }
        let (open, close) = match self.toks.get(end)?.kind {
            TokKind::Punct(b')') => (b'(', b')'),
            TokKind::Punct(b'}') => (b'{', b'}'),
            _ => return None,
        };
        let mut depth = 0i64;
        let mut k = end;
        loop {
            let tk = self.toks.get(k)?;
            if tk.is_punct(close) {
                depth += 1;
            } else if tk.is_punct(open) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k = k.checked_sub(1)?;
        }
        let prev = self.toks.get(k.checked_sub(1)?)?;
        if prev.kind != TokKind::Ident {
            return None;
        }
        let name = prev.text.to_string();
        if open == b'(' {
            // `name(..)` — but only if this really is a call, not a
            // parenthesized expression after a keyword (`if (x) {..}`)
            // or a tuple. Keywords never name calls.
            if matches!(
                name.as_str(),
                "if" | "while" | "for" | "match" | "return" | "in" | "move"
            ) {
                return None;
            }
            Some(HeadHint::CallRet(name))
        } else if name.chars().next().is_some_and(char::is_uppercase) {
            // `Name { .. }.method()` — a struct literal. A lowercase
            // ident before `{` is a block tail (`match x { .. }`).
            Some(HeadHint::Ty(name))
        } else {
            None
        }
    }

    /// [`Self::receiver_path`] generalized: collect the `ident(.ident |
    /// ::ident)*` path that ends just *before* token index `j`.
    fn path_ending(&self, j: usize) -> (Vec<String>, bool) {
        let mut segs: Vec<String> = Vec::new();
        let mut j = j;
        loop {
            if j == 0 {
                break;
            }
            let prev = &self.toks[j - 1];
            if prev.kind == TokKind::Ident {
                segs.push(prev.text.to_string());
                j -= 1;
                // Continue over a preceding `.` or `::`.
                if j >= 1 && self.toks[j - 1].is_punct(b'.') {
                    j -= 1;
                    continue;
                }
                if j >= 2
                    && self.toks[j - 1].is_punct(b':')
                    && self.toks[j - 2].is_punct(b':')
                {
                    j -= 2;
                    continue;
                }
                break;
            }
            break;
        }
        segs.reverse();
        let head_unknown = if segs.is_empty() {
            true
        } else {
            j > 0
                && self
                    .toks
                    .get(j - 1)
                    .is_some_and(|t| {
                        t.is_punct(b')') || t.is_punct(b']') || t.is_punct(b'?')
                    })
        };
        (segs, head_unknown)
    }

    /// Decide whether the acquisition whose `(` `)` sit at offsets
    /// `off-1`/`off` binds the pending `let`: the expression must end
    /// right after (`;`, `{`, `else`), modulo a tail of
    /// `.unwrap()`/`.expect(..)` (std-lock idiom).
    fn acq_binding(&self, pending: &mut Option<String>, mut off: usize) -> Option<String> {
        pending.as_ref()?;
        loop {
            match self.at(off) {
                Some(t) if t.is_punct(b';') || t.is_punct(b'{') || t.is_ident("else") => {
                    return pending.take();
                }
                Some(t) if t.is_punct(b'.') => {
                    let name = self.at(off + 1)?;
                    if name.is_ident("unwrap") || name.is_ident("expect") {
                        // Skip `.unwrap()` / `.expect("...")`.
                        let mut k = off + 2;
                        if !self.at(k).is_some_and(|t| t.is_punct(b'(')) {
                            return None;
                        }
                        let mut depth = 0i64;
                        loop {
                            match self.at(k) {
                                Some(t) if t.is_punct(b'(') => depth += 1,
                                Some(t) if t.is_punct(b')') => {
                                    depth -= 1;
                                    if depth <= 0 {
                                        break;
                                    }
                                }
                                Some(_) => {}
                                None => return None,
                            }
                            k += 1;
                        }
                        off = k + 1;
                        continue;
                    }
                    return None;
                }
                _ => return None,
            }
        }
    }
}

/// Emit a typing hint for variable `name` given its base type `b` — a
/// lock-named base means the variable *is* a lock.
fn push_typed(evs: &mut Vec<Ev>, name: &str, b: String) {
    let kind = match b.as_str() {
        "Mutex" => Some(LockKind::Mutex),
        "RwLock" => Some(LockKind::RwLock),
        "Condvar" => Some(LockKind::Condvar),
        _ => None,
    };
    if let Some(kind) = kind {
        evs.push(Ev::LocalLock {
            name: name.to_string(),
            kind,
        });
    } else if !b.is_empty() {
        evs.push(Ev::Alias {
            name: name.to_string(),
            src: AliasSrc::Type(b),
        });
    }
}

/// Emit the best typing hint for `let name = <init>;` from the collected
/// initializer tokens.
fn emit_alias(evs: &mut Vec<Ev>, name: &str, init: &[Tok<'_>]) {
    if init.is_empty() {
        return;
    }
    // `Mutex::new(..)` → local lock; `Type::new(..)` / `Type { .. }` → Type.
    let b = base_ty(init);
    if !b.is_empty() {
        push_typed(evs, name, b);
        return;
    }
    // Field-access chain: last `.field` ident not directly called.
    let mut last_field: Option<&str> = None;
    let mut last_call: Option<&str> = None;
    let mut k = 0usize;
    while k < init.len() {
        if init[k].kind == TokKind::Ident {
            let called = init.get(k + 1).is_some_and(|t| t.is_punct(b'('));
            let after_dot = k > 0 && init[k - 1].is_punct(b'.');
            if called {
                last_call = Some(init[k].text);
                last_field = None;
            } else if after_dot || k == 0 {
                last_field = Some(init[k].text);
            }
        }
        k += 1;
    }
    if let Some(f) = last_field {
        if init.iter().filter(|t| t.kind == TokKind::Ident).count() > 1 {
            evs.push(Ev::Alias {
                name: name.to_string(),
                src: AliasSrc::Field(f.to_string()),
            });
            return;
        }
        // Single bare ident: an alias of another variable — model as a
        // field-style lookup that the resolver treats as a var copy.
        evs.push(Ev::Alias {
            name: name.to_string(),
            src: AliasSrc::Field(f.to_string()),
        });
        return;
    }
    if let Some(c) = last_call {
        evs.push(Ev::Alias {
            name: name.to_string(),
            src: AliasSrc::Call(c.to_string()),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<FnDef> {
        parse_file(src).fns
    }

    #[test]
    fn parses_fn_with_impl_context_and_params() {
        let f = fns("impl Shard { fn go(&self, pipeline: &Arc<CommitPipeline>) -> Result<(), E> {} }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "go");
        assert_eq!(f[0].impl_type.as_deref(), Some("Shard"));
        assert_eq!(f[0].params, vec![("pipeline".to_string(), "CommitPipeline".to_string())]);
        assert!(f[0].returns_result);
    }

    #[test]
    fn struct_lock_fields_are_recorded() {
        let ast = parse_file(
            "struct CommitPipeline { inner: Mutex<PipelineState>, work: Condvar }\n\
             struct Shard { state: RwLock<ShardState>, cache: ResultCache }\n",
        );
        let locks: Vec<(&str, &str)> = ast
            .fields
            .iter()
            .filter(|f| f.lock.is_some())
            .map(|f| (f.strukt.as_str(), f.field.as_str()))
            .collect();
        assert_eq!(
            locks,
            [("CommitPipeline", "inner"), ("CommitPipeline", "work"), ("Shard", "state")]
        );
        let cache = ast.fields.iter().find(|f| f.field == "cache").expect("cache field");
        assert_eq!(cache.base_ty, "ResultCache");
    }

    #[test]
    fn body_events_capture_guard_lifecycle() {
        let f = fns(
            "fn go(m: &M) {\n\
               let g = m.inner.lock();\n\
               helper(1);\n\
               drop(g);\n\
               m.other.read();\n\
             }\n",
        );
        let evs = &f[0].body;
        let mut saw_bound = false;
        let mut saw_temp = false;
        let mut saw_call = false;
        let mut saw_drop = false;
        for e in evs {
            match e {
                Ev::Acquire { recv, binding, .. } => {
                    if binding.as_deref() == Some("g") {
                        assert_eq!(recv, &["m", "inner"]);
                        saw_bound = true;
                    } else {
                        assert_eq!(recv, &["m", "other"]);
                        saw_temp = true;
                    }
                }
                Ev::Call { name, .. } if name == "helper" => saw_call = true,
                Ev::DropVars { names } => {
                    assert_eq!(names, &["g"]);
                    saw_drop = true;
                }
                _ => {}
            }
        }
        assert!(saw_bound && saw_temp && saw_call && saw_drop);
    }

    #[test]
    fn if_let_try_lock_binds_til_block() {
        let f = fns("fn go(m: &M) { if let Some(g) = m.inner.try_lock() { g.touch(); } }");
        let acq = f[0]
            .body
            .iter()
            .find_map(|e| match e {
                Ev::Acquire { binding, til_block, kind, .. } => {
                    Some((binding.clone(), *til_block, *kind))
                }
                _ => None,
            })
            .expect("acquire event");
        assert_eq!(acq.0.as_deref(), Some("g"));
        assert!(acq.1, "if-let guard scopes to the block");
        assert_eq!(acq.2, AcqKind::TryLock);
    }

    #[test]
    fn condvar_wait_and_notify_events() {
        let f = fns(
            "fn go(p: &P) {\n\
               let mut ps = p.inner.lock();\n\
               p.work.wait(&mut ps);\n\
               p.work.notify_one();\n\
             }\n",
        );
        let evs = &f[0].body;
        assert!(evs.iter().any(|e| matches!(e,
            Ev::CvWait { recv, paired, .. } if recv == &["p", "work"] && paired == "ps")));
        assert!(evs.iter().any(|e| matches!(e,
            Ev::CvNotify { recv, .. } if recv == &["p", "work"])));
    }

    #[test]
    fn let_aliases_give_typing_hints() {
        let f = fns(
            "fn go(shard: &Shard) {\n\
               let p = &shard.pipeline;\n\
               let s = shared.shard(db);\n\
               let m = Mutex::new(0);\n\
             }\n",
        );
        let evs = &f[0].body;
        assert!(evs.iter().any(|e| matches!(e,
            Ev::Alias { name, src: AliasSrc::Field(fld) } if name == "p" && fld == "pipeline")));
        assert!(evs.iter().any(|e| matches!(e,
            Ev::Alias { name, src: AliasSrc::Call(c) } if name == "s" && c == "shard")));
        assert!(evs.iter().any(|e| matches!(e,
            Ev::LocalLock { name, kind: LockKind::Mutex } if name == "m")));
    }

    #[test]
    fn cfg_test_marks_fns() {
        let f = fns(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests { fn t() {} }\n\
             #[test]\n\
             fn unit() {}\n",
        );
        let by_name: std::collections::BTreeMap<&str, bool> =
            f.iter().map(|f| (f.name.as_str(), f.in_test)).collect();
        assert!(!by_name["prod"]);
        assert!(by_name["t"]);
        assert!(by_name["unit"]);
    }
}

/// Proptest fuzzing: the parser must never panic, whatever bytes it is
/// fed. Cross-checks against the stripper and the lock analysis live in
/// the crate-root `fuzz_tests`; this sibling keeps the never-panics
/// property next to the parser it guards (the `parser-fuzz` rule's
/// contract for hand-rolled parsers).
#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        #[test]
        fn parse_file_never_panics(src in "\\PC{0,200}") {
            let _ = parse_file(&src);
        }

        #[test]
        fn parse_file_never_panics_on_rustish_soup(
            src in "(fn f|impl T|\\{|\\}|\\(|\\)|self|\\.lock\\(\\)|::|\\?|//|\"|'|\n| ){0,60}"
        ) {
            let ast = parse_file(&src);
            // Line numbers must stay within the source (1-based).
            let lines = src.lines().count() as u32 + 1;
            for f in &ast.fns {
                prop_assert!(f.line <= lines);
            }
        }
    }
}
