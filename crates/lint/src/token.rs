//! # token — the Rust-lite tokenizer under `doem-lint`'s static analyses
//!
//! The line-stripper ([`crate::strip_source`]) blanks comment and literal
//! bytes so regex-ish line rules can't be fooled by strings; the lock-order
//! analysis (DESIGN.md §13) needs more: a token stream with identifiers,
//! punctuation, and line numbers. Both views MUST agree on which bytes are
//! comment/literal content — a byte the stripper blanks but the tokenizer
//! lexes as code (or vice versa) is a soundness hole in whichever rule
//! trusted the wrong view.
//!
//! The agreement is enforced two ways:
//!
//! * [`classify`] is a transcription of the stripper's state machine that
//!   emits a per-byte [`Class`] instead of blanked bytes, and
//!   [`strip_via_classes`] renders those classes back into exactly the
//!   stripper's output;
//! * the `fuzz_tests` module proptests `strip_via_classes(src) ==
//!   strip_source(src)` on arbitrary input, so the two state machines
//!   cannot drift apart silently.
//!
//! The tokenizer is deliberately "Rust-lite": it knows identifiers,
//! lifetimes, numbers, string/char literals, comments, and single-byte
//! punctuation. It does not know about macros, generics-vs-shift
//! ambiguity, or attribute grammar — the downstream parser treats those
//! as token soup, which is the documented completeness trade.

// ---------------------------------------------------------------------------
// Per-byte classification (the stripper's view, reified)
// ---------------------------------------------------------------------------

/// What kind of lexical region a source byte belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Plain code: identifiers, punctuation, whitespace.
    Code,
    /// Inside a `//` comment (including the slashes).
    LineComment,
    /// Inside a `/* */` comment (including the delimiters).
    BlockComment,
    /// Inside a `"…"` or `b"…"` string literal (including quotes/prefix).
    Str,
    /// Inside an `r#"…"#`-style raw string (including prefix and hashes).
    RawStr,
    /// Inside a `'x'` char literal (including quotes).
    Char,
}

impl Class {
    /// Whether the stripper blanks bytes of this class.
    pub fn is_opaque(self) -> bool {
        !matches!(self, Class::Code)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Classify every byte of `src`. The state machine is a transcription of
/// [`crate::strip_source`]'s, byte for byte — `fuzz_tests` proves the two
/// agree on arbitrary input. Never panics; output length equals
/// `src.len()`.
pub fn classify(src: &str) -> Vec<Class> {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut mode = Mode::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match mode {
            Mode::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    mode = Mode::LineComment;
                    out.extend_from_slice(&[Class::LineComment; 2]);
                    i += 2;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    mode = Mode::BlockComment(1);
                    out.extend_from_slice(&[Class::BlockComment; 2]);
                    i += 2;
                }
                b'"' => {
                    mode = Mode::Str;
                    out.push(Class::Str);
                    i += 1;
                }
                b'r' | b'b' => {
                    let mut j = i + 1;
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = (b == b'r' || bytes.get(i + 1) == Some(&b'r') || hashes == 0)
                        && bytes.get(j) == Some(&b'"')
                        && (b != b'b' || bytes.get(i + 1) == Some(&b'r') || j == i + 1);
                    if is_raw && (b == b'r' || bytes.get(i + 1) == Some(&b'r')) {
                        mode = Mode::RawStr(hashes);
                        out.extend(std::iter::repeat_n(Class::RawStr, j - i + 1));
                        i = j + 1;
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        mode = Mode::Str;
                        out.extend_from_slice(&[Class::Str; 2]);
                        i += 2;
                    } else {
                        out.push(Class::Code);
                        i += 1;
                    }
                }
                b'\'' => {
                    if bytes.get(i + 1) == Some(&b'\\') {
                        mode = Mode::Char;
                        out.push(Class::Char);
                        i += 1;
                    } else if bytes.get(i + 2) == Some(&b'\'')
                        && bytes.get(i + 1).is_some_and(|c| *c != b'\'')
                    {
                        out.extend_from_slice(&[Class::Char; 3]);
                        i += 3;
                    } else {
                        out.push(Class::Code);
                        i += 1;
                    }
                }
                _ => {
                    out.push(Class::Code);
                    i += 1;
                }
            },
            Mode::LineComment => {
                if b == b'\n' {
                    mode = Mode::Code;
                    // The stripper keeps the newline; it still *ends* the
                    // comment, so classify it as code (it is emitted
                    // verbatim either way).
                    out.push(Class::Code);
                } else {
                    out.push(Class::LineComment);
                }
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    mode = if depth <= 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(&[Class::BlockComment; 2]);
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::BlockComment(depth.saturating_add(1));
                    out.extend_from_slice(&[Class::BlockComment; 2]);
                    i += 2;
                } else {
                    out.push(Class::BlockComment);
                    i += 1;
                }
            }
            Mode::Str => {
                if b == b'\\' {
                    out.push(Class::Str);
                    if bytes.get(i + 1).is_some() {
                        out.push(Class::Str);
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if b == b'"' {
                    mode = Mode::Code;
                    out.push(Class::Str);
                    i += 1;
                } else {
                    out.push(Class::Str);
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        mode = Mode::Code;
                        out.extend(std::iter::repeat_n(Class::RawStr, j - i));
                        i = j;
                    } else {
                        out.push(Class::RawStr);
                        i += 1;
                    }
                } else {
                    out.push(Class::RawStr);
                    i += 1;
                }
            }
            Mode::Char => {
                if b == b'\\' && bytes.get(i + 1).is_some() {
                    out.extend_from_slice(&[Class::Char; 2]);
                    i += 2;
                } else if b == b'\'' {
                    mode = Mode::Code;
                    out.push(Class::Char);
                    i += 1;
                } else if b == b'\n' {
                    // The stripper bails back to code on an unterminated
                    // char literal at end of line; mirror that.
                    mode = Mode::Code;
                    out.push(Class::Code);
                    i += 1;
                } else {
                    out.push(Class::Char);
                    i += 1;
                }
            }
        }
    }
    out
}

/// Render the per-byte classes back into the stripper's output format:
/// code bytes verbatim, opaque bytes blanked to spaces with newlines
/// preserved. The `fuzz_tests` agreement property asserts this equals
/// [`crate::strip_source`] exactly.
pub fn strip_via_classes(src: &str) -> String {
    let classes = classify(src);
    let mut out = Vec::with_capacity(src.len());
    for (i, b) in src.bytes().enumerate() {
        let opaque = classes.get(i).copied().unwrap_or(Class::Code).is_opaque();
        if !opaque {
            out.push(b);
        } else if b == b'\n' {
            out.push(b'\n');
        } else {
            out.push(b' ');
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

/// Token kind in the Rust-lite grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `shard`, …).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal.
    Num,
    /// A string literal (normal, byte, or raw), quotes included.
    Str,
    /// A char literal, quotes included.
    Char,
    /// A `//` comment, slashes included.
    LineComment,
    /// A `/* */` comment, delimiters included.
    BlockComment,
    /// One byte of punctuation (`.`, `(`, `{`, `;`, …).
    Punct(u8),
}

/// One token: kind, source slice, 1-based start line, byte offset.
#[derive(Clone, Copy, Debug)]
pub struct Tok<'a> {
    /// What the token is.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// Byte offset of the token's first byte.
    pub start: usize,
}

impl<'a> Tok<'a> {
    /// True iff this is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// True iff this is the punctuation byte `p`.
    pub fn is_punct(&self, p: u8) -> bool {
        self.kind == TokKind::Punct(p)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Comments and literals become single tokens (so nothing
/// downstream can be fooled by code-looking bytes inside them); code
/// regions are split into identifiers, lifetimes, numbers, and one-byte
/// punctuation. Whitespace is dropped. Never panics on any input.
pub fn tokenize(src: &str) -> Vec<Tok<'_>> {
    let classes = classify(src);
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;
    while i < bytes.len() {
        let class = classes.get(i).copied().unwrap_or(Class::Code);
        if class.is_opaque() {
            // Consume the whole contiguous opaque run of the same class.
            let start = i;
            let start_line = line;
            while i < bytes.len()
                && classes.get(i).copied().unwrap_or(Class::Code) == class
            {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            let kind = match class {
                Class::LineComment => TokKind::LineComment,
                Class::BlockComment => TokKind::BlockComment,
                Class::Str | Class::RawStr => TokKind::Str,
                Class::Char => TokKind::Char,
                Class::Code => unreachable!("opaque run of Code class"),
            };
            toks.push(Tok {
                kind,
                text: src.get(start..i).unwrap_or(""),
                line: start_line,
                start,
            });
            continue;
        }
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if is_ident_start(b) {
            let start = i;
            while i < bytes.len()
                && is_ident_continue(bytes[i])
                && !classes.get(i).map(|c| c.is_opaque()).unwrap_or(false)
            {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: src.get(start..i).unwrap_or(""),
                line,
                start,
            });
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                && !classes.get(i).map(|c| c.is_opaque()).unwrap_or(false)
            {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: src.get(start..i).unwrap_or(""),
                line,
                start,
            });
            continue;
        }
        if b == b'\'' {
            // A code-classified quote is a lifetime marker (the classifier
            // already took char literals): consume `'ident`.
            let start = i;
            i += 1;
            while i < bytes.len()
                && is_ident_continue(bytes[i])
                && !classes.get(i).map(|c| c.is_opaque()).unwrap_or(false)
            {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Lifetime,
                text: src.get(start..i).unwrap_or(""),
                line,
                start,
            });
            continue;
        }
        toks.push(Tok {
            kind: TokKind::Punct(b),
            text: src.get(i..i + 1).unwrap_or(""),
            line,
            start: i,
        });
        i += 1;
    }
    toks
}

/// The lines (1-based) carrying a *live* `// lint: allow` marker: a plain
/// line comment (not a `///`/`//!` doc comment, not a string literal)
/// whose content starts with `lint: allow`. This is deliberately stricter
/// than the historical "any line containing the text" match — prose in doc
/// comments *about* the marker, and marker text inside string literals, no
/// longer count as suppressions (they used to, silently suppressing
/// nothing — the stale-allow audit exists to keep that set empty).
pub fn allow_marker_lines(src: &str) -> Vec<u32> {
    let mut out = Vec::new();
    for t in tokenize(src) {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/');
        // `///` and `//!` doc comments leave `/`-stripped text starting
        // with the doc marker's content; a doc comment is documentation,
        // not a suppression.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        if body.trim_start().starts_with("lint: allow") {
            out.push(t.line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip_source;

    #[test]
    fn classify_matches_stripper_on_basics() {
        for src in [
            "let a = \"x.unwrap()\"; // .unwrap()\nlet b = y.unwrap();\n",
            "let r = r#\"a \" b\"#; let c = '\\''; let l: &'static str = x;",
            "/* outer /* inner */ still */ code",
            "b\"bytes\" br#\"raw bytes\"#",
        ] {
            assert_eq!(strip_via_classes(src), strip_source(src), "src={src:?}");
        }
    }

    #[test]
    fn tokenize_basics() {
        let toks = tokenize("fn f(x: &str) -> u32 { x.len() }");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, ["fn", "f", "x", "str", "u32", "x", "len"]);
    }

    #[test]
    fn tokenize_lines_and_literals() {
        let toks = tokenize("let a = \"two\nlines\";\nlet b = 'c';");
        let s = toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("string token");
        assert_eq!(s.line, 1);
        let b_ident = toks
            .iter()
            .find(|t| t.is_ident("b"))
            .expect("ident b");
        assert_eq!(b_ident.line, 3);
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn tokenize_lifetimes_are_not_chars() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            3
        );
        assert!(!toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn allow_markers_are_real_comments_only() {
        let src = "\
// lint: allow
x.unwrap(); // lint: allow trailing form
/// a doc comment describing `// lint: allow` is not a marker
//! neither is module doc prose about lint: allow
let s = \"// lint: allow inside a string is not a marker\";
";
        assert_eq!(allow_marker_lines(src), vec![1, 2]);
    }
}
