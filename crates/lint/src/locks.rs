//! # locks — static lock-order analysis (DESIGN.md §13)
//!
//! Consumes the per-file ASTs ([`crate::ast`]) and the approximate call
//! graph ([`crate::callgraph`]) to build a whole-workspace **static
//! lock-order graph**: an edge `A → B` means some code path acquires `B`
//! while holding `A`. Cycles are reported as `lock-order-cycle` findings
//! (potential deadlocks even if no run has interleaved them yet), and a
//! guard held across a blocking call (fsync, WAL append, `recv`, `join`,
//! condvar wait, bounded-channel send) is a `guard-across-blocking`
//! finding — the general form of the old `guard-across-wal` rule.
//!
//! ## Lock identity
//!
//! Locks are keyed by resolved name, best-effort, in this order:
//! `Type.field` (struct lock fields reached through typed receivers),
//! `static.NAME`, `local:<file>:<fn>:<var>` for function-local locks,
//! and `?.field` when only the field name is known. The same resolution
//! runs for static edges **and** for mapping runtime sites in the
//! subset check, so imprecision is consistent on both sides: a key the
//! static analysis fragments is fragmented identically when a runtime
//! site is looked up.
//!
//! ## Cross-validation contract
//!
//! The runtime sanitizer observes real acquisitions; its edges are
//! ground truth. [`runtime_subset`] checks every observed edge against
//! this graph — an observed edge with no static counterpart is a
//! *soundness bug in the lint* and fails CI. Static-only edges are
//! expected (that is the point of a static over-approximation) and only
//! surface through the cycle/blocking findings, which ratchet through
//! `doem-lint.baseline`.

use crate::ast::{self, AliasSrc, Ev, FileAst, HeadHint, LockKind};
use crate::callgraph::{transitive, CallGraph, Effect, Site};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet, HashMap};

// ---------------------------------------------------------------------------
// Model: lock identity tables
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Model {
    /// (struct, field) → lock kind, for lock-typed fields.
    field_locks: HashMap<(String, String), LockKind>,
    /// field name → all (struct, kind) lock fields with that name.
    lock_fields_by_name: HashMap<String, Vec<(String, LockKind)>>,
    /// (struct, field) → base type, for receiver-chain typing.
    field_base: HashMap<(String, String), String>,
    /// field name → distinct base types across all structs (for typing a
    /// field whose struct is unknown).
    base_by_field: HashMap<String, BTreeSet<String>>,
    /// Lock-typed statics.
    statics: HashMap<String, LockKind>,
    /// fn name → distinct return base types.
    ret_base: HashMap<String, BTreeSet<String>>,
    /// Files that create bounded channels (`bounded(..)`): `.send(` in
    /// these files is treated as blocking.
    bounded_files: BTreeSet<String>,
}

impl Model {
    fn build(files: &[(String, FileAst)]) -> Model {
        let mut m = Model::default();
        for (path, ast) in files {
            for f in &ast.fields {
                if let Some(kind) = f.lock {
                    m.field_locks
                        .insert((f.strukt.clone(), f.field.clone()), kind);
                    m.lock_fields_by_name
                        .entry(f.field.clone())
                        .or_default()
                        .push((f.strukt.clone(), kind));
                }
                if !f.base_ty.is_empty() {
                    m.field_base
                        .insert((f.strukt.clone(), f.field.clone()), f.base_ty.clone());
                    m.base_by_field
                        .entry(f.field.clone())
                        .or_default()
                        .insert(f.base_ty.clone());
                }
            }
            for s in &ast.statics {
                m.statics.insert(s.name.clone(), s.kind);
            }
            for d in &ast.fns {
                if !d.ret_base.is_empty() {
                    m.ret_base
                        .entry(d.name.clone())
                        .or_default()
                        .insert(d.ret_base.clone());
                }
                if d.body.iter().any(
                    |e| matches!(e, Ev::Call { name, .. } if name == "bounded"),
                ) {
                    m.bounded_files.insert(path.clone());
                }
            }
        }
        for v in m.lock_fields_by_name.values_mut() {
            v.sort();
            v.dedup();
        }
        m
    }

    /// Unique lock field named `f` with kind `need`, if exactly one
    /// struct declares it.
    fn unique_lock_field(&self, f: &str, need: LockKind) -> Option<String> {
        let cands: Vec<&(String, LockKind)> = self
            .lock_fields_by_name
            .get(f)?
            .iter()
            .filter(|(_, k)| *k == need)
            .collect();
        match cands.as_slice() {
            [(s, _)] => Some(format!("{s}.{f}")),
            [] => None,
            _ => Some(format!("?.{f}")),
        }
    }

    /// Base type of field `f` when its declaring struct is unknown but
    /// all declarations agree.
    fn unique_field_base(&self, f: &str) -> Option<String> {
        let tys = self.base_by_field.get(f)?;
        if tys.len() == 1 {
            tys.iter().next().cloned()
        } else {
            None
        }
    }

    /// Return base type of fn `name` when every workspace fn with that
    /// name agrees on one (types `x.svc().client()`-style receivers).
    fn unique_ret_base(&self, name: &str) -> Option<String> {
        let tys = self.ret_base.get(name)?;
        if tys.len() == 1 {
            tys.iter().next().cloned()
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Per-function simulation
// ---------------------------------------------------------------------------

/// Direct blocking calls: method name + whether empty parens are
/// required (`.join()` is a thread join; `path.join("wal")` is not).
const BLOCKING: &[(&str, bool)] = &[
    ("sync_data", false),
    ("sync_all", false),
    ("save_doem", false),
    ("fresh_durable_db", false),
    ("checkpoint_published", false),
    ("append_batch", false),
    ("write_all", false),
    ("recv", true),
    ("recv_timeout", false),
    ("join", true),
];

#[derive(Clone)]
enum VarTy {
    Type(String),
    /// The variable *is* a lock (local `Mutex::new` or a `&Mutex` param);
    /// the kind is implied by the acquisition method, so it isn't stored.
    LocalLock,
}

#[derive(Clone, Copy, PartialEq)]
enum Die {
    /// Dies when the scope at this depth closes.
    Scope(u32),
    /// Dies at the next statement end.
    Stmt,
    /// `if let` / `while let` / `for` / `match` header: becomes
    /// `Scope(d)` of the block about to open.
    Pending,
}

#[derive(Clone)]
struct Guard {
    key: String,
    site: Site,
    name: Option<String>,
    die: Die,
}

/// Held-lock snapshot at an event: (lock key, acquisition site) pairs,
/// outermost first.
type Held = Vec<(String, Site)>;

/// Everything one function body contributes to the analysis.
#[derive(Default)]
struct Sim {
    /// (acquired key, site, held-before snapshot).
    acqs: Vec<(String, Site, Held)>,
    /// (condvar key, paired mutex key, site, held minus paired).
    waits: Vec<(String, Option<String>, Site, Held)>,
    /// (condvar key, site, held).
    notifies: Vec<(String, Site, Held)>,
    /// (blocking reason, site, held) — held may be empty (still a
    /// `may_block` effect for callers).
    blocks: Vec<(String, Site, Held)>,
    /// (callee bare name, site, held, resolution hint) — every call, for
    /// the call graph.
    calls: Vec<(String, Site, Held, CallHint)>,
    /// Acquisition-site → key contributions for the subset check.
    sites: Vec<(Site, String)>,
}

/// How a call site constrains callee resolution: `x.foo()` only reaches
/// methods (and, when `x`'s type is known, preferably that type's);
/// `Type::foo()` prefers `Type`'s impl; a plain `foo()` only reaches
/// non-methods. Typing is best-effort — unknown types fall back to the
/// wider candidate set, never to an empty one, so the over-approximation
/// stays sound.
#[derive(Clone, Debug)]
struct CallHint {
    method: bool,
    ty: Option<String>,
}

struct FnCtx<'m> {
    model: &'m Model,
    file: String,
    fn_name: String,
    impl_type: Option<String>,
}

impl FnCtx<'_> {
    fn local_key(&self, var: &str) -> String {
        format!("local:{}:{}:{}", self.file, self.fn_name, var)
    }

    /// Resolve an acquisition receiver to a lock key. `None` means
    /// "not a lock at all" (e.g. `stdin.lock()` — an io handle).
    fn resolve(
        &self,
        recv: &[String],
        head_unknown: bool,
        need: LockKind,
        env: &HashMap<String, VarTy>,
    ) -> Option<String> {
        if recv.is_empty() {
            return Some(format!("?.{}", kind_slug(need)));
        }
        if recv.len() == 1 {
            let v = recv[0].as_str();
            if v == "stdin" || v == "stdout" || v == "stderr" {
                return None;
            }
            if let Some(VarTy::LocalLock) = env.get(v) {
                return Some(self.local_key(v));
            }
            if self.model.statics.contains_key(v) {
                return Some(format!("static.{v}"));
            }
            return Some(
                self.model
                    .unique_lock_field(v, need)
                    .unwrap_or_else(|| self.local_key(v)),
            );
        }
        // Multi-segment path: type the head, walk the middles.
        let (mut ty, mid_start) = if head_unknown {
            // `expr().shard.state.read()` — the first segment is a field
            // of an unknown type; type it by unique field name.
            (self.model.unique_field_base(&recv[0]), 1)
        } else {
            let head = recv[0].as_str();
            let t = if head == "self" || head == "Self" {
                self.impl_type.clone()
            } else {
                match env.get(head) {
                    Some(VarTy::Type(b)) => Some(b.clone()),
                    _ => None,
                }
            };
            (t, 1)
        };
        for mid in &recv[mid_start..recv.len() - 1] {
            ty = match ty {
                Some(t) => self
                    .model
                    .field_base
                    .get(&(t, mid.clone()))
                    .cloned()
                    .or_else(|| self.model.unique_field_base(mid)),
                None => self.model.unique_field_base(mid),
            };
        }
        let f = recv[recv.len() - 1].as_str();
        if let Some(t) = &ty {
            if self.model.field_locks.contains_key(&(t.clone(), f.to_string())) {
                return Some(format!("{t}.{f}"));
            }
        }
        Some(
            self.model
                .unique_lock_field(f, need)
                .unwrap_or_else(|| format!("?.{f}")),
        )
    }

    /// Best-effort base type of a full value path (`self.inner` →
    /// `CommitPipeline`): head via `self`/env, then every remaining
    /// segment as a field. `None` when the head is opaque.
    fn path_base(&self, recv: &[String], env: &HashMap<String, VarTy>) -> Option<String> {
        let head = recv.first()?;
        let mut ty = if head == "self" || head == "Self" {
            self.impl_type.clone()
        } else {
            match env.get(head.as_str()) {
                Some(VarTy::Type(b)) => Some(b.clone()),
                _ => None,
            }
        };
        for f in &recv[1..] {
            ty = match ty {
                Some(t) => self
                    .model
                    .field_base
                    .get(&(t, f.clone()))
                    .cloned()
                    .or_else(|| self.model.unique_field_base(f)),
                None => self.model.unique_field_base(f),
            };
        }
        ty
    }

    /// Build the resolution hint for one call event.
    fn call_hint(
        &self,
        method: bool,
        recv: &[String],
        head_hint: Option<&HeadHint>,
        env: &HashMap<String, VarTy>,
    ) -> CallHint {
        let ty = if method {
            self.path_base(recv, env).or_else(|| match head_hint {
                // `Lexer { .. }.run()` — the literal names the type.
                Some(HeadHint::Ty(t)) => Some(t.clone()),
                // `shard.svc().client()` — type via `svc`'s return type,
                // when every workspace `svc` agrees on one.
                Some(HeadHint::CallRet(c)) => self.model.unique_ret_base(c),
                None => None,
            })
        } else {
            // `Type::assoc()` / `a::b::Type::assoc()`: the last uppercase
            // qualifier segment names the impl; `Self` maps to it too.
            match recv.last().map(String::as_str) {
                Some("Self") => self.impl_type.clone(),
                Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                    Some(q.to_string())
                }
                _ => None,
            }
        };
        CallHint { method, ty }
    }
}

fn kind_slug(k: LockKind) -> &'static str {
    match k {
        LockKind::Mutex => "mutex",
        LockKind::RwLock => "rwlock",
        LockKind::Condvar => "condvar",
    }
}

fn snapshot(guards: &[Guard], except: Option<&str>) -> Vec<(String, Site)> {
    let mut out = Vec::new();
    for g in guards {
        if Some(g.key.as_str()) == except {
            continue;
        }
        if out.iter().any(|(k, _)| k == &g.key) {
            continue;
        }
        out.push((g.key.clone(), g.site.clone()));
    }
    out
}

fn simulate(ctx: &FnCtx<'_>, def: &ast::FnDef) -> Sim {
    let mut sim = Sim::default();
    let mut env: HashMap<String, VarTy> = HashMap::new();
    for (name, base) in &def.params {
        let ty = match base.as_str() {
            "Mutex" | "RwLock" | "Condvar" => VarTy::LocalLock,
            "" => continue,
            b => VarTy::Type(b.to_string()),
        };
        env.insert(name.clone(), ty);
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: u32 = 0;
    let site = |line: u32| Site {
        file: ctx.file.clone(),
        line,
    };
    for ev in &def.body {
        match ev {
            Ev::Open => {
                depth += 1;
                for g in &mut guards {
                    if g.die == Die::Pending {
                        g.die = Die::Scope(depth);
                    }
                }
            }
            Ev::Close => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| match g.die {
                    Die::Scope(d) => d <= depth,
                    Die::Stmt | Die::Pending => false,
                });
            }
            Ev::StmtEnd => {
                guards.retain(|g| g.die != Die::Stmt);
            }
            Ev::LocalLock { name, .. } => {
                env.insert(name.clone(), VarTy::LocalLock);
            }
            Ev::Alias { name, src } => {
                let ty = match src {
                    AliasSrc::Type(b) => Some(VarTy::Type(b.clone())),
                    AliasSrc::Field(f) => match env.get(f) {
                        // `let a = b;` — a bare-variable alias.
                        Some(v) => Some(v.clone()),
                        None => ctx
                            .model
                            .unique_field_base(f)
                            .map(VarTy::Type),
                    },
                    AliasSrc::Call(c) => {
                        let tys = ctx.model.ret_base.get(c);
                        match tys {
                            Some(t) if t.len() == 1 => {
                                t.iter().next().cloned().map(VarTy::Type)
                            }
                            _ => None,
                        }
                    }
                };
                if let Some(ty) = ty {
                    env.insert(name.clone(), ty);
                }
            }
            Ev::Acquire {
                recv,
                head_unknown,
                kind,
                binding,
                til_block,
                line,
            } => {
                let Some(key) =
                    ctx.resolve(recv, *head_unknown, kind.lock_kind(), &env)
                else {
                    continue;
                };
                let s = site(*line);
                sim.sites.push((s.clone(), key.clone()));
                sim.acqs
                    .push((key.clone(), s.clone(), snapshot(&guards, Some(&key))));
                let die = if *til_block {
                    Die::Pending
                } else if binding.is_some() {
                    Die::Scope(depth)
                } else {
                    Die::Stmt
                };
                guards.push(Guard {
                    key,
                    site: s,
                    name: binding.clone(),
                    die,
                });
            }
            Ev::DropVars { names } => {
                guards.retain(|g| match &g.name {
                    Some(n) => !names.contains(n),
                    None => true,
                });
            }
            Ev::CvWait {
                recv,
                head_unknown,
                paired,
                line,
            } => {
                let Some(cv) =
                    ctx.resolve(recv, *head_unknown, LockKind::Condvar, &env)
                else {
                    continue;
                };
                let s = site(*line);
                let paired_key = guards
                    .iter()
                    .rev()
                    .find(|g| g.name.as_deref() == Some(paired.as_str()))
                    .map(|g| g.key.clone());
                let held = snapshot(&guards, paired_key.as_deref());
                sim.sites.push((s.clone(), cv.clone()));
                if let Some(pk) = &paired_key {
                    // The paired mutex is re-registered at the wait line
                    // after waking (sanitizer `after_lock`), so this line
                    // maps to *both* identities.
                    sim.sites.push((s.clone(), pk.clone()));
                }
                sim.blocks
                    .push(("condvar wait".to_string(), s.clone(), held.clone()));
                sim.waits.push((cv, paired_key, s, held));
            }
            Ev::CvNotify {
                recv,
                head_unknown,
                line,
            } => {
                let Some(cv) =
                    ctx.resolve(recv, *head_unknown, LockKind::Condvar, &env)
                else {
                    continue;
                };
                let s = site(*line);
                sim.sites.push((s.clone(), cv.clone()));
                sim.notifies.push((cv, s, snapshot(&guards, None)));
            }
            Ev::Call {
                name,
                method,
                recv,
                head_hint,
                empty,
                line,
            } => {
                let s = site(*line);
                let held = snapshot(&guards, None);
                let blocking = BLOCKING
                    .iter()
                    .any(|(n, need_empty)| n == name && (!need_empty || *empty))
                    || (name == "send" && ctx.model.bounded_files.contains(&ctx.file));
                if blocking {
                    sim.blocks.push((name.clone(), s.clone(), held.clone()));
                }
                let hint = ctx.call_hint(*method, recv, head_hint.as_ref(), &env);
                sim.calls.push((name.clone(), s, held, hint));
            }
        }
    }
    sim
}

// ---------------------------------------------------------------------------
// Whole-workspace analysis
// ---------------------------------------------------------------------------

/// One edge of the static lock-order graph: some path acquires `to`
/// while holding `from`.
#[derive(Clone, Debug)]
pub struct StaticEdge {
    /// Site where `from` is (last) acquired on the witness path.
    pub from_site: Site,
    /// Site where `to` is acquired.
    pub to_site: Site,
    /// Call/acquisition chain witnessing the edge, outermost first.
    pub chain: Vec<Site>,
    /// True when the witness runs through non-test source code.
    pub src: bool,
}

/// The full static analysis result.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// `lock-order-cycle` and `guard-across-blocking` findings.
    pub findings: Vec<Finding>,
    /// The lock-order graph, keyed (from, to), with one best witness.
    pub edges: BTreeMap<(String, String), StaticEdge>,
    /// Acquisition site → the lock keys that site can register
    /// (condvar-wait lines map to two). Drives [`runtime_subset`].
    pub site_keys: BTreeMap<(String, u32), BTreeSet<String>>,
}

fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("benches/")
}

/// Crate a repo-relative path belongs to (`crates/serve/src/..` →
/// `serve`); empty for root-level tests/benches.
fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

/// Does `stripped` (comment/string-stripped source) reference the crate
/// `name` as a path qualifier (`name::`)? Checks the preceding byte so
/// `lore::` does not match inside `lorel::`.
fn mentions_crate(stripped: &str, name: &str) -> bool {
    let pat = format!("{name}::");
    let bytes = stripped.as_bytes();
    let mut start = 0;
    while let Some(pos) = stripped.get(start..).and_then(|s| s.find(&pat)) {
        let abs = start + pos;
        let boundary = abs == 0
            || !bytes
                .get(abs - 1)
                .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
        if boundary {
            return true;
        }
        start = abs + 1;
    }
    false
}

/// Effect payloads for the transitive pass.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Fact {
    Acq(String),
    Notify(String),
    Block(String),
}

/// Run the static lock-order analysis over `(repo-relative path,
/// source)` pairs. The caller chooses the file set (the CLI excludes
/// `crates/compat` and `crates/sanitizer`, whose std-lock internals are
/// the instrumentation layer itself).
pub fn analyze(files: &[(String, String)]) -> Analysis {
    let parsed: Vec<(String, FileAst)> = files
        .iter()
        .map(|(p, s)| (p.clone(), ast::parse_file(s)))
        .collect();
    let model = Model::build(&parsed);
    let cg = CallGraph::build(&parsed);
    let n = cg.fns.len();

    let mut sims: Vec<Sim> = Vec::with_capacity(n);
    let mut is_src: Vec<bool> = Vec::with_capacity(n);
    for f in &cg.fns {
        let ctx = FnCtx {
            model: &model,
            file: f.file.clone(),
            fn_name: f.def.name.clone(),
            impl_type: f.def.impl_type.clone(),
        };
        sims.push(simulate(&ctx, &f.def));
        is_src.push(!f.def.in_test && !is_test_path(&f.file));
    }

    // Types the workspace defines methods on. A call typed to anything
    // *outside* this set (`Arc::new`, `String.push_str`) is a call into
    // std/deps and resolves to no workspace fn at all — resolving it by
    // bare name instead is the single biggest source of false chains.
    let impl_types: BTreeSet<&str> = cg
        .fns
        .iter()
        .filter_map(|f| f.def.impl_type.as_deref())
        .collect();

    // Crate-level reachability, inferred from `name::` references in
    // the stripped sources. Cargo keeps the dependency graph acyclic,
    // so a bare-name resolution that hops *against* it (`lorel` calling
    // up into `serve`, say) is impossible and is dropped. Root-level
    // tests/benches (empty crate) can reach everything.
    let crate_names: BTreeSet<String> = files
        .iter()
        .map(|(p, _)| crate_of(p).to_string())
        .filter(|c| !c.is_empty())
        .collect();
    let mut deps: HashMap<String, BTreeSet<String>> = HashMap::new();
    for (p, s) in files {
        let from = crate_of(p);
        if from.is_empty() {
            continue;
        }
        let stripped = crate::strip_source(s);
        for c in &crate_names {
            if c != from && mentions_crate(&stripped, c) {
                deps.entry(from.to_string()).or_default().insert(c.clone());
            }
        }
    }
    loop {
        let mut changed = false;
        let froms: Vec<String> = deps.keys().cloned().collect();
        for f in froms {
            let ds: Vec<String> = deps[&f].iter().cloned().collect();
            for d in &ds {
                for e in deps.get(d).cloned().unwrap_or_default() {
                    if e != f && deps.entry(f.clone()).or_default().insert(e) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let reachable = |caller_file: &str, callee_file: &str| -> bool {
        let from = crate_of(caller_file);
        if from.is_empty() {
            return true;
        }
        let to = crate_of(callee_file);
        !to.is_empty()
            && (from == to || deps.get(from).is_some_and(|s| s.contains(to)))
    };

    // Candidate callees for one call site, honoring its hint. An
    // *unknown* type falls back to the wider set (never empty), so
    // narrowing is precision, not unsoundness; only a *known-external*
    // type resolves to nothing.
    let resolve_call = |caller_file: &str, name: &str, hint: &CallHint| -> Vec<usize> {
        let all: Vec<usize> = cg
            .resolve(name)
            .iter()
            .copied()
            .filter(|&j| reachable(caller_file, &cg.fns[j].file))
            .collect();
        if let Some(t) = &hint.ty {
            if !impl_types.contains(t.as_str()) {
                return Vec::new();
            }
        }
        if hint.method {
            if let Some(t) = &hint.ty {
                let typed: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&j| {
                        cg.fns[j].def.has_self && cg.fns[j].def.impl_type.as_deref() == Some(t)
                    })
                    .collect();
                if !typed.is_empty() {
                    return typed;
                }
            }
            all.iter().copied().filter(|&j| cg.fns[j].def.has_self).collect()
        } else if let Some(t) = &hint.ty {
            let typed: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&j| cg.fns[j].def.impl_type.as_deref() == Some(t))
                .collect();
            if !typed.is_empty() {
                typed
            } else {
                // A workspace type, but this name isn't among its parsed
                // impls (macro-generated, trait default): anything goes.
                all.to_vec()
            }
        } else {
            // A plain `foo()` can only reach free fns / assoc fns.
            all.iter().copied().filter(|&j| !cg.fns[j].def.has_self).collect()
        }
    };

    // Direct effects + call lists for the fixpoint.
    let mut direct: Vec<Vec<Effect<Fact>>> = vec![Vec::new(); n];
    let mut calls: Vec<Vec<(usize, Site)>> = vec![Vec::new(); n];
    let mut call_targets: Vec<Vec<(Vec<usize>, Site, Held)>> = vec![Vec::new(); n];
    for (i, sim) in sims.iter().enumerate() {
        for (k, s, _) in &sim.acqs {
            direct[i].push(Effect {
                what: Fact::Acq(k.clone()),
                chain: vec![s.clone()],
            });
        }
        for (cv, paired, s, _) in &sim.waits {
            direct[i].push(Effect {
                what: Fact::Acq(cv.clone()),
                chain: vec![s.clone()],
            });
            if let Some(p) = paired {
                direct[i].push(Effect {
                    what: Fact::Acq(p.clone()),
                    chain: vec![s.clone()],
                });
            }
        }
        for (cv, s, _) in &sim.notifies {
            direct[i].push(Effect {
                what: Fact::Notify(cv.clone()),
                chain: vec![s.clone()],
            });
        }
        for (reason, s, _) in &sim.blocks {
            direct[i].push(Effect {
                what: Fact::Block(reason.clone()),
                chain: vec![s.clone()],
            });
        }
        for (name, s, held, hint) in &sim.calls {
            let targets = resolve_call(&cg.fns[i].file, name, hint);
            for &j in &targets {
                calls[i].push((j, s.clone()));
            }
            call_targets[i].push((targets, s.clone(), held.clone()));
        }
    }
    let trans = transitive(&cg, &direct, &calls);

    let mut an = Analysis::default();
    for sim in &sims {
        for (s, k) in &sim.sites {
            an.site_keys
                .entry((s.file.clone(), s.line))
                .or_default()
                .insert(k.clone());
        }
    }

    let add_edge = |from: &str,
                        to: &str,
                        from_site: &Site,
                        to_site: &Site,
                        chain: Vec<Site>,
                        src: bool,
                        edges: &mut BTreeMap<(String, String), StaticEdge>| {
        if from == to {
            return;
        }
        let key = (from.to_string(), to.to_string());
        let cand = StaticEdge {
            from_site: from_site.clone(),
            to_site: to_site.clone(),
            chain,
            src,
        };
        match edges.get(&key) {
            Some(old)
                if (!old.src, old.chain.len(), &old.chain)
                    <= (!cand.src, cand.chain.len(), &cand.chain) => {}
            _ => {
                edges.insert(key, cand);
            }
        }
    };

    // `guard-across-blocking` raw hits: (held key, held site, reason,
    // chain) — deduped per (file, held key, reason).
    let mut block_hits: BTreeMap<(String, String, String), (Site, Vec<Site>)> = BTreeMap::new();

    let mut edges = BTreeMap::new();
    for (i, sim) in sims.iter().enumerate() {
        let src = is_src[i];
        for (k, s, held) in &sim.acqs {
            for (h, hs) in held {
                add_edge(h, k, hs, s, vec![s.clone()], src, &mut edges);
            }
        }
        for (cv, paired, s, held) in &sim.waits {
            for (h, hs) in held {
                add_edge(h, cv, hs, s, vec![s.clone()], src, &mut edges);
                if let Some(p) = paired {
                    // Re-acquisition of the paired mutex after waking.
                    add_edge(h, p, hs, s, vec![s.clone()], src, &mut edges);
                }
            }
        }
        for (cv, s, held) in &sim.notifies {
            for (h, hs) in held {
                add_edge(cv, h, s, hs, vec![s.clone()], src, &mut edges);
            }
        }
        // Direct blocking with guards held.
        if src {
            for (reason, s, held) in &sim.blocks {
                for (h, hs) in held {
                    let key = (hs.file.clone(), h.clone(), reason.clone());
                    block_hits
                        .entry(key)
                        .or_insert_with(|| (hs.clone(), vec![s.clone()]));
                }
            }
        }
        // Call-mediated effects.
        for (targets, cs, held) in &call_targets[i] {
            if held.is_empty() {
                continue;
            }
            for &callee in targets {
                for (fact, chain) in &trans[callee] {
                    let mut full = Vec::with_capacity(chain.len() + 1);
                    full.push(cs.clone());
                    full.extend(chain.iter().cloned());
                    let fact_site = chain.last().cloned().unwrap_or_else(|| cs.clone());
                    match fact {
                        Fact::Acq(k) => {
                            for (h, hs) in held {
                                add_edge(h, k, hs, &fact_site, full.clone(), src, &mut edges);
                            }
                        }
                        Fact::Notify(cv) => {
                            for (h, hs) in held {
                                add_edge(cv, h, &fact_site, hs, full.clone(), src, &mut edges);
                            }
                        }
                        Fact::Block(reason) => {
                            if src {
                                for (h, hs) in held {
                                    let key = (hs.file.clone(), h.clone(), reason.clone());
                                    let ent = (hs.clone(), full.clone());
                                    block_hits.entry(key).or_insert(ent);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    an.edges = edges;

    // Findings: guard-across-blocking.
    for ((file, hkey, reason), (hsite, chain)) in &block_hits {
        let chain_str: Vec<String> = chain.iter().map(|s| s.to_string()).collect();
        an.findings.push(Finding {
            rule: "guard-across-blocking",
            file: file.clone(),
            line: hsite.line as usize,
            message: format!(
                "guard on `{hkey}` (acquired at {hsite}) is held across blocking call \
                 `{reason}` ({}) — a disk/park wait under a hot lock",
                chain_str.join(" -> ")
            ),
        });
    }

    // Findings: lock-order cycles over the src-witnessed subgraph.
    let src_edges: Vec<(&(String, String), &StaticEdge)> =
        an.edges.iter().filter(|(_, e)| e.src).collect();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for ((f, t), _) in &src_edges {
        nodes.insert(f);
        nodes.insert(t);
    }
    let idx: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let names: Vec<&str> = nodes.iter().copied().collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
    for ((f, t), _) in &src_edges {
        adj[idx[f.as_str()]].push(idx[t.as_str()]);
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }
    for scc in sccs(&adj) {
        if scc.len() < 2 {
            continue;
        }
        let in_scc: BTreeSet<usize> = scc.iter().copied().collect();
        let start = *scc.iter().min().unwrap_or(&0);
        let Some(cycle) = cycle_through(&adj, &in_scc, start) else {
            continue;
        };
        let mut parts = Vec::new();
        let mut first_site: Option<Site> = None;
        for w in cycle.windows(2) {
            let (f, t) = (names[w[0]], names[w[1]]);
            if let Some(e) = an.edges.get(&(f.to_string(), t.to_string())) {
                if first_site.is_none() {
                    first_site = Some(e.to_site.clone());
                }
                let chain: Vec<String> = e.chain.iter().map(|s| s.to_string()).collect();
                parts.push(format!(
                    "{f} (held at {}) -> {t} (acquired at {}, via {})",
                    e.from_site,
                    e.to_site,
                    chain.join(" -> ")
                ));
            }
        }
        let Some(fs) = first_site else { continue };
        let ring: Vec<&str> = cycle.iter().map(|&i| names[i]).collect();
        an.findings.push(Finding {
            rule: "lock-order-cycle",
            file: fs.file.clone(),
            line: fs.line as usize,
            message: format!(
                "potential deadlock: lock-order cycle {}; {}",
                ring.join(" -> "),
                parts.join("; ")
            ),
        });
    }
    an.findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line, &a.message).cmp(&(b.rule, &b.file, b.line, &b.message))
    });
    an
}

/// Tarjan's SCC (iterative), deterministic for sorted adjacency.
fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, neighbor cursor).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*cursor) {
                *cursor += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
            }
        }
    }
    out.sort();
    out
}

/// A deterministic cycle through `start` inside one SCC: DFS over sorted
/// neighbors restricted to the SCC, returned as `[start, …, start]`.
fn cycle_through(
    adj: &[Vec<usize>],
    in_scc: &BTreeSet<usize>,
    start: usize,
) -> Option<Vec<usize>> {
    let mut path = vec![start];
    let mut seen = BTreeSet::new();
    seen.insert(start);
    fn dfs(
        adj: &[Vec<usize>],
        in_scc: &BTreeSet<usize>,
        start: usize,
        at: usize,
        path: &mut Vec<usize>,
        seen: &mut BTreeSet<usize>,
    ) -> bool {
        for &w in &adj[at] {
            if !in_scc.contains(&w) {
                continue;
            }
            if w == start {
                path.push(start);
                return true;
            }
            if seen.insert(w) {
                path.push(w);
                if dfs(adj, in_scc, start, w, path, seen) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }
    if dfs(adj, in_scc, start, start, &mut path, &mut seen) {
        Some(path)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// DOT + runtime subset check
// ---------------------------------------------------------------------------

/// Render the static graph as Graphviz DOT. Src-witnessed edges are
/// solid, test-only edges dashed.
pub fn dot(an: &Analysis) -> String {
    let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n");
    for ((f, t), e) in &an.edges {
        out.push_str(&format!(
            "  \"{f}\" -> \"{t}\" [label=\"{}\"{}];\n",
            e.to_site,
            if e.src { "" } else { ", style=dashed" }
        ));
    }
    out.push_str("}\n");
    out
}

/// Parse `path:line` (the runtime dump format).
fn parse_site(s: &str) -> Option<(String, u32)> {
    let (path, line) = s.trim().rsplit_once(':')?;
    Some((path.replace('\\', "/"), line.parse().ok()?))
}

/// Look up a runtime site's possible keys; tolerates small line drift
/// (multi-line call chains put `#[track_caller]` a few lines off the
/// method token).
fn site_lookup<'a>(
    an: &'a Analysis,
    file: &str,
    line: u32,
) -> Option<&'a BTreeSet<String>> {
    if let Some(ks) = an.site_keys.get(&(file.to_string(), line)) {
        return Some(ks);
    }
    for d in 1..=4u32 {
        for cand in [line.saturating_sub(d), line + d] {
            if let Some(ks) = an.site_keys.get(&(file.to_string(), cand)) {
                return Some(ks);
            }
        }
    }
    None
}

/// Check that every runtime-observed edge `(from_site, to_site)` has a
/// static counterpart: some key of `from_site` must have a static edge
/// to some key of `to_site`. Returns human-readable violations (empty =
/// the contract holds). A runtime site the static analysis never keyed
/// is itself a violation — it means the lint missed an acquisition.
pub fn runtime_subset(an: &Analysis, runtime_edges: &[(String, String)]) -> Vec<String> {
    let mut violations = Vec::new();
    for (from_s, to_s) in runtime_edges {
        let (Some((ff, fl)), Some((tf, tl))) = (parse_site(from_s), parse_site(to_s)) else {
            violations.push(format!("unparseable runtime edge: {from_s} -> {to_s}"));
            continue;
        };
        let Some(fkeys) = site_lookup(an, &ff, fl) else {
            violations.push(format!(
                "runtime acquisition at {ff}:{fl} has no statically-known lock key \
                 (edge {from_s} -> {to_s}): the static analysis missed this site"
            ));
            continue;
        };
        let Some(tkeys) = site_lookup(an, &tf, tl) else {
            violations.push(format!(
                "runtime acquisition at {tf}:{tl} has no statically-known lock key \
                 (edge {from_s} -> {to_s}): the static analysis missed this site"
            ));
            continue;
        };
        let covered = fkeys.iter().any(|fk| {
            tkeys.iter().any(|tk| {
                fk == tk || an.edges.contains_key(&(fk.clone(), tk.clone()))
            })
        });
        if !covered {
            violations.push(format!(
                "runtime edge {from_s} -> {to_s} (keys {:?} -> {:?}) has no static \
                 counterpart: the static lock-order graph is missing an edge",
                fkeys.iter().collect::<Vec<_>>(),
                tkeys.iter().collect::<Vec<_>>()
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn an(files: &[(&str, &str)]) -> Analysis {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze(&owned)
    }

    #[test]
    fn intra_fn_inversion_is_a_cycle() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }
    fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); }
}
";
        let a = an(&[("crates/x/src/lib.rs", src)]);
        assert!(a.edges.contains_key(&("S.a".into(), "S.b".into())));
        assert!(a.edges.contains_key(&("S.b".into(), "S.a".into())));
        assert_eq!(
            a.findings
                .iter()
                .filter(|f| f.rule == "lock-order-cycle")
                .count(),
            1,
            "findings: {:#?}",
            a.findings
        );
    }

    #[test]
    fn guard_scope_ends_at_drop() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ok(&self) { let g = self.a.lock(); drop(g); let h = self.b.lock(); }
}
";
        let a = an(&[("crates/x/src/lib.rs", src)]);
        assert!(!a.edges.contains_key(&("S.a".into(), "S.b".into())));
    }

    #[test]
    fn runtime_subset_accepts_static_edges_and_flags_missing() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); }
}
";
        let a = an(&[("crates/x/src/lib.rs", src)]);
        let edge = (
            "crates/x/src/lib.rs:3".to_string(),
            "crates/x/src/lib.rs:3".to_string(),
        );
        assert!(runtime_subset(&a, &[edge]).is_empty());
        let bogus = (
            "crates/x/src/lib.rs:3".to_string(),
            "crates/y/src/lib.rs:99".to_string(),
        );
        assert_eq!(runtime_subset(&a, &[bogus]).len(), 1);
    }
}
