//! `doem-lint` — run the project invariant scanners over the workspace.
//!
//! Usage: `cargo run --bin doem-lint [-- --root <path>] [--write-baseline]
//! [--fix [--check]] [--graph dot] [--runtime-subset <dir>]`
//!
//! `--fix` rewrites the *trivial* serve-unwrap findings in place
//! (`.unwrap()` in a `Result`-returning fn under `crates/serve/src`
//! becomes `?`) and exits; `--fix --check` writes nothing and exits 1 if
//! any file *would* change — the CI guard that the autofix has been run.
//!
//! `--graph dot` prints the static lock-order graph (Graphviz) and exits;
//! `--runtime-subset <dir>` reads sanitizer-observed edges (`*.edges`
//! files of `from_site<TAB>to_site` lines, written under
//! `DOEM_SANITIZE_GRAPH`) and exits 1 unless every runtime edge is
//! covered by the static graph — a missed edge is a lint soundness bug.
//!
//! Exit codes: 0 clean (relative to baseline), 1 findings above baseline
//! (or `--fix --check` dirty, or a runtime-subset violation), 2 usage /
//! I/O error. Diagnostics are `file:line: [rule] message`.
//!
//! The baseline file (`doem-lint.baseline` at the workspace root) holds
//! `rule<TAB>file<TAB>count` lines for findings that are accepted by
//! design. It only ratchets down: a file whose count drops below its
//! baseline prints a hint to regenerate; a count above baseline fails.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lint::{apply_allows, collect_workspace_files, fix_serve_unwrap, lock_scope, locks,
           scan_canonical_order, scan_missing_docs, scan_parser_fuzz, scan_serve_unwrap,
           Finding};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut fix = false;
    let mut check = false;
    let mut graph = false;
    let mut subset_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("doem-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => write_baseline = true,
            "--fix" => fix = true,
            "--check" => check = true,
            "--graph" => match args.next().as_deref() {
                Some("dot") => graph = true,
                _ => {
                    eprintln!("doem-lint: --graph requires the format `dot`");
                    return ExitCode::from(2);
                }
            },
            "--runtime-subset" => match args.next() {
                Some(p) => subset_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("doem-lint: --runtime-subset requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: doem-lint [--root <path>] [--write-baseline] [--fix [--check]] \
                     [--graph dot] [--runtime-subset <dir>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("doem-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if check && !fix {
        eprintln!("doem-lint: --check only makes sense with --fix");
        return ExitCode::from(2);
    }
    let root = match root.or_else(default_root) {
        Some(r) => r,
        None => {
            eprintln!("doem-lint: cannot locate workspace root; pass --root");
            return ExitCode::from(2);
        }
    };
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "doem-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }

    if fix {
        return run_fix(&root, check);
    }

    let scan = scan_workspace(&root);

    if graph {
        print!("{}", locks::dot(&scan.analysis));
        return ExitCode::SUCCESS;
    }
    if let Some(dir) = subset_dir {
        return run_subset(&scan.analysis, &dir);
    }

    let findings = scan.findings;
    let baseline_path = root.join("doem-lint.baseline");

    if write_baseline {
        let text = render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("doem-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let entries = text.lines().filter(|l| !l.starts_with('#')).count();
        println!(
            "doem-lint: wrote baseline with {} entr{} ({} finding(s)) to {}",
            entries,
            if entries == 1 { "y" } else { "ies" },
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("doem-lint: bad baseline {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let mut counts: BTreeMap<(String, String), Vec<&Finding>> = BTreeMap::new();
    for f in &findings {
        counts
            .entry((f.rule.to_string(), f.file.clone()))
            .or_default()
            .push(f);
    }

    let mut failures = 0usize;
    let mut ratchet_hints = 0usize;
    for (key, group) in &counts {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        match group.len().cmp(&allowed) {
            std::cmp::Ordering::Greater => {
                for f in group {
                    println!("{f}");
                }
                println!(
                    "doem-lint: [{}] {}: {} finding(s), baseline allows {}",
                    key.0,
                    key.1,
                    group.len(),
                    allowed
                );
                failures += group.len() - allowed;
            }
            std::cmp::Ordering::Less => ratchet_hints += 1,
            std::cmp::Ordering::Equal => {}
        }
    }
    // Baseline entries whose findings vanished entirely also invite a ratchet.
    for key in baseline.keys() {
        if !counts.contains_key(key) {
            ratchet_hints += 1;
        }
    }
    if ratchet_hints > 0 {
        println!(
            "doem-lint: {ratchet_hints} baseline entr{} exceed current findings — run with \
             --write-baseline to ratchet down",
            if ratchet_hints == 1 { "y" } else { "ies" }
        );
    }
    if failures > 0 {
        println!("doem-lint: {failures} finding(s) above baseline");
        ExitCode::FAILURE
    } else {
        println!(
            "doem-lint: clean ({} finding(s), all baselined)",
            findings.len()
        );
        ExitCode::SUCCESS
    }
}

/// Apply (or, with `check`, dry-run) the serve-unwrap autofix over the
/// rule's scope, `crates/serve/src`. In check mode nothing is written and
/// a dirty tree exits 1, so CI can demand the fix has been run.
fn run_fix(root: &Path, check: bool) -> ExitCode {
    let (rust_files, _) = collect_workspace_files(root);
    let mut dirty = 0usize;
    let mut total_rewrites = 0usize;
    for rel in &rust_files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if !rel_str.starts_with("crates/serve/src/") {
            continue;
        }
        let path = root.join(rel);
        let Ok(raw) = std::fs::read_to_string(&path) else {
            continue;
        };
        let (fixed, rewrites) = fix_serve_unwrap(&raw);
        if rewrites == 0 {
            continue;
        }
        dirty += 1;
        total_rewrites += rewrites;
        if check {
            println!("doem-lint: --fix would rewrite {rewrites} site(s) in {rel_str}");
        } else if let Err(e) = std::fs::write(&path, &fixed) {
            eprintln!("doem-lint: cannot write {rel_str}: {e}");
            return ExitCode::from(2);
        } else {
            println!("doem-lint: fixed {rewrites} unwrap site(s) in {rel_str}");
        }
    }
    if check && dirty > 0 {
        println!(
            "doem-lint: {total_rewrites} trivial unwrap site(s) in {dirty} file(s) — \
             run `cargo run --bin doem-lint -- --fix`"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "doem-lint: fix {}: {total_rewrites} rewrite(s) in {dirty} file(s)",
        if check { "check clean" } else { "complete" }
    );
    ExitCode::SUCCESS
}

/// Check sanitizer-observed lock-order edges against the static graph.
/// `dir` holds `*.edges` files (one per CI leg) of
/// `from_site<TAB>to_site` lines as written by `DOEM_SANITIZE_GRAPH`.
/// Every runtime edge must be statically predicted; a violation means the
/// static analysis missed real locking behavior and exits 1.
fn run_subset(an: &locks::Analysis, dir: &Path) -> ExitCode {
    let mut edges: Vec<(String, String)> = Vec::new();
    let mut legs = 0usize;
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("doem-lint: cannot read {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("edges") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        legs += 1;
        for line in text.lines() {
            let mut parts = line.split('\t');
            if let (Some(from), Some(to)) = (parts.next(), parts.next()) {
                if !from.is_empty() && !to.is_empty() {
                    edges.push((from.to_string(), to.to_string()));
                }
            }
        }
    }
    edges.sort();
    edges.dedup();
    let violations = locks::runtime_subset(an, &edges);
    if violations.is_empty() {
        println!(
            "doem-lint: runtime-subset clean ({} observed edge(s) from {legs} leg(s), all \
             statically predicted; static graph has {} edge(s))",
            edges.len(),
            an.edges.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("doem-lint: [runtime-subset] {v}");
        }
        println!(
            "doem-lint: {} runtime edge(s) missing from the static lock-order graph — the \
             static analysis missed real locking behavior (soundness bug in crates/lint)",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// The lint crate lives at `<root>/crates/lint`, so the workspace root is
/// two levels up from the manifest dir.
fn default_root() -> Option<PathBuf> {
    let manifest = std::env::var_os("CARGO_MANIFEST_DIR")?;
    Path::new(&manifest).parent()?.parent().map(Path::to_path_buf)
}

/// Everything one workspace pass produces: suppressed-and-audited
/// findings plus the lock analysis (for `--graph` / `--runtime-subset`).
struct Scan {
    findings: Vec<Finding>,
    analysis: locks::Analysis,
}

/// Walk the workspace and run every rule over the files in its scope.
fn scan_workspace(root: &Path) -> Scan {
    let mut findings = Vec::new();
    let (rust_files, md_files) = collect_workspace_files(root);

    // Load every Rust file once; the lock analysis needs the whole
    // workspace at once (call graph), the line rules go file-by-file.
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in &rust_files {
        let Ok(raw) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        sources.push((rel.to_string_lossy().replace('\\', "/"), raw));
    }

    let lock_inputs: Vec<(String, String)> = sources
        .iter()
        .filter(|(rel, _)| lock_scope(rel))
        .cloned()
        .collect();
    let analysis = locks::analyze(&lock_inputs);

    // Group the lock findings by file so each file's suppression pass
    // sees them alongside its line-rule findings.
    let mut lock_findings: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in &analysis.findings {
        lock_findings.entry(f.file.clone()).or_default().push(f.clone());
    }

    for (rel_str, raw) in &sources {
        let mut file_findings = lock_findings.remove(rel_str).unwrap_or_default();
        let in_compat = rel_str.starts_with("crates/compat/");
        if rel_str.starts_with("crates/serve/src/") {
            file_findings.extend(scan_serve_unwrap(rel_str, raw));
        }
        if rel_str.starts_with("crates/") && rel_str.contains("/src/") {
            // Compat stand-ins mirror external crate APIs; their parsing
            // surface (none today) is out of the fuzz contract's scope.
            if !in_compat {
                file_findings.extend(scan_parser_fuzz(rel_str, raw));
            }
        }
        file_findings.extend(scan_canonical_order(rel_str, raw, true));
        if rel_str.ends_with("src/lib.rs") {
            file_findings.extend(scan_missing_docs(rel_str, raw));
        }
        // Central suppression + stale-marker audit, per file.
        findings.extend(apply_allows(rel_str, raw, file_findings));
    }
    // Lock findings in files the walker didn't load (shouldn't happen —
    // the analysis only sees walked files) pass through unsuppressed.
    for (_, fs) in lock_findings {
        findings.extend(fs);
    }
    for rel in &md_files {
        let Ok(raw) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(scan_canonical_order(&rel_str, &raw, false));
    }
    findings.sort_by(|a, b| {
        (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line))
    });
    Scan { findings, analysis }
}

/// Parse `rule<TAB>file<TAB>count` lines; `#` comments and blanks skipped.
fn load_baseline(path: &Path) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut map = BTreeMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(map),
        Err(e) => return Err(e.to_string()),
    };
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("line {}: expected rule<TAB>file<TAB>count", i + 1));
        };
        let count: usize = count
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad count: {e}", i + 1))?;
        map.insert((rule.to_string(), file.to_string()), count);
    }
    Ok(map)
}

/// Render the current findings as a baseline file body.
fn render_baseline(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.file.clone()))
            .or_default() += 1;
    }
    let mut out = String::from(
        "# doem-lint baseline: rule<TAB>file<TAB>accepted finding count.\n\
         # Counts only ratchet down; regenerate with `cargo run --bin doem-lint -- --write-baseline`.\n",
    );
    for ((rule, file), count) in counts {
        out.push_str(&format!("{rule}\t{file}\t{count}\n"));
    }
    out
}
