//! # lint — the `doem-lint` static-analysis library
//!
//! A hand-rolled Rust static-analysis engine enforcing doem-suite
//! invariants the compiler can't check (run it with
//! `cargo run --bin doem-lint`). Two layers:
//!
//! **Line rules** on stripped source (this module):
//!
//! * **serve-unwrap** — no `.unwrap()`/`.expect(` in `crates/serve/src`
//!   outside `#[cfg(test)]`: a panicking worker takes its whole pool down,
//!   request paths must return `serve::ErrKind` instead.
//! * **parser-fuzz** — every hand-rolled parser module carries a
//!   `fuzz_tests` sibling (the CLAUDE.md panic-freedom contract).
//! * **canonical-order** — the change-set application order
//!   `creNode → remArc → updNode → addArc` (the completeness argument in
//!   `oem::changeset`) is never restated in a different order, in code or
//!   prose.
//! * **missing-docs** — every crate root carries `#![warn(missing_docs)]`.
//! * **stale-allow** — a `// lint: allow` marker that suppresses nothing
//!   is itself a finding (see [`apply_allows`]): exemptions can't outlive
//!   the code they excused.
//!
//! **Whole-program lock analysis** ([`token`] → [`ast`] → [`callgraph`] →
//! [`locks`], DESIGN.md §13):
//!
//! * **lock-order-cycle** — a cycle in the static lock-order graph is a
//!   potential deadlock, reported with full `file:line` acquisition
//!   chains.
//! * **guard-across-blocking** — a guard held across a blocking call
//!   (fsync/WAL append, `write_all`, `recv`, `join`, condvar wait,
//!   bounded-channel send), including through the call graph; this
//!   subsumes the old `guard-across-wal` line rule.
//!
//! The static graph is cross-validated against the runtime sanitizer:
//! every edge the sanitizer observes must exist statically
//! ([`locks::runtime_subset`]); CI fails otherwise.
//!
//! The scanner itself honors the contract it enforces: it is hand-rolled,
//! panic-free on arbitrary input (see `fuzz_tests` at the bottom), and
//! never unwraps.
//!
//! Suppression: a `// lint: allow` line comment (a *real* comment — doc
//! comments and string literals don't count) suppresses findings on its
//! own line and the next. The baseline file (`doem-lint.baseline`) holds
//! per-rule, per-file finding *counts*: counts above baseline fail,
//! counts below invite a `--write-baseline` ratchet.

#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod locks;
pub mod token;

/// One diagnostic: rule, repo-relative file, 1-based line, message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule slug (e.g. `serve-unwrap`).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Source stripping
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Blank out comments and string/char-literal contents with spaces,
/// preserving every newline (so line numbers survive) and the overall
/// length. Handles nested `/* */`, `//`, `"…"` with escapes, `r#"…"#`
/// raw strings, byte strings, char literals, and the char-vs-lifetime
/// ambiguity (`'a'` strips, `'a` in `&'a T` doesn't). Never panics.
pub fn strip_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut mode = Mode::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match mode {
            Mode::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    mode = Mode::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    mode = Mode::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'"' => {
                    mode = Mode::Str;
                    out.push(b' ');
                    i += 1;
                }
                b'r' | b'b' => {
                    // Possible raw / byte string start: r", r#", br#", b".
                    let mut j = i + 1;
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = (b == b'r' || bytes.get(i + 1) == Some(&b'r') || hashes == 0)
                        && bytes.get(j) == Some(&b'"')
                        && (b != b'b' || bytes.get(i + 1) == Some(&b'r') || j == i + 1);
                    if is_raw && (b == b'r' || bytes.get(i + 1) == Some(&b'r')) {
                        mode = Mode::RawStr(hashes);
                        out.extend(std::iter::repeat_n(b' ', j - i + 1));
                        i = j + 1;
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        mode = Mode::Str;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                }
                b'\'' => {
                    // Char literal vs lifetime. A literal is '\x', 'c', or
                    // '\u{..}': detect by looking for a closing quote after
                    // one (possibly escaped) char. Lifetimes ('a, 'static)
                    // have an identifier and no nearby closing quote.
                    if bytes.get(i + 1) == Some(&b'\\') {
                        mode = Mode::Char;
                        out.push(b' ');
                        i += 1;
                    } else if bytes.get(i + 2) == Some(&b'\'')
                        && bytes.get(i + 1).is_some_and(|c| *c != b'\'')
                    {
                        out.extend_from_slice(b"   ");
                        i += 3;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                }
                _ => {
                    out.push(b);
                    i += 1;
                }
            },
            Mode::LineComment => {
                if b == b'\n' {
                    mode = Mode::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    mode = if depth <= 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::BlockComment(depth.saturating_add(1));
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            Mode::Str => {
                if b == b'\\' {
                    out.push(b' ');
                    if bytes.get(i + 1).is_some() {
                        out.push(b' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if b == b'"' {
                    mode = Mode::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        mode = Mode::Code;
                        out.extend(std::iter::repeat_n(b' ', j - i));
                        i = j;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            Mode::Char => {
                if b == b'\\' && bytes.get(i + 1).is_some() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' {
                    mode = Mode::Code;
                    out.push(b' ');
                    i += 1;
                } else if b == b'\n' {
                    // Unterminated char literal (or a stray quote in
                    // macro-land): bail back to code at end of line.
                    mode = Mode::Code;
                    out.push(b'\n');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    // Stripping only substitutes ASCII for ASCII, so the output is valid
    // UTF-8 whenever the input was; from_utf8_lossy keeps us total.
    String::from_utf8_lossy(&out).into_owned()
}

// ---------------------------------------------------------------------------
// Line classification helpers
// ---------------------------------------------------------------------------

/// Per-line flags for lines inside a `#[cfg(test)] mod … { … }` region
/// (computed on *stripped* source so braces in strings don't confuse the
/// matcher). Index 0 = line 1.
pub fn test_mod_lines(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut flags = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let t = lines[i].trim();
        let is_cfg_test = t.contains("#[cfg(test)]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the `mod` line (same line or within the next couple, to
        // tolerate more attributes in between), then brace-match.
        let mut j = i;
        let mut found_mod = false;
        while j < lines.len() && j <= i + 3 {
            if lines[j].trim_start().starts_with("mod ")
                || lines[j].trim_start().starts_with("pub mod ")
                || (j == i && t.contains(" mod "))
            {
                found_mod = true;
                break;
            }
            j += 1;
        }
        if !found_mod {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut opened = false;
        let mut k = j;
        while k < lines.len() {
            for c in lines[k].bytes() {
                match c {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            if let Some(f) = flags.get_mut(k) {
                *f = true;
            }
            if opened && depth <= 0 {
                break;
            }
            k += 1;
        }
        i = k + 1;
    }
    flags
}

/// Per-line suppression flags from `// lint: allow` comments in the *raw*
/// source: the marker suppresses findings on its own line and the next.
///
/// Markers are recognized by the tokenizer ([`token::allow_marker_lines`]):
/// only a *plain* `//` line comment counts — doc comments (`///`, `//!`)
/// and string literals mentioning the phrase are prose, not suppressions.
pub fn allow_lines(raw: &str) -> Vec<bool> {
    let n = raw.lines().count();
    let mut flags = vec![false; n];
    for line in token::allow_marker_lines(raw) {
        let i = (line as usize).saturating_sub(1);
        if let Some(f) = flags.get_mut(i) {
            *f = true;
        }
        if let Some(f) = flags.get_mut(i + 1) {
            *f = true;
        }
    }
    flags
}

/// Apply `// lint: allow` suppression to one file's findings, and audit
/// the markers themselves: a marker that suppresses *zero* findings is
/// reported as a `stale-allow` finding — exemptions can't outlive the
/// code they excused.
///
/// This is the single suppression point: individual scanners report
/// everything they see, and the driver funnels each file's combined
/// findings (line rules + lock analysis) through here. `stale-allow`
/// findings are deliberately not themselves suppressible.
pub fn apply_allows(file: &str, raw: &str, findings: Vec<Finding>) -> Vec<Finding> {
    let markers = token::allow_marker_lines(raw);
    let mut used = vec![false; markers.len()];
    let mut kept = Vec::new();
    for f in findings {
        let mut suppressed = false;
        for (mi, &m) in markers.iter().enumerate() {
            let m = m as usize;
            if f.line == m || f.line == m + 1 {
                used[mi] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    for (mi, &m) in markers.iter().enumerate() {
        if !used[mi] {
            kept.push(Finding {
                rule: "stale-allow",
                file: file.to_string(),
                line: m as usize,
                message: "`// lint: allow` suppresses no finding — remove the marker \
                          (stale exemptions hide future regressions at this site)"
                    .to_string(),
            });
        }
    }
    kept.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    kept
}

fn flag(v: &[bool], idx: usize) -> bool {
    v.get(idx).copied().unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Rule: serve-unwrap
// ---------------------------------------------------------------------------

/// `crates/serve/src` request paths must return `serve::ErrKind` errors, not
/// panic: flag `.unwrap()` / `.expect(` outside `#[cfg(test)]` modules.
///
/// Reports *all* sites — suppression happens centrally in [`apply_allows`]
/// so stale markers stay detectable.
pub fn scan_serve_unwrap(file: &str, raw: &str) -> Vec<Finding> {
    let stripped = strip_source(raw);
    let tests = test_mod_lines(&stripped);
    let mut out = Vec::new();
    for (i, line) in stripped.lines().enumerate() {
        if flag(&tests, i) {
            continue;
        }
        for pat in [".unwrap()", ".expect("] {
            if line.contains(pat) {
                out.push(Finding {
                    rule: "serve-unwrap",
                    file: file.to_string(),
                    line: i + 1,
                    message: format!(
                        "`{pat}` in a serve request path — a panicking worker kills its pool; \
                         return an ErrKind error (or mark provably-infallible sites with \
                         `// lint: allow`)"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Autofix: serve-unwrap
// ---------------------------------------------------------------------------

/// Per-line flags for lines inside a function whose declared return type
/// is a `Result` (computed on *stripped* source). Signatures may span up
/// to eight lines; the body is brace-matched from the opening `{`. Nested
/// functions override their enclosing region (an inner `fn` returning
/// `()` inside a `Result` fn is *not* flagged), so the flags are safe to
/// drive the `.unwrap()` → `?` rewrite.
fn result_fn_lines(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut flags = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let Some(fn_pos) = fn_keyword(lines[i]) else {
            i += 1;
            continue;
        };
        // Gather the signature text up to the body `{` (or a `;` for a
        // trait method declaration, which has no body to flag).
        let mut sig = String::new();
        let mut brace_line = None;
        let mut j = i;
        'sig: while j < lines.len() && j <= i + 8 {
            let seg = if j == i {
                lines[j].get(fn_pos..).unwrap_or("")
            } else {
                lines[j]
            };
            for c in seg.chars() {
                match c {
                    '{' => {
                        brace_line = Some(j);
                        break 'sig;
                    }
                    ';' => break 'sig,
                    _ => sig.push(c),
                }
            }
            sig.push(' ');
            j += 1;
        }
        let Some(bl) = brace_line else {
            i = j + 1;
            continue;
        };
        let returns_result = sig
            .split("->")
            .nth(1)
            .is_some_and(|ret| ret.contains("Result"));
        let mut depth = 0i64;
        let mut opened = false;
        let mut k = bl;
        while k < lines.len() {
            for c in lines[k].bytes() {
                match c {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            // Overwrite (not |=) so an inner fn's verdict wins over the
            // enclosing region's; outer-first scan order makes that right.
            if let Some(f) = flags.get_mut(k) {
                *f = returns_result;
            }
            if opened && depth <= 0 {
                break;
            }
            k += 1;
        }
        i = bl + 1;
    }
    flags
}

/// Byte offset of an `fn ` keyword on `line`, rejecting identifiers that
/// merely end in "fn" (`often `).
fn fn_keyword(line: &str) -> Option<usize> {
    let idx = line.find("fn ")?;
    if idx > 0 {
        let prev = line.as_bytes().get(idx - 1).copied().unwrap_or(b' ');
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return None;
        }
    }
    Some(idx)
}

/// Rewrite the *trivial* serve-unwrap hits: a `.unwrap()` in a function
/// whose return type is a `Result` becomes `?`. Returns the fixed source
/// and the number of rewrites (0 means the text is returned unchanged).
///
/// Deliberately conservative — each skipped case stays a reported finding
/// for a human:
/// * lines inside `#[cfg(test)]` modules or under `// lint: allow`;
/// * `.expect(…)` calls (the message is information the fix would lose);
/// * lines where a `|` precedes the call (a closure body can't use `?`
///   against the enclosing function's return type);
/// * functions not returning `Result` (includes `Option`-returning fns —
///   `?` on a `Result` there wouldn't compile anyway).
///
/// The rewrite is idempotent: the output contains no eligible `.unwrap()`
/// sites, so a second pass reports zero rewrites. It is also
/// byte-ending-preserving: each line's terminator (`\n` or `\r\n`, or none
/// on a final unterminated line) is copied through verbatim, so a CRLF
/// file stays CRLF and `--fix --check` converges on it.
pub fn fix_serve_unwrap(raw: &str) -> (String, usize) {
    let stripped = strip_source(raw);
    let tests = test_mod_lines(&stripped);
    let allows = allow_lines(raw);
    let result_fns = result_fn_lines(&stripped);
    let mut rewrites = 0usize;
    let mut out = String::with_capacity(raw.len());
    let mut off = 0usize;
    for (i, seg) in raw.split_inclusive('\n').enumerate() {
        // Stripping is length-preserving, so the raw segment's byte range
        // addresses its stripped counterpart directly (this is what keeps
        // `.unwrap()` inside a string literal untouched).
        let sseg = stripped.get(off..off + seg.len()).unwrap_or("");
        off += seg.len();
        let term_len = if seg.ends_with("\r\n") {
            2
        } else {
            usize::from(seg.ends_with('\n'))
        };
        let line = seg.get(..seg.len() - term_len).unwrap_or("");
        let sl = sseg.get(..sseg.len().saturating_sub(term_len)).unwrap_or("");
        let eligible = flag(&result_fns, i) && !flag(&tests, i) && !flag(&allows, i);
        if !eligible || !sl.contains(".unwrap()") {
            out.push_str(seg);
            continue;
        }
        const PAT: &str = ".unwrap()";
        let mut cursor = 0usize;
        while let Some(pos) = sl.get(cursor..).and_then(|s| s.find(PAT)) {
            let at = cursor + pos;
            let in_closure = sl.get(..at).is_some_and(|pre| pre.contains('|'));
            out.push_str(line.get(cursor..at).unwrap_or(""));
            if in_closure {
                out.push_str(PAT);
            } else {
                out.push('?');
                rewrites += 1;
            }
            cursor = at + PAT.len();
        }
        out.push_str(line.get(cursor..).unwrap_or(""));
        out.push_str(seg.get(seg.len() - term_len..).unwrap_or(""));
    }
    (out, rewrites)
}

// ---------------------------------------------------------------------------
// Rule: parser-fuzz
// ---------------------------------------------------------------------------

/// A module that hand-rolls parsing (`pub fn parse*` or `impl FromStr`)
/// must carry a `mod fuzz_tests` sibling proving panic-freedom.
pub fn scan_parser_fuzz(file: &str, raw: &str) -> Vec<Finding> {
    let stripped = strip_source(raw);
    let tests = test_mod_lines(&stripped);
    let mut first_parser_line = None;
    for (i, line) in stripped.lines().enumerate() {
        if flag(&tests, i) {
            continue;
        }
        let t = line.trim_start();
        let is_parser = t.starts_with("pub fn parse")
            || (t.starts_with("impl") && t.contains("FromStr for"));
        if is_parser {
            first_parser_line = Some(i + 1);
            break;
        }
    }
    let Some(line) = first_parser_line else {
        return Vec::new();
    };
    if stripped.lines().any(|l| {
        let t = l.trim_start();
        t.starts_with("mod fuzz_tests") || t.starts_with("pub mod fuzz_tests")
    }) {
        return Vec::new();
    }
    vec![Finding {
        rule: "parser-fuzz",
        file: file.to_string(),
        line,
        message: "hand-rolled parser module has no `fuzz_tests` sibling — add a proptest \
                  never-panics module (see lorel::parser::fuzz_tests for the idiom)"
            .to_string(),
    }]
}

// ---------------------------------------------------------------------------
// Rule: canonical-order
// ---------------------------------------------------------------------------

const OPS: [&str; 4] = ["creNode", "remArc", "updNode", "addArc"];

fn op_phase(word: &str) -> Option<usize> {
    OPS.iter()
        .position(|o| word.eq_ignore_ascii_case(o))
}

/// Positions (byte offset, phase) of change-op names on a line, in
/// textual order. Case-insensitive so `CreNode` enum variants count.
fn ops_on_line(line: &str) -> Vec<(usize, usize)> {
    let mut found = Vec::new();
    for op in OPS {
        let lower = line.to_ascii_lowercase();
        let needle = op.to_ascii_lowercase();
        let mut from = 0usize;
        while let Some(pos) = lower.get(from..).and_then(|s| s.find(&needle)) {
            let at = from + pos;
            if let Some(phase) = op_phase(op) {
                found.push((at, phase));
            }
            from = at + needle.len();
        }
    }
    found.sort_unstable();
    found.dedup();
    found
}

/// Does the text between two op names on a line read as a pure arrow
/// joint? Whitespace, backticks, and emphasis stars are cosmetic; the
/// remainder must be exactly one `->` or `→`. Anything else (commas,
/// words, parenthesised arguments) means the names are an enumeration,
/// not an ordered chain.
fn is_arrow_gap(gap: &str) -> bool {
    let meat: String = gap
        .chars()
        .filter(|c| !c.is_whitespace() && *c != '`' && *c != '*')
        .collect();
    meat == "->" || meat == "\u{2192}"
}

/// Split the ops on a line into maximal arrow-joined chains of phases.
fn arrow_chains(line: &str) -> Vec<Vec<usize>> {
    let ops = ops_on_line(line);
    let mut chains: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for (idx, &(at, phase)) in ops.iter().enumerate() {
        if current.is_empty() {
            current.push(phase);
        } else {
            let (prev_at, prev_phase) = ops[idx - 1];
            let prev_end = prev_at + OPS[prev_phase].len();
            let joined = line.get(prev_end..at).is_some_and(is_arrow_gap);
            if joined {
                current.push(phase);
            } else {
                chains.push(std::mem::take(&mut current));
                current.push(phase);
            }
        }
    }
    if !current.is_empty() {
        chains.push(current);
    }
    chains.retain(|c| c.len() >= 2);
    chains
}

/// The canonical change-set application order (`creNode → remArc →
/// updNode → addArc`, `oem::changeset`'s completeness argument) must
/// never be restated in a different order. Two checks:
///
/// 1. **Arrow chains** (docs, comments, prose): a run of ≥ 2 op names
///    joined by `→`/`->` arrows must list them in ascending phase order.
///    Comma-separated enumerations of the op *kinds* are not chains and
///    carry no order claim. For Rust files, `#[cfg(test)]` regions are
///    skipped (lint fixtures quote bad chains on purpose).
/// 2. **Phase maps** (code): a ≤ 6-line window in which all four ops are
///    matched to integers (`CreNode … => 0`) must assign ascending
///    integers in canonical order.
pub fn scan_canonical_order(file: &str, raw: &str, is_rust: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    let lines: Vec<&str> = raw.lines().collect();
    let tests = if is_rust {
        test_mod_lines(&strip_source(raw))
    } else {
        Vec::new()
    };
    // Check 1: arrow chains, on raw text (the order statement usually
    // lives in prose or doc comments).
    for (i, line) in lines.iter().enumerate() {
        if flag(&tests, i) {
            continue;
        }
        for chain in arrow_chains(line) {
            if chain.windows(2).any(|w| w[0] >= w[1]) {
                out.push(Finding {
                    rule: "canonical-order",
                    file: file.to_string(),
                    line: i + 1,
                    message: format!(
                        "change-op chain listed out of canonical order (found {:?}; the \
                         completeness argument requires creNode -> remArc -> updNode -> addArc)",
                        chain.iter().map(|&p| OPS[p]).collect::<Vec<_>>()
                    ),
                });
            }
        }
    }
    // Check 2: phase-map windows, on stripped code.
    if is_rust {
        let stripped = strip_source(raw);
        let code_lines: Vec<&str> = stripped.lines().collect();
        for start in 0..code_lines.len() {
            let end = (start + 6).min(code_lines.len());
            let mut map: [Option<i64>; 4] = [None; 4];
            let mut complete_at = None;
            for (j, line) in code_lines.iter().enumerate().take(end).skip(start) {
                for (op_idx, op) in OPS.iter().enumerate() {
                    if let Some(n) = arm_number(line, op) {
                        map[op_idx] = Some(n);
                    }
                }
                if map.iter().all(Option::is_some) {
                    complete_at = Some(j);
                    break;
                }
            }
            let Some(j) = complete_at else { continue };
            // Only report once per window family: require the window to
            // START on a line contributing the creNode arm.
            if arm_number(code_lines.get(start).copied().unwrap_or(""), OPS[0]).is_none() {
                continue;
            }
            let nums: Vec<i64> = map.iter().map(|n| n.unwrap_or(0)).collect();
            if nums.windows(2).any(|w| w[0] >= w[1]) {
                out.push(Finding {
                    rule: "canonical-order",
                    file: file.to_string(),
                    line: start + 1,
                    message: format!(
                        "phase map assigns non-canonical order {nums:?} to \
                         (creNode, remArc, updNode, addArc) — application order is load-bearing \
                         (oem::changeset completeness argument)"
                    ),
                });
            }
            let _ = j;
        }
    }
    out
}

/// If `line` looks like a match arm pairing `op` with an integer
/// (`CreNode … => 0`), return the integer.
fn arm_number(line: &str, op: &str) -> Option<i64> {
    let lower = line.to_ascii_lowercase();
    let pos = lower.find(&op.to_ascii_lowercase())?;
    let rest = lower.get(pos..)?;
    let arrow = rest.find("=>")?;
    let after = rest.get(arrow + 2..)?.trim_start();
    let digits: String = after.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// Rule: missing-docs
// ---------------------------------------------------------------------------

/// Every crate root (`src/lib.rs`) must carry `#![warn(missing_docs)]`.
pub fn scan_missing_docs(file: &str, raw: &str) -> Vec<Finding> {
    let stripped = strip_source(raw);
    if stripped.contains("#![warn(missing_docs)]") {
        return Vec::new();
    }
    vec![Finding {
        rule: "missing-docs",
        file: file.to_string(),
        line: 1,
        message: "crate root lacks `#![warn(missing_docs)]` (workspace documentation contract)"
            .to_string(),
    }]
}

// ---------------------------------------------------------------------------
// Workspace file collection (shared by the CLI and the cross-validation
// tests, so both sides of the runtime-subset contract see the same set)
// ---------------------------------------------------------------------------

/// Recursive workspace walk: collects `.rs` under `crates/` (and
/// top-level `tests/`, `src/` if present) and `.md` everywhere, skipping
/// `target`, VCS internals, and anything deeper than a sane bound.
/// Returns repo-relative `(rust_files, md_files)`, sorted.
pub fn collect_workspace_files(
    root: &std::path::Path,
) -> (Vec<std::path::PathBuf>, Vec<std::path::PathBuf>) {
    fn walk(
        root: &std::path::Path,
        dir: &std::path::Path,
        rust: &mut Vec<std::path::PathBuf>,
        md: &mut Vec<std::path::PathBuf>,
        depth: u32,
    ) {
        if depth > 8 {
            return;
        }
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') || name == "node_modules" {
                    continue;
                }
                walk(root, &path, rust, md, depth + 1);
            } else if let Ok(rel) = path.strip_prefix(root) {
                let rel_str = rel.to_string_lossy();
                if name.ends_with(".rs")
                    && (rel_str.starts_with("crates/")
                        || rel_str.starts_with("tests/")
                        || rel_str.starts_with("src/"))
                {
                    rust.push(rel.to_path_buf());
                } else if name.ends_with(".md") {
                    md.push(rel.to_path_buf());
                }
            }
        }
    }
    let mut rust = Vec::new();
    let mut md = Vec::new();
    walk(root, root, &mut rust, &mut md, 0);
    rust.sort();
    md.sort();
    (rust, md)
}

/// Is this repo-relative file in scope for the whole-program lock
/// analysis? The compat shims and the sanitizer implement the lock
/// primitives themselves — their internal `lock()` calls are the
/// instrumentation, not users of it — so they stay out of the model.
pub fn lock_scope(rel: &str) -> bool {
    !rel.starts_with("crates/compat/") && !rel.starts_with("crates/sanitizer/")
}

/// Load every workspace source in scope for the lock analysis, as
/// repo-relative `(path, source)` pairs — the exact input set
/// `doem-lint` analyzes, for tests that must agree with it.
pub fn lock_analysis_sources(root: &std::path::Path) -> Vec<(String, String)> {
    let (rust, _) = collect_workspace_files(root);
    let mut out = Vec::new();
    for rel in rust {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if !lock_scope(&rel_str) {
            continue;
        }
        if let Ok(raw) = std::fs::read_to_string(root.join(&rel)) {
            out.push((rel_str, raw));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_comments_and_strings() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\nlet b = y.unwrap();\n";
        let s = strip_source(src);
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(!s.lines().next().unwrap_or("").contains(".unwrap()"));
        assert!(s.lines().nth(1).unwrap_or("").contains(".unwrap()"));
    }

    #[test]
    fn stripper_handles_raw_strings_and_chars() {
        let s = strip_source("let r = r#\"a \" b\"#; let c = '\\''; let l: &'static str = x;");
        assert!(!s.contains("a \" b"));
        assert!(s.contains("'static"));
        let s2 = strip_source("proptest src in \"\\\\PC{0,80}\"");
        assert!(!s2.contains("PC{0,80}"));
    }

    #[test]
    fn test_mods_are_skipped() {
        let src = "fn a() { b.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { c.unwrap(); }\n}\n";
        let f = scan_serve_unwrap("crates/serve/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn a() {\n  // lint: allow\n  b.unwrap();\n  c.unwrap(); // lint: allow\n  e();\n  d.unwrap();\n}\n";
        let raw_findings = scan_serve_unwrap("crates/serve/src/x.rs", src);
        assert_eq!(raw_findings.len(), 3, "scanner reports everything");
        let f = apply_allows("crates/serve/src/x.rs", src, raw_findings);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn stale_allow_marker_is_a_finding() {
        // A marker with nothing to suppress is itself reported …
        let src = "fn a() {\n  // lint: allow\n  fine();\n}\n";
        let f = apply_allows("x.rs", src, Vec::new());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].rule, f[0].line), ("stale-allow", 2));
        // … but doc comments and strings mentioning the phrase are not
        // markers, so they can't go stale.
        let prose = "/// about `// lint: allow` markers\nlet s = \"// lint: allow\";\n";
        assert!(apply_allows("x.rs", prose, Vec::new()).is_empty());
    }

    #[test]
    fn fix_rewrites_unwrap_in_result_fns() {
        let before = "fn load(p: &str) -> std::io::Result<u64> {\n    let n = read(p).unwrap();\n    Ok(n)\n}\n";
        let (after, n) = fix_serve_unwrap(before);
        assert_eq!(n, 1);
        assert!(after.contains("read(p)?;"), "{after}");
        // The fixed file no longer trips the scanner.
        assert!(scan_serve_unwrap("crates/serve/src/x.rs", &after).is_empty());
    }

    #[test]
    fn fix_is_idempotent() {
        let before = "fn a() -> Result<(), E> {\n    b().unwrap();\n    c().unwrap();\n    Ok(())\n}\n";
        let (once, n1) = fix_serve_unwrap(before);
        assert_eq!(n1, 2);
        let (twice, n2) = fix_serve_unwrap(&once);
        assert_eq!(n2, 0);
        assert_eq!(once, twice);
    }

    #[test]
    fn fix_leaves_nontrivial_sites_alone() {
        // Non-Result fn: `?` would not compile.
        let void_fn = "fn a() {\n    b().unwrap();\n}\n";
        assert_eq!(fix_serve_unwrap(void_fn).1, 0);
        // Inner non-Result fn inside a Result fn.
        let nested = "fn outer() -> Result<(), E> {\n    fn inner() {\n        b().unwrap();\n    }\n    inner();\n    Ok(())\n}\n";
        assert_eq!(fix_serve_unwrap(nested).1, 0);
        // Closure bodies can't use `?` against the enclosing fn.
        let closure = "fn a() -> Result<(), E> {\n    spawn(move || b().unwrap());\n    Ok(())\n}\n";
        assert_eq!(fix_serve_unwrap(closure).1, 0);
        // Tests, allows, string literals, and `.expect(` stay put.
        let src = "fn a() -> Result<(), E> {\n    // lint: allow\n    b().unwrap();\n    let s = \"x.unwrap()\";\n    c().expect(\"why\");\n    Ok(())\n}\n#[cfg(test)]\nmod tests {\n    fn t() -> Result<(), E> {\n        d().unwrap();\n        Ok(())\n    }\n}\n";
        let (after, n) = fix_serve_unwrap(src);
        assert_eq!(n, 0, "{after}");
        assert_eq!(after, src);
    }

    #[test]
    fn fix_preserves_crlf_line_endings() {
        let before = "fn load(p: &str) -> std::io::Result<u64> {\r\n    let n = read(p).unwrap();\r\n    Ok(n)\r\n}\r\n";
        let (after, n) = fix_serve_unwrap(before);
        assert_eq!(n, 1);
        assert!(after.contains("read(p)?;\r\n"), "{after:?}");
        assert!(!after.contains("\n    Ok(n)\n"), "LF leak: {after:?}");
        // Idempotent on the CRLF output: --fix --check converges.
        let (twice, n2) = fix_serve_unwrap(&after);
        assert_eq!(n2, 0);
        assert_eq!(after, twice);
        // Untouched CRLF input passes through byte-for-byte (no trailing-
        // newline surgery, no \r loss) — including a final unterminated line.
        let clean = "fn a() {}\r\nfn b() {}\r\nconst X: u8 = 0;";
        let (out, n3) = fix_serve_unwrap(clean);
        assert_eq!(n3, 0);
        assert_eq!(out, clean);
    }

    #[test]
    fn parser_fuzz_rule_requires_sibling() {
        let bare = "pub fn parse_thing(s: &str) -> Result<(), ()> { Ok(()) }\n";
        assert_eq!(scan_parser_fuzz("x.rs", bare).len(), 1);
        let with = format!("{bare}#[cfg(test)]\nmod fuzz_tests {{}}\n");
        assert!(scan_parser_fuzz("x.rs", &with).is_empty());
        assert!(scan_parser_fuzz("x.rs", "fn nothing() {}\n").is_empty());
    }

    #[test]
    fn canonical_order_arrow_chains() {
        let good = "apply in creNode -> remArc -> updNode -> addArc order\n";
        assert!(scan_canonical_order("DESIGN.md", good, false).is_empty());
        let bad = "apply in addArc -> creNode order\n";
        assert_eq!(scan_canonical_order("DESIGN.md", bad, false).len(), 1);
        let unrelated = "x -> y\n";
        assert!(scan_canonical_order("DESIGN.md", unrelated, false).is_empty());
        // Comma-separated enumerations carry no order claim, even when the
        // line also happens to contain an arrow elsewhere.
        let enumeration =
            "the ops (`creNode`, `updNode`, `addArc`, `remArc`) drive the HTML->OEM parser\n";
        assert!(scan_canonical_order("DESIGN.md", enumeration, false).is_empty());
        // A correct chain followed by prose that re-mentions an op is fine.
        let chain_then_prose =
            "order `creNode → remArc → updNode → addArc`: `remArc` only targets arcs\n";
        assert!(scan_canonical_order("x.rs", chain_then_prose, false).is_empty());
    }

    #[test]
    fn canonical_order_phase_maps() {
        let good = "match op {\n  CreNode(..) => 0,\n  RemArc(..) => 1,\n  UpdNode(..) => 2,\n  AddArc(..) => 3,\n}\n";
        assert!(scan_canonical_order("x.rs", good, true).is_empty());
        let bad = "match op {\n  CreNode(..) => 0,\n  AddArc(..) => 1,\n  UpdNode(..) => 2,\n  RemArc(..) => 3,\n}\n";
        assert_eq!(scan_canonical_order("x.rs", bad, true).len(), 1);
    }

    #[test]
    fn missing_docs_rule() {
        assert!(scan_missing_docs("x.rs", "#![warn(missing_docs)]\n").is_empty());
        assert_eq!(scan_missing_docs("x.rs", "//! docs\n").len(), 1);
        // The attribute in a comment doesn't count.
        assert_eq!(
            scan_missing_docs("x.rs", "// #![warn(missing_docs)]\n").len(),
            1
        );
    }

    /// The scanner honors the panic-freedom contract it enforces.
    mod fuzz_tests {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

            #[test]
            fn strip_source_never_panics(src in "\\PC{0,160}") {
                let out = strip_source(&src);
                prop_assert_eq!(out.lines().count(), src.lines().count());
            }

            #[test]
            fn fixer_never_panics_and_converges(src in "\\PC{0,160}") {
                let (once, _) = fix_serve_unwrap(&src);
                let (twice, n2) = fix_serve_unwrap(&once);
                prop_assert_eq!(n2, 0);
                prop_assert_eq!(once, twice);
            }

            #[test]
            fn fixer_preserves_line_terminators(src in "(ok\\(\\)\\.unwrap\\(\\);|fn f\\(\\) -> Result<u8, E> \\{|\\}|\r\n|\n|x){0,40}") {
                // Whatever the fixer does to line *contents*, the sequence
                // of terminators (\r\n vs \n vs none) is untouched.
                let (fixed, _) = fix_serve_unwrap(&src);
                let terms = |s: &str| s.split_inclusive('\n').map(|seg| {
                    if seg.ends_with("\r\n") { 2u8 } else { u8::from(seg.ends_with('\n')) }
                }).collect::<Vec<u8>>();
                prop_assert_eq!(terms(&src), terms(&fixed));
            }

            #[test]
            fn scanners_never_panic(src in "\\PC{0,160}") {
                let _ = scan_serve_unwrap("crates/serve/src/f.rs", &src);
                let _ = scan_parser_fuzz("f.rs", &src);
                let _ = scan_canonical_order("f.rs", &src, true);
                let _ = scan_canonical_order("f.md", &src, false);
                let _ = scan_missing_docs("f.rs", &src);
                let _ = apply_allows("f.rs", &src, Vec::new());
            }

            #[test]
            fn scanners_never_panic_on_rustish_soup(src in "(let |mut |\\.lock\\(\\)|\\.unwrap\\(\\)|sync_data\\(|creNode|=> 3|\\{|\\}|\"|'|//|/\\*|\n| ){0,60}") {
                let _ = strip_source(&src);
                let _ = scan_serve_unwrap("crates/serve/src/f.rs", &src);
                let _ = scan_canonical_order("f.rs", &src, true);
            }

            #[test]
            fn tokenizer_agrees_with_stripper(src in "\\PC{0,160}") {
                // The class-based stripper (tokenizer's view) and the
                // state-machine stripper must blank exactly the same bytes.
                prop_assert_eq!(token::strip_via_classes(&src), strip_source(&src));
            }

            #[test]
            fn tokenizer_and_parser_never_panic(src in "\\PC{0,200}") {
                let toks = token::tokenize(&src);
                // Token texts are in-order slices of the source.
                let mut at = 0usize;
                for t in &toks {
                    prop_assert!(t.start >= at);
                    prop_assert_eq!(src.get(t.start..t.start + t.text.len()), Some(t.text));
                    at = t.start;
                }
                let _ = token::allow_marker_lines(&src);
                let _ = ast::parse_file(&src);
            }

            #[test]
            fn lock_analysis_never_panics_on_rustish_soup(
                src in "(fn f\\(\\)|impl S |struct S |\\{|\\}|;|let g = |self\\.m\\.lock\\(\\)|\\.write\\(\\)|m: Mutex<u8>,|drop\\(g\\)|\\.sync_data\\(\\)|wait\\(&mut g\\)|notify_one\\(\\)|\n| ){0,60}"
            ) {
                let files = vec![("crates/x/src/l.rs".to_string(), src.clone())];
                let an = locks::analyze(&files);
                let _ = locks::dot(&an);
                let _ = locks::runtime_subset(&an, &[]);
            }
        }
    }
}
