//! # lint — the `doem-lint` scanner library
//!
//! A hand-rolled Rust-source scanner enforcing doem-suite invariants the
//! compiler can't check (run it with `cargo run --bin doem-lint`). Five
//! rules, each with a one-line rationale; DESIGN.md §9 has the full
//! catalog:
//!
//! * **serve-unwrap** — no `.unwrap()`/`.expect(` in `crates/serve/src`
//!   outside `#[cfg(test)]`: a panicking worker takes its whole pool down,
//!   request paths must return `serve::ErrKind` instead.
//! * **guard-across-wal** — no lock guard held across a WAL / fsync /
//!   checkpoint call: a multi-millisecond disk wait under a hot lock is
//!   the latency bug the sanitizer's watchdog sees at runtime; this
//!   catches it at review time. Deliberate sites (durable install under
//!   the registry lock) live in the baseline, which only ratchets down.
//! * **parser-fuzz** — every hand-rolled parser module carries a
//!   `fuzz_tests` sibling (the CLAUDE.md panic-freedom contract).
//! * **canonical-order** — the change-set application order
//!   `creNode → remArc → updNode → addArc` (the completeness argument in
//!   `oem::changeset`) is never restated in a different order, in code or
//!   prose.
//! * **missing-docs** — every crate root carries `#![warn(missing_docs)]`.
//!
//! The scanner itself honors the contract it enforces: it is hand-rolled,
//! panic-free on arbitrary input (see `fuzz_tests` at the bottom), and
//! never unwraps.
//!
//! Suppression: a `// lint: allow` comment on a line (or the line above)
//! suppresses findings on it. The baseline file (`doem-lint.baseline`)
//! holds per-rule, per-file finding *counts*: counts above baseline fail,
//! counts below invite a `--write-baseline` ratchet.

#![warn(missing_docs)]

/// One diagnostic: rule, repo-relative file, 1-based line, message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule slug (e.g. `serve-unwrap`).
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Source stripping
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Blank out comments and string/char-literal contents with spaces,
/// preserving every newline (so line numbers survive) and the overall
/// length. Handles nested `/* */`, `//`, `"…"` with escapes, `r#"…"#`
/// raw strings, byte strings, char literals, and the char-vs-lifetime
/// ambiguity (`'a'` strips, `'a` in `&'a T` doesn't). Never panics.
pub fn strip_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut mode = Mode::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match mode {
            Mode::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    mode = Mode::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    mode = Mode::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'"' => {
                    mode = Mode::Str;
                    out.push(b' ');
                    i += 1;
                }
                b'r' | b'b' => {
                    // Possible raw / byte string start: r", r#", br#", b".
                    let mut j = i + 1;
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = (b == b'r' || bytes.get(i + 1) == Some(&b'r') || hashes == 0)
                        && bytes.get(j) == Some(&b'"')
                        && (b != b'b' || bytes.get(i + 1) == Some(&b'r') || j == i + 1);
                    if is_raw && (b == b'r' || bytes.get(i + 1) == Some(&b'r')) {
                        mode = Mode::RawStr(hashes);
                        out.extend(std::iter::repeat_n(b' ', j - i + 1));
                        i = j + 1;
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        mode = Mode::Str;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                }
                b'\'' => {
                    // Char literal vs lifetime. A literal is '\x', 'c', or
                    // '\u{..}': detect by looking for a closing quote after
                    // one (possibly escaped) char. Lifetimes ('a, 'static)
                    // have an identifier and no nearby closing quote.
                    if bytes.get(i + 1) == Some(&b'\\') {
                        mode = Mode::Char;
                        out.push(b' ');
                        i += 1;
                    } else if bytes.get(i + 2) == Some(&b'\'')
                        && bytes.get(i + 1).is_some_and(|c| *c != b'\'')
                    {
                        out.extend_from_slice(b"   ");
                        i += 3;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                }
                _ => {
                    out.push(b);
                    i += 1;
                }
            },
            Mode::LineComment => {
                if b == b'\n' {
                    mode = Mode::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    mode = if depth <= 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::BlockComment(depth.saturating_add(1));
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            Mode::Str => {
                if b == b'\\' {
                    out.push(b' ');
                    if bytes.get(i + 1).is_some() {
                        out.push(b' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if b == b'"' {
                    mode = Mode::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        mode = Mode::Code;
                        out.extend(std::iter::repeat_n(b' ', j - i));
                        i = j;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            Mode::Char => {
                if b == b'\\' && bytes.get(i + 1).is_some() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' {
                    mode = Mode::Code;
                    out.push(b' ');
                    i += 1;
                } else if b == b'\n' {
                    // Unterminated char literal (or a stray quote in
                    // macro-land): bail back to code at end of line.
                    mode = Mode::Code;
                    out.push(b'\n');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    // Stripping only substitutes ASCII for ASCII, so the output is valid
    // UTF-8 whenever the input was; from_utf8_lossy keeps us total.
    String::from_utf8_lossy(&out).into_owned()
}

// ---------------------------------------------------------------------------
// Line classification helpers
// ---------------------------------------------------------------------------

/// Per-line flags for lines inside a `#[cfg(test)] mod … { … }` region
/// (computed on *stripped* source so braces in strings don't confuse the
/// matcher). Index 0 = line 1.
pub fn test_mod_lines(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut flags = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let t = lines[i].trim();
        let is_cfg_test = t.contains("#[cfg(test)]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the `mod` line (same line or within the next couple, to
        // tolerate more attributes in between), then brace-match.
        let mut j = i;
        let mut found_mod = false;
        while j < lines.len() && j <= i + 3 {
            if lines[j].trim_start().starts_with("mod ")
                || lines[j].trim_start().starts_with("pub mod ")
                || (j == i && t.contains(" mod "))
            {
                found_mod = true;
                break;
            }
            j += 1;
        }
        if !found_mod {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut opened = false;
        let mut k = j;
        while k < lines.len() {
            for c in lines[k].bytes() {
                match c {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            if let Some(f) = flags.get_mut(k) {
                *f = true;
            }
            if opened && depth <= 0 {
                break;
            }
            k += 1;
        }
        i = k + 1;
    }
    flags
}

/// Per-line suppression flags from `// lint: allow` comments in the *raw*
/// source: the marker suppresses findings on its own line and the next.
pub fn allow_lines(raw: &str) -> Vec<bool> {
    let lines: Vec<&str> = raw.lines().collect();
    let mut flags = vec![false; lines.len()];
    for (i, l) in lines.iter().enumerate() {
        if l.contains("lint: allow") {
            flags[i] = true;
            if let Some(f) = flags.get_mut(i + 1) {
                *f = true;
            }
        }
    }
    flags
}

fn flag(v: &[bool], idx: usize) -> bool {
    v.get(idx).copied().unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Rule: serve-unwrap
// ---------------------------------------------------------------------------

/// `crates/serve/src` request paths must return `serve::ErrKind` errors, not
/// panic: flag `.unwrap()` / `.expect(` outside `#[cfg(test)]` modules.
///
pub fn scan_serve_unwrap(file: &str, raw: &str) -> Vec<Finding> {
    let stripped = strip_source(raw);
    let tests = test_mod_lines(&stripped);
    let allows = allow_lines(raw);
    let mut out = Vec::new();
    for (i, line) in stripped.lines().enumerate() {
        if flag(&tests, i) || flag(&allows, i) {
            continue;
        }
        for pat in [".unwrap()", ".expect("] {
            if line.contains(pat) {
                out.push(Finding {
                    rule: "serve-unwrap",
                    file: file.to_string(),
                    line: i + 1,
                    message: format!(
                        "`{pat}` in a serve request path — a panicking worker kills its pool; \
                         return an ErrKind error (or mark provably-infallible sites with \
                         `// lint: allow`)"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Autofix: serve-unwrap
// ---------------------------------------------------------------------------

/// Per-line flags for lines inside a function whose declared return type
/// is a `Result` (computed on *stripped* source). Signatures may span up
/// to eight lines; the body is brace-matched from the opening `{`. Nested
/// functions override their enclosing region (an inner `fn` returning
/// `()` inside a `Result` fn is *not* flagged), so the flags are safe to
/// drive the `.unwrap()` → `?` rewrite.
fn result_fn_lines(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut flags = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let Some(fn_pos) = fn_keyword(lines[i]) else {
            i += 1;
            continue;
        };
        // Gather the signature text up to the body `{` (or a `;` for a
        // trait method declaration, which has no body to flag).
        let mut sig = String::new();
        let mut brace_line = None;
        let mut j = i;
        'sig: while j < lines.len() && j <= i + 8 {
            let seg = if j == i {
                lines[j].get(fn_pos..).unwrap_or("")
            } else {
                lines[j]
            };
            for c in seg.chars() {
                match c {
                    '{' => {
                        brace_line = Some(j);
                        break 'sig;
                    }
                    ';' => break 'sig,
                    _ => sig.push(c),
                }
            }
            sig.push(' ');
            j += 1;
        }
        let Some(bl) = brace_line else {
            i = j + 1;
            continue;
        };
        let returns_result = sig
            .split("->")
            .nth(1)
            .is_some_and(|ret| ret.contains("Result"));
        let mut depth = 0i64;
        let mut opened = false;
        let mut k = bl;
        while k < lines.len() {
            for c in lines[k].bytes() {
                match c {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            // Overwrite (not |=) so an inner fn's verdict wins over the
            // enclosing region's; outer-first scan order makes that right.
            if let Some(f) = flags.get_mut(k) {
                *f = returns_result;
            }
            if opened && depth <= 0 {
                break;
            }
            k += 1;
        }
        i = bl + 1;
    }
    flags
}

/// Byte offset of an `fn ` keyword on `line`, rejecting identifiers that
/// merely end in "fn" (`often `).
fn fn_keyword(line: &str) -> Option<usize> {
    let idx = line.find("fn ")?;
    if idx > 0 {
        let prev = line.as_bytes().get(idx - 1).copied().unwrap_or(b' ');
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return None;
        }
    }
    Some(idx)
}

/// Rewrite the *trivial* serve-unwrap hits: a `.unwrap()` in a function
/// whose return type is a `Result` becomes `?`. Returns the fixed source
/// and the number of rewrites (0 means the text is returned unchanged).
///
/// Deliberately conservative — each skipped case stays a reported finding
/// for a human:
/// * lines inside `#[cfg(test)]` modules or under `// lint: allow`;
/// * `.expect(…)` calls (the message is information the fix would lose);
/// * lines where a `|` precedes the call (a closure body can't use `?`
///   against the enclosing function's return type);
/// * functions not returning `Result` (includes `Option`-returning fns —
///   `?` on a `Result` there wouldn't compile anyway).
///
/// The rewrite is idempotent: the output contains no eligible `.unwrap()`
/// sites, so a second pass reports zero rewrites.
pub fn fix_serve_unwrap(raw: &str) -> (String, usize) {
    let stripped = strip_source(raw);
    let tests = test_mod_lines(&stripped);
    let allows = allow_lines(raw);
    let result_fns = result_fn_lines(&stripped);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let mut rewrites = 0usize;
    let mut out = String::with_capacity(raw.len());
    for (i, line) in raw.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let eligible = flag(&result_fns, i) && !flag(&tests, i) && !flag(&allows, i);
        let sl = stripped_lines.get(i).copied().unwrap_or("");
        if !eligible || !sl.contains(".unwrap()") {
            out.push_str(line);
            continue;
        }
        // Stripping is length-preserving, so offsets found in the
        // stripped line splice directly into the raw line (this is what
        // keeps `.unwrap()` inside a string literal untouched).
        const PAT: &str = ".unwrap()";
        let mut cursor = 0usize;
        while let Some(pos) = sl.get(cursor..).and_then(|s| s.find(PAT)) {
            let at = cursor + pos;
            let in_closure = sl.get(..at).is_some_and(|pre| pre.contains('|'));
            out.push_str(line.get(cursor..at).unwrap_or(""));
            if in_closure {
                out.push_str(PAT);
            } else {
                out.push('?');
                rewrites += 1;
            }
            cursor = at + PAT.len();
        }
        out.push_str(line.get(cursor..).unwrap_or(""));
    }
    if raw.ends_with('\n') {
        out.push('\n');
    }
    (out, rewrites)
}

// ---------------------------------------------------------------------------
// Rule: guard-across-wal
// ---------------------------------------------------------------------------

/// Calls that reach disk (WAL append/fsync, checkpoint, store save) —
/// holding a lock guard across one stalls every peer of that lock for a
/// disk round-trip.
const WAL_CALLS: [&str; 6] = [
    ".sync_data(",
    ".sync_all(",
    ".save_doem(",
    "fresh_durable_db(",
    "checkpoint_published(",
    ".append_batch(",
];

struct Guard {
    name: String,
    depth: i64,
}

/// Flag disk-reaching calls made while a lock guard (`let g = x.lock()` /
/// `.read()` / `.write()` and `try_` variants) is live in scope.
pub fn scan_guard_across_wal(file: &str, raw: &str) -> Vec<Finding> {
    let stripped = strip_source(raw);
    let tests = test_mod_lines(&stripped);
    let allows = allow_lines(raw);
    let mut out = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i64;
    for (i, line) in stripped.lines().enumerate() {
        if flag(&tests, i) {
            // Keep depth bookkeeping honest even inside skipped regions.
            for c in line.bytes() {
                match c {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            guards.retain(|g| g.depth <= depth);
            continue;
        }
        // Check calls BEFORE registering guards born on this line: the
        // call `let g = m.lock()` is not "under" g itself, and a WAL call
        // on the same line as the acquisition is textually ordered after.
        if !guards.is_empty() && !flag(&allows, i) {
            for call in WAL_CALLS {
                if line.contains(call) {
                    let held: Vec<&str> = guards.iter().map(|g| g.name.as_str()).collect();
                    out.push(Finding {
                        rule: "guard-across-wal",
                        file: file.to_string(),
                        line: i + 1,
                        message: format!(
                            "`{}` called while lock guard(s) [{}] are held — a disk round-trip \
                             under a lock stalls every peer; stage the I/O outside the critical \
                             section or baseline the site if the ordering is load-bearing",
                            call.trim_start_matches('.').trim_end_matches('('),
                            held.join(", ")
                        ),
                    });
                }
            }
        }
        // Guard births: `let [mut] NAME = …lock()/read()/write()…`.
        if let Some(name) = guard_binding(line) {
            guards.push(Guard { name, depth });
        }
        // Explicit early drops.
        for g_idx in (0..guards.len()).rev() {
            let needle = format!("drop({})", guards[g_idx].name);
            let needle2 = format!("drop(({}", guards[g_idx].name);
            if line.contains(&needle) || line.contains(&needle2) {
                guards.remove(g_idx);
            }
        }
        for c in line.bytes() {
            match c {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|g| g.depth <= depth);
    }
    out
}

/// If `line` binds a lock guard (`let [mut] name = ….lock()/.read()/
/// .write()` or a `try_` variant), return the bound name.
fn guard_binding(line: &str) -> Option<String> {
    let has_acquire = [".lock()", ".read()", ".write()", ".try_lock()", ".try_read()", ".try_write()"]
        .iter()
        .any(|p| line.contains(p));
    if !has_acquire {
        return None;
    }
    let after_let = line.trim_start().strip_prefix("let ")?;
    let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let);
    let name: String = after_mut
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        return None;
    }
    // Tuple/struct patterns aren't guard bindings we can track.
    if after_mut.trim_start().starts_with('(') {
        return None;
    }
    Some(name)
}

// ---------------------------------------------------------------------------
// Rule: parser-fuzz
// ---------------------------------------------------------------------------

/// A module that hand-rolls parsing (`pub fn parse*` or `impl FromStr`)
/// must carry a `mod fuzz_tests` sibling proving panic-freedom.
pub fn scan_parser_fuzz(file: &str, raw: &str) -> Vec<Finding> {
    let stripped = strip_source(raw);
    let tests = test_mod_lines(&stripped);
    let mut first_parser_line = None;
    for (i, line) in stripped.lines().enumerate() {
        if flag(&tests, i) {
            continue;
        }
        let t = line.trim_start();
        let is_parser = t.starts_with("pub fn parse")
            || (t.starts_with("impl") && t.contains("FromStr for"));
        if is_parser {
            first_parser_line = Some(i + 1);
            break;
        }
    }
    let Some(line) = first_parser_line else {
        return Vec::new();
    };
    if stripped.lines().any(|l| {
        let t = l.trim_start();
        t.starts_with("mod fuzz_tests") || t.starts_with("pub mod fuzz_tests")
    }) {
        return Vec::new();
    }
    vec![Finding {
        rule: "parser-fuzz",
        file: file.to_string(),
        line,
        message: "hand-rolled parser module has no `fuzz_tests` sibling — add a proptest \
                  never-panics module (see lorel::parser::fuzz_tests for the idiom)"
            .to_string(),
    }]
}

// ---------------------------------------------------------------------------
// Rule: canonical-order
// ---------------------------------------------------------------------------

const OPS: [&str; 4] = ["creNode", "remArc", "updNode", "addArc"];

fn op_phase(word: &str) -> Option<usize> {
    OPS.iter()
        .position(|o| word.eq_ignore_ascii_case(o))
}

/// Positions (byte offset, phase) of change-op names on a line, in
/// textual order. Case-insensitive so `CreNode` enum variants count.
fn ops_on_line(line: &str) -> Vec<(usize, usize)> {
    let mut found = Vec::new();
    for op in OPS {
        let lower = line.to_ascii_lowercase();
        let needle = op.to_ascii_lowercase();
        let mut from = 0usize;
        while let Some(pos) = lower.get(from..).and_then(|s| s.find(&needle)) {
            let at = from + pos;
            if let Some(phase) = op_phase(op) {
                found.push((at, phase));
            }
            from = at + needle.len();
        }
    }
    found.sort_unstable();
    found.dedup();
    found
}

/// Does the text between two op names on a line read as a pure arrow
/// joint? Whitespace, backticks, and emphasis stars are cosmetic; the
/// remainder must be exactly one `->` or `→`. Anything else (commas,
/// words, parenthesised arguments) means the names are an enumeration,
/// not an ordered chain.
fn is_arrow_gap(gap: &str) -> bool {
    let meat: String = gap
        .chars()
        .filter(|c| !c.is_whitespace() && *c != '`' && *c != '*')
        .collect();
    meat == "->" || meat == "\u{2192}"
}

/// Split the ops on a line into maximal arrow-joined chains of phases.
fn arrow_chains(line: &str) -> Vec<Vec<usize>> {
    let ops = ops_on_line(line);
    let mut chains: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for (idx, &(at, phase)) in ops.iter().enumerate() {
        if current.is_empty() {
            current.push(phase);
        } else {
            let (prev_at, prev_phase) = ops[idx - 1];
            let prev_end = prev_at + OPS[prev_phase].len();
            let joined = line.get(prev_end..at).is_some_and(is_arrow_gap);
            if joined {
                current.push(phase);
            } else {
                chains.push(std::mem::take(&mut current));
                current.push(phase);
            }
        }
    }
    if !current.is_empty() {
        chains.push(current);
    }
    chains.retain(|c| c.len() >= 2);
    chains
}

/// The canonical change-set application order (`creNode → remArc →
/// updNode → addArc`, `oem::changeset`'s completeness argument) must
/// never be restated in a different order. Two checks:
///
/// 1. **Arrow chains** (docs, comments, prose): a run of ≥ 2 op names
///    joined by `→`/`->` arrows must list them in ascending phase order.
///    Comma-separated enumerations of the op *kinds* are not chains and
///    carry no order claim. For Rust files, `#[cfg(test)]` regions are
///    skipped (lint fixtures quote bad chains on purpose).
/// 2. **Phase maps** (code): a ≤ 6-line window in which all four ops are
///    matched to integers (`CreNode … => 0`) must assign ascending
///    integers in canonical order.
pub fn scan_canonical_order(file: &str, raw: &str, is_rust: bool) -> Vec<Finding> {
    let allows = allow_lines(raw);
    let mut out = Vec::new();
    let lines: Vec<&str> = raw.lines().collect();
    let tests = if is_rust {
        test_mod_lines(&strip_source(raw))
    } else {
        Vec::new()
    };
    // Check 1: arrow chains, on raw text (the order statement usually
    // lives in prose or doc comments).
    for (i, line) in lines.iter().enumerate() {
        if flag(&allows, i) || flag(&tests, i) {
            continue;
        }
        for chain in arrow_chains(line) {
            if chain.windows(2).any(|w| w[0] >= w[1]) {
                out.push(Finding {
                    rule: "canonical-order",
                    file: file.to_string(),
                    line: i + 1,
                    message: format!(
                        "change-op chain listed out of canonical order (found {:?}; the \
                         completeness argument requires creNode -> remArc -> updNode -> addArc)",
                        chain.iter().map(|&p| OPS[p]).collect::<Vec<_>>()
                    ),
                });
            }
        }
    }
    // Check 2: phase-map windows, on stripped code.
    if is_rust {
        let stripped = strip_source(raw);
        let code_lines: Vec<&str> = stripped.lines().collect();
        for start in 0..code_lines.len() {
            let end = (start + 6).min(code_lines.len());
            let mut map: [Option<i64>; 4] = [None; 4];
            let mut complete_at = None;
            for (j, line) in code_lines.iter().enumerate().take(end).skip(start) {
                for (op_idx, op) in OPS.iter().enumerate() {
                    if let Some(n) = arm_number(line, op) {
                        map[op_idx] = Some(n);
                    }
                }
                if map.iter().all(Option::is_some) {
                    complete_at = Some(j);
                    break;
                }
            }
            let Some(j) = complete_at else { continue };
            // Only report once per window family: require the window to
            // START on a line contributing the creNode arm.
            if arm_number(code_lines.get(start).copied().unwrap_or(""), OPS[0]).is_none() {
                continue;
            }
            if flag(&allows, start) {
                continue;
            }
            let nums: Vec<i64> = map.iter().map(|n| n.unwrap_or(0)).collect();
            if nums.windows(2).any(|w| w[0] >= w[1]) {
                out.push(Finding {
                    rule: "canonical-order",
                    file: file.to_string(),
                    line: start + 1,
                    message: format!(
                        "phase map assigns non-canonical order {nums:?} to \
                         (creNode, remArc, updNode, addArc) — application order is load-bearing \
                         (oem::changeset completeness argument)"
                    ),
                });
            }
            let _ = j;
        }
    }
    out
}

/// If `line` looks like a match arm pairing `op` with an integer
/// (`CreNode … => 0`), return the integer.
fn arm_number(line: &str, op: &str) -> Option<i64> {
    let lower = line.to_ascii_lowercase();
    let pos = lower.find(&op.to_ascii_lowercase())?;
    let rest = lower.get(pos..)?;
    let arrow = rest.find("=>")?;
    let after = rest.get(arrow + 2..)?.trim_start();
    let digits: String = after.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return None;
    }
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// Rule: missing-docs
// ---------------------------------------------------------------------------

/// Every crate root (`src/lib.rs`) must carry `#![warn(missing_docs)]`.
pub fn scan_missing_docs(file: &str, raw: &str) -> Vec<Finding> {
    let stripped = strip_source(raw);
    if stripped.contains("#![warn(missing_docs)]") {
        return Vec::new();
    }
    vec![Finding {
        rule: "missing-docs",
        file: file.to_string(),
        line: 1,
        message: "crate root lacks `#![warn(missing_docs)]` (workspace documentation contract)"
            .to_string(),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_comments_and_strings() {
        let src = "let a = \"x.unwrap()\"; // .unwrap()\nlet b = y.unwrap();\n";
        let s = strip_source(src);
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(!s.lines().next().unwrap_or("").contains(".unwrap()"));
        assert!(s.lines().nth(1).unwrap_or("").contains(".unwrap()"));
    }

    #[test]
    fn stripper_handles_raw_strings_and_chars() {
        let s = strip_source("let r = r#\"a \" b\"#; let c = '\\''; let l: &'static str = x;");
        assert!(!s.contains("a \" b"));
        assert!(s.contains("'static"));
        let s2 = strip_source("proptest src in \"\\\\PC{0,80}\"");
        assert!(!s2.contains("PC{0,80}"));
    }

    #[test]
    fn test_mods_are_skipped() {
        let src = "fn a() { b.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { c.unwrap(); }\n}\n";
        let f = scan_serve_unwrap("crates/serve/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn a() {\n  // lint: allow\n  b.unwrap();\n  c.unwrap(); // lint: allow\n  e();\n  d.unwrap();\n}\n";
        let f = scan_serve_unwrap("crates/serve/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn fix_rewrites_unwrap_in_result_fns() {
        let before = "fn load(p: &str) -> std::io::Result<u64> {\n    let n = read(p).unwrap();\n    Ok(n)\n}\n";
        let (after, n) = fix_serve_unwrap(before);
        assert_eq!(n, 1);
        assert!(after.contains("read(p)?;"), "{after}");
        // The fixed file no longer trips the scanner.
        assert!(scan_serve_unwrap("crates/serve/src/x.rs", &after).is_empty());
    }

    #[test]
    fn fix_is_idempotent() {
        let before = "fn a() -> Result<(), E> {\n    b().unwrap();\n    c().unwrap();\n    Ok(())\n}\n";
        let (once, n1) = fix_serve_unwrap(before);
        assert_eq!(n1, 2);
        let (twice, n2) = fix_serve_unwrap(&once);
        assert_eq!(n2, 0);
        assert_eq!(once, twice);
    }

    #[test]
    fn fix_leaves_nontrivial_sites_alone() {
        // Non-Result fn: `?` would not compile.
        let void_fn = "fn a() {\n    b().unwrap();\n}\n";
        assert_eq!(fix_serve_unwrap(void_fn).1, 0);
        // Inner non-Result fn inside a Result fn.
        let nested = "fn outer() -> Result<(), E> {\n    fn inner() {\n        b().unwrap();\n    }\n    inner();\n    Ok(())\n}\n";
        assert_eq!(fix_serve_unwrap(nested).1, 0);
        // Closure bodies can't use `?` against the enclosing fn.
        let closure = "fn a() -> Result<(), E> {\n    spawn(move || b().unwrap());\n    Ok(())\n}\n";
        assert_eq!(fix_serve_unwrap(closure).1, 0);
        // Tests, allows, string literals, and `.expect(` stay put.
        let src = "fn a() -> Result<(), E> {\n    // lint: allow\n    b().unwrap();\n    let s = \"x.unwrap()\";\n    c().expect(\"why\");\n    Ok(())\n}\n#[cfg(test)]\nmod tests {\n    fn t() -> Result<(), E> {\n        d().unwrap();\n        Ok(())\n    }\n}\n";
        let (after, n) = fix_serve_unwrap(src);
        assert_eq!(n, 0, "{after}");
        assert_eq!(after, src);
    }

    #[test]
    fn guard_across_wal_flags_and_releases() {
        let src = "fn a(m: &Mutex<u8>) {\n  let g = m.lock();\n  file.sync_data()?;\n}\n";
        let f = scan_guard_across_wal("crates/serve/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("[g]"));

        let freed = "fn a(m: &Mutex<u8>) {\n  let g = m.lock();\n  drop(g);\n  file.sync_data()?;\n}\n";
        assert!(scan_guard_across_wal("x.rs", freed).is_empty());

        let scoped = "fn a(m: &Mutex<u8>) {\n  {\n    let g = m.lock();\n  }\n  file.sync_data()?;\n}\n";
        assert!(scan_guard_across_wal("x.rs", scoped).is_empty());
    }

    #[test]
    fn parser_fuzz_rule_requires_sibling() {
        let bare = "pub fn parse_thing(s: &str) -> Result<(), ()> { Ok(()) }\n";
        assert_eq!(scan_parser_fuzz("x.rs", bare).len(), 1);
        let with = format!("{bare}#[cfg(test)]\nmod fuzz_tests {{}}\n");
        assert!(scan_parser_fuzz("x.rs", &with).is_empty());
        assert!(scan_parser_fuzz("x.rs", "fn nothing() {}\n").is_empty());
    }

    #[test]
    fn canonical_order_arrow_chains() {
        let good = "apply in creNode -> remArc -> updNode -> addArc order\n";
        assert!(scan_canonical_order("DESIGN.md", good, false).is_empty());
        let bad = "apply in addArc -> creNode order\n";
        assert_eq!(scan_canonical_order("DESIGN.md", bad, false).len(), 1);
        let unrelated = "x -> y\n";
        assert!(scan_canonical_order("DESIGN.md", unrelated, false).is_empty());
        // Comma-separated enumerations carry no order claim, even when the
        // line also happens to contain an arrow elsewhere.
        let enumeration =
            "the ops (`creNode`, `updNode`, `addArc`, `remArc`) drive the HTML->OEM parser\n";
        assert!(scan_canonical_order("DESIGN.md", enumeration, false).is_empty());
        // A correct chain followed by prose that re-mentions an op is fine.
        let chain_then_prose =
            "order `creNode → remArc → updNode → addArc`: `remArc` only targets arcs\n";
        assert!(scan_canonical_order("x.rs", chain_then_prose, false).is_empty());
    }

    #[test]
    fn canonical_order_phase_maps() {
        let good = "match op {\n  CreNode(..) => 0,\n  RemArc(..) => 1,\n  UpdNode(..) => 2,\n  AddArc(..) => 3,\n}\n";
        assert!(scan_canonical_order("x.rs", good, true).is_empty());
        let bad = "match op {\n  CreNode(..) => 0,\n  AddArc(..) => 1,\n  UpdNode(..) => 2,\n  RemArc(..) => 3,\n}\n";
        assert_eq!(scan_canonical_order("x.rs", bad, true).len(), 1);
    }

    #[test]
    fn missing_docs_rule() {
        assert!(scan_missing_docs("x.rs", "#![warn(missing_docs)]\n").is_empty());
        assert_eq!(scan_missing_docs("x.rs", "//! docs\n").len(), 1);
        // The attribute in a comment doesn't count.
        assert_eq!(
            scan_missing_docs("x.rs", "// #![warn(missing_docs)]\n").len(),
            1
        );
    }

    /// The scanner honors the panic-freedom contract it enforces.
    mod fuzz_tests {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

            #[test]
            fn strip_source_never_panics(src in "\\PC{0,160}") {
                let out = strip_source(&src);
                prop_assert_eq!(out.lines().count(), src.lines().count());
            }

            #[test]
            fn fixer_never_panics_and_converges(src in "\\PC{0,160}") {
                let (once, _) = fix_serve_unwrap(&src);
                let (twice, n2) = fix_serve_unwrap(&once);
                prop_assert_eq!(n2, 0);
                prop_assert_eq!(once, twice);
            }

            #[test]
            fn scanners_never_panic(src in "\\PC{0,160}") {
                let _ = scan_serve_unwrap("crates/serve/src/f.rs", &src);
                let _ = scan_guard_across_wal("f.rs", &src);
                let _ = scan_parser_fuzz("f.rs", &src);
                let _ = scan_canonical_order("f.rs", &src, true);
                let _ = scan_canonical_order("f.md", &src, false);
                let _ = scan_missing_docs("f.rs", &src);
            }

            #[test]
            fn scanners_never_panic_on_rustish_soup(src in "(let |mut |\\.lock\\(\\)|\\.unwrap\\(\\)|sync_data\\(|creNode|=> 3|\\{|\\}|\"|'|//|/\\*|\n| ){0,60}") {
                let _ = strip_source(&src);
                let _ = scan_serve_unwrap("crates/serve/src/f.rs", &src);
                let _ = scan_guard_across_wal("f.rs", &src);
                let _ = scan_canonical_order("f.rs", &src, true);
            }
        }
    }
}
