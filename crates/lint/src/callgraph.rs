//! # callgraph — approximate workspace call graph + transitive effects
//!
//! Resolution is **by bare name**: a call `x.foo(..)` or `a::b::foo(..)`
//! resolves to *every* workspace `fn foo`. That is a deliberate
//! over-approximation (DESIGN.md §13): without type inference we cannot
//! pick the right impl, and for a soundness-oriented lock analysis the
//! union of all candidates is the safe choice. The cost is precision —
//! popular names (`new`, `get`) fan out widely — which is why findings
//! carry full witness chains: a false path is visible in the report.
//!
//! [`transitive`] propagates per-function facts (lock acquisitions,
//! blocking calls, condvar notifies) up the call graph to a fixpoint,
//! keeping one shortest witness chain per (function, fact).

use crate::ast::{FileAst, FnDef};
use std::collections::HashMap;

/// A source location, `file:line` with a repo-relative path.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// One function in the workspace model.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Repo-relative file the function lives in.
    pub file: String,
    /// The parsed definition.
    pub def: FnDef,
}

/// The workspace call graph: all parsed fns plus a bare-name index.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// All functions, in deterministic (file, line) order.
    pub fns: Vec<FnNode>,
    by_name: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Build the graph from per-file ASTs. `files` must use repo-relative
    /// paths; order does not matter (the result is sorted).
    pub fn build(files: &[(String, FileAst)]) -> CallGraph {
        let mut fns: Vec<FnNode> = Vec::new();
        for (file, ast) in files {
            for def in &ast.fns {
                fns.push(FnNode {
                    file: file.clone(),
                    def: def.clone(),
                });
            }
        }
        fns.sort_by(|a, b| (&a.file, a.def.line).cmp(&(&b.file, b.def.line)));
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.def.name.clone()).or_default().push(i);
        }
        CallGraph { fns, by_name }
    }

    /// All workspace fns with this bare name (empty for externals).
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A fact reachable from a function, with the call-site chain that
/// witnesses it: `chain[0]` is the call in the function's own body (or
/// the fact's own site for direct facts), the last element is the fact's
/// defining site.
#[derive(Clone, Debug)]
pub struct Effect<T> {
    /// The propagated fact.
    pub what: T,
    /// Witness chain, outermost call first. Never empty.
    pub chain: Vec<Site>,
}

/// Chains longer than this stop propagating: deep enough for real
/// reports, and it bounds the fixpoint.
const MAX_CHAIN: usize = 8;

/// Propagate `direct` facts through `calls` (resolved callee index +
/// call site, per function) to a fixpoint. Callers resolve names to
/// indices first (see [`CallGraph::resolve`]) so they can apply
/// receiver-type restrictions. Returns, per function, one best
/// (shortest, then lexicographically first) witness chain per fact.
pub fn transitive<T: Clone + Eq + std::hash::Hash + Ord>(
    cg: &CallGraph,
    direct: &[Vec<Effect<T>>],
    calls: &[Vec<(usize, Site)>],
) -> Vec<HashMap<T, Vec<Site>>> {
    let n = cg.fns.len();
    let mut out: Vec<HashMap<T, Vec<Site>>> = vec![HashMap::new(); n];
    // callers[callee] = [(caller, call site)]
    let mut callers: Vec<Vec<(usize, Site)>> = vec![Vec::new(); n];
    for (caller, cs) in calls.iter().enumerate().take(n) {
        for (callee, site) in cs {
            if let Some(c) = callers.get_mut(*callee) {
                c.push((caller, site.clone()));
            }
        }
    }
    let better = |cand: &Vec<Site>, old: Option<&Vec<Site>>| match old {
        None => true,
        Some(o) => (cand.len(), cand.as_slice()) < (o.len(), o.as_slice()),
    };
    let mut work: Vec<usize> = (0..n).collect();
    for (f, effs) in direct.iter().enumerate().take(n) {
        for e in effs {
            if e.chain.is_empty() || e.chain.len() > MAX_CHAIN {
                continue;
            }
            if better(&e.chain, out[f].get(&e.what)) {
                out[f].insert(e.what.clone(), e.chain.clone());
            }
        }
    }
    while let Some(callee) = work.pop() {
        // Push every fact of `callee` into each caller, prefixed by the
        // call site.
        let facts: Vec<(T, Vec<Site>)> = out[callee]
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (caller, site) in callers[callee].clone() {
            let mut changed = false;
            for (what, chain) in &facts {
                if chain.len() + 1 > MAX_CHAIN {
                    continue;
                }
                let mut cand = Vec::with_capacity(chain.len() + 1);
                cand.push(site.clone());
                cand.extend(chain.iter().cloned());
                if better(&cand, out[caller].get(what)) {
                    out[caller].insert(what.clone(), cand);
                    changed = true;
                }
            }
            if changed && !work.contains(&caller) {
                work.push(caller);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;

    fn site(file: &str, line: u32) -> Site {
        Site {
            file: file.to_string(),
            line,
        }
    }

    #[test]
    fn bare_name_resolution_is_an_over_approximation() {
        let a = parse_file("impl A { fn go(&self) {} } fn go() {}");
        let cg = CallGraph::build(&[("a.rs".to_string(), a)]);
        assert_eq!(cg.resolve("go").len(), 2);
        assert!(cg.resolve("missing").is_empty());
    }

    #[test]
    fn transitive_facts_carry_call_chains() {
        // c() has a direct fact; b() calls c(); a() calls b().
        let ast = parse_file("fn a() { b(); } fn b() { c(); } fn c() {}");
        let cg = CallGraph::build(&[("x.rs".to_string(), ast)]);
        let idx = |name: &str| cg.resolve(name)[0];
        let mut direct: Vec<Vec<Effect<&str>>> = vec![Vec::new(); cg.fns.len()];
        direct[idx("c")].push(Effect {
            what: "fact",
            chain: vec![site("x.rs", 9)],
        });
        let mut calls: Vec<Vec<(usize, Site)>> = vec![Vec::new(); cg.fns.len()];
        calls[idx("a")].push((idx("b"), site("x.rs", 1)));
        calls[idx("b")].push((idx("c"), site("x.rs", 5)));
        let eff = transitive(&cg, &direct, &calls);
        let chain = &eff[idx("a")]["fact"];
        assert_eq!(
            chain,
            &[site("x.rs", 1), site("x.rs", 5), site("x.rs", 9)]
        );
    }

    #[test]
    fn recursion_reaches_a_fixpoint() {
        let ast = parse_file("fn a() { b(); } fn b() { a(); }");
        let cg = CallGraph::build(&[("x.rs".to_string(), ast)]);
        let idx = |name: &str| cg.resolve(name)[0];
        let mut direct: Vec<Vec<Effect<&str>>> = vec![Vec::new(); cg.fns.len()];
        direct[idx("b")].push(Effect {
            what: "fact",
            chain: vec![site("x.rs", 2)],
        });
        let mut calls: Vec<Vec<(usize, Site)>> = vec![Vec::new(); cg.fns.len()];
        calls[idx("a")].push((idx("b"), site("x.rs", 1)));
        calls[idx("b")].push((idx("a"), site("x.rs", 2)));
        let eff = transitive(&cg, &direct, &calls);
        assert!(eff[idx("a")].contains_key("fact"));
        assert!(eff[idx("b")].contains_key("fact"));
    }
}
