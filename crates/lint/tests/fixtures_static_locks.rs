//! Fixture suite for the static lock-order analysis: small synthetic
//! "workspaces" with known deadlock shapes, checked down to the exact
//! `file:line` witness chains the findings report. Complements the unit
//! tests in `locks.rs` (which cover guard extents and key resolution)
//! and the live cross-validation in the root `lock_graph_subset` test.

use lint::locks::{analyze, runtime_subset, Analysis};

fn an(files: &[(&str, &str)]) -> Analysis {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze(&owned)
}

/// The canonical two-function inter-procedural inversion: `lock_a_then_b`
/// takes `a` and calls a helper that takes `b`; `lock_b_then_a` does the
/// reverse. Neither function inverts the order *locally* — only the call
/// graph sees the cycle.
#[test]
fn two_fn_interprocedural_cycle_with_exact_chains() {
    let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn lock_a_then_b(&self) { let g = self.a.lock(); self.take_b(); }
    fn take_b(&self) { let h = self.b.lock(); }
    fn lock_b_then_a(&self) { let g = self.b.lock(); self.take_a(); }
    fn take_a(&self) { let h = self.a.lock(); }
}
";
    let a = an(&[("crates/x/src/lib.rs", src)]);

    let ab = a
        .edges
        .get(&("S.a".to_string(), "S.b".to_string()))
        .expect("edge S.a -> S.b");
    // Witness: `a` acquired on line 3, then the call on line 3 reaches
    // the `b` acquisition on line 4.
    assert_eq!(ab.to_site.to_string(), "crates/x/src/lib.rs:4");
    let chain: Vec<String> = ab.chain.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        chain,
        vec!["crates/x/src/lib.rs:3".to_string(), "crates/x/src/lib.rs:4".to_string()]
    );

    let ba = a
        .edges
        .get(&("S.b".to_string(), "S.a".to_string()))
        .expect("edge S.b -> S.a");
    let chain: Vec<String> = ba.chain.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        chain,
        vec!["crates/x/src/lib.rs:5".to_string(), "crates/x/src/lib.rs:6".to_string()]
    );

    let cycles: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order-cycle")
        .collect();
    assert_eq!(cycles.len(), 1, "one cycle, reported once: {:#?}", a.findings);
    assert!(
        cycles[0].message.contains("S.a") && cycles[0].message.contains("S.b"),
        "cycle names both locks: {}",
        cycles[0].message
    );
}

/// A guard held across `sync_data` (the fsync-under-lock shape the old
/// `guard-across-wal` rule special-cased) is reported with the full
/// acquisition-to-blocking chain, including through an intermediate fn.
#[test]
fn guard_across_fsync_reports_the_blocking_chain() {
    let src = "\
struct W { m: Mutex<u32> }
impl W {
    fn flush(&self) {
        let g = self.m.lock();
        self.persist();
    }
    fn persist(&self) {
        self.file.sync_data();
    }
}
";
    let a = an(&[("crates/x/src/lib.rs", src)]);
    let f = a
        .findings
        .iter()
        .find(|f| f.rule == "guard-across-blocking")
        .expect("guard-across-blocking finding");
    assert_eq!(f.file, "crates/x/src/lib.rs");
    assert_eq!(f.line, 4, "anchored at the acquisition");
    assert!(
        f.message.contains("`W.m`") && f.message.contains("sync_data"),
        "names the lock and the blocking call: {}",
        f.message
    );
    assert!(
        f.message.contains("crates/x/src/lib.rs:5 -> crates/x/src/lib.rs:8"),
        "chain runs call-site -> blocking-site: {}",
        f.message
    );
}

/// The ubiquitous condvar pattern — notify while holding the paired
/// mutex, wait releases it — must NOT report: the wait side registers
/// the condvar edge only against locks still held *besides* the paired
/// mutex, and the notify side's `cv -> paired` edge closes no cycle.
#[test]
fn condvar_paired_mutex_is_not_a_false_positive() {
    let src = "\
struct Q { m: Mutex<u32>, cv: Condvar }
impl Q {
    fn consume(&self) {
        let mut g = self.m.lock();
        self.cv.wait(&mut g);
    }
    fn produce(&self) {
        let g = self.m.lock();
        self.cv.notify_one();
    }
}
";
    let a = an(&[("crates/x/src/lib.rs", src)]);
    assert!(
        a.findings.iter().all(|f| f.rule != "lock-order-cycle"),
        "paired condvar use reported a cycle: {:#?}",
        a.findings
    );
    // And the wait itself is not "blocking under the paired guard".
    assert!(
        a.findings.iter().all(|f| f.rule != "guard-across-blocking"),
        "paired condvar wait reported guard-across-blocking: {:#?}",
        a.findings
    );
}

/// An *unrelated* lock held across the wait is the lost-wakeup deadlock
/// and must still be reported as a cycle through the condvar node.
#[test]
fn condvar_wait_under_unrelated_lock_is_a_cycle() {
    let src = "\
struct Q { m: Mutex<u32>, other: Mutex<u32>, cv: Condvar }
impl Q {
    fn consume(&self) {
        let o = self.other.lock();
        let mut g = self.m.lock();
        self.cv.wait(&mut g);
    }
    fn produce(&self) {
        let o = self.other.lock();
        self.cv.notify_one();
    }
}
";
    let a = an(&[("crates/x/src/lib.rs", src)]);
    assert!(
        a.findings.iter().any(|f| f.rule == "lock-order-cycle"),
        "lost-wakeup shape not reported: {:#?}",
        a.findings
    );
}

/// The subset check must catch a deliberately deleted static edge: the
/// negative control for the CI cross-validation gate.
#[test]
fn runtime_subset_catches_a_deleted_static_edge() {
    let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
    }
}
";
    let a = an(&[("crates/x/src/lib.rs", src)]);
    // A runtime observation matching the static witness sites.
    let edge = (
        "crates/x/src/lib.rs:4".to_string(),
        "crates/x/src/lib.rs:5".to_string(),
    );
    assert!(runtime_subset(&a, std::slice::from_ref(&edge)).is_empty());

    let mut pruned = a.clone();
    pruned
        .edges
        .remove(&("S.a".to_string(), "S.b".to_string()))
        .expect("static edge to delete");
    let violations = runtime_subset(&pruned, &[edge]);
    assert_eq!(violations.len(), 1, "deleted edge not caught: {violations:#?}");
    assert!(
        violations[0].contains("no static counterpart"),
        "violation explains the miss: {}",
        violations[0]
    );
}
