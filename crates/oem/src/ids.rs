//! Object identifiers.
//!
//! The paper (Definition 2.1) models an OEM database over a set `N` of
//! object identifiers. Identifiers of deleted objects are never reused
//! (Section 2.2), so [`NodeId`] values are allocated monotonically by
//! [`crate::OemDatabase`] and retired ids stay retired.

use std::fmt;

/// An opaque object identifier.
///
/// Displayed in the paper's `nK` style (`n1`, `n42`, …). Ids are unique for
/// the lifetime of a database: once a node has been garbage-collected its id
/// is retired and a `creNode` with that id is rejected.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u64);

impl NodeId {
    /// Construct a node id from its raw numeric form.
    ///
    /// Mostly useful for tests and for decoding stored databases; within a
    /// single database, prefer ids returned by allocation.
    pub fn from_raw(raw: u64) -> NodeId {
        NodeId(raw)
    }

    /// `const` variant of [`NodeId::from_raw`] for fixture constants.
    pub const fn from_raw_const(raw: u64) -> NodeId {
        NodeId(raw)
    }

    /// The raw numeric form of this id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(NodeId::from_raw(7).to_string(), "n7");
        assert_eq!(format!("{:?}", NodeId::from_raw(7)), "n7");
    }

    #[test]
    fn raw_round_trip() {
        for raw in [0, 1, 42, u64::MAX] {
            assert_eq!(NodeId::from_raw(raw).raw(), raw);
        }
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
    }
}
