//! The paper's running example: the Palo Alto Weekly restaurant Guide.
//!
//! These fixtures reproduce Figures 2 and 3 and the history of Example 2.3
//! with the paper's node numbering wherever the paper names a node:
//!
//! * `n1` — Bangkok Cuisine's price object (10, updated to 20 on 1Jan97)
//! * `n2` — the new Hakata restaurant object (created 1Jan97)
//! * `n3` — the "Hakata" name object (created 1Jan97)
//! * `n4` — the Guide root object
//! * `n5` — the "need info" comment object (created 5Jan97)
//! * `n6` — the Janta restaurant object
//! * `n7` — the "Lytton lot 2" parking object (shared by both restaurants;
//!   its `nearby-eats` arc back to Bangkok Cuisine forms the cycle the
//!   paper points out)
//!
//! Nodes the paper leaves unnumbered get ids from `n8` upward.
//!
//! The figure in the available text is a flattened diagram, so a few
//! attachment choices are interpolated from the prose: the paper states the
//! price irregularity (int 10 vs string "moderate"), the address
//! irregularity (string "120 Lytton" vs complex street/city), n7's multiple
//! incoming arcs, and the parking/nearby-eats cycle; we satisfy all of them.

use crate::{ChangeOp, ChangeSet, GraphBuilder, History, OemDatabase, Timestamp, Value};

/// Ids for the paper-named nodes of the Guide example.
pub mod ids {
    use crate::NodeId;

    /// Bangkok Cuisine's price object.
    pub const N1: NodeId = NodeId::from_raw_const(1);
    /// The Hakata restaurant object (created by `U1`).
    pub const N2: NodeId = NodeId::from_raw_const(2);
    /// The "Hakata" name object (created by `U1`).
    pub const N3: NodeId = NodeId::from_raw_const(3);
    /// The Guide root.
    pub const N4: NodeId = NodeId::from_raw_const(4);
    /// The "need info" comment object (created by `U2`).
    pub const N5: NodeId = NodeId::from_raw_const(5);
    /// The Janta restaurant object.
    pub const N6: NodeId = NodeId::from_raw_const(6);
    /// The "Lytton lot 2" parking object.
    pub const N7: NodeId = NodeId::from_raw_const(7);
    /// The Bangkok Cuisine restaurant object (unnumbered in the paper).
    pub const BANGKOK: NodeId = NodeId::from_raw_const(8);
}

/// The Guide database of Figure 2 (Example 2.1).
pub fn guide_figure2() -> OemDatabase {
    let mut b = GraphBuilder::with_root_id("guide", ids::N4.raw());
    let guide = b.root();

    // Bangkok Cuisine: integer price, complex address.
    let bangkok = b.complex_with_id(ids::BANGKOK.raw());
    b.arc(guide, "restaurant", bangkok);
    b.atom_child(bangkok, "name", "Bangkok Cuisine");
    let price = b.atom_with_id(ids::N1.raw(), 10);
    b.arc(bangkok, "price", price);
    let address = b.complex_child(bangkok, "address");
    b.atom_child(address, "street", "Lytton");
    b.atom_child(address, "city", "Palo Alto");

    // Janta: string price, simple string address, a cuisine.
    let janta = b.complex_with_id(ids::N6.raw());
    b.arc(guide, "restaurant", janta);
    b.atom_child(janta, "name", "Janta");
    b.atom_child(janta, "price", "moderate");
    b.atom_child(janta, "address", "120 Lytton");
    b.atom_child(janta, "cuisine", "Indian");

    // The shared parking object n7: two incoming `parking` arcs, and a
    // `nearby-eats` arc back to Bangkok Cuisine closing the cycle.
    let lot = b.complex_with_id(ids::N7.raw());
    b.arc(bangkok, "parking", lot);
    b.arc(janta, "parking", lot);
    b.atom_child(lot, "name", "Lytton lot 2");
    b.atom_child(lot, "comment", "usually full");
    b.arc(lot, "nearby-eats", bangkok);

    b.finish()
}

/// The history `H = ((t1,U1),(t2,U2),(t3,U3))` of Example 2.3, valid for
/// [`guide_figure2`].
pub fn history_example_2_3() -> History {
    let t1: Timestamp = "1Jan97".parse().expect("literal");
    let t2: Timestamp = "5Jan97".parse().expect("literal");
    let t3: Timestamp = "8Jan97".parse().expect("literal");

    let u1 = ChangeSet::from_ops([
        ChangeOp::UpdNode(ids::N1, Value::Int(20)),
        ChangeOp::CreNode(ids::N2, Value::Complex),
        ChangeOp::CreNode(ids::N3, Value::str("Hakata")),
        ChangeOp::add_arc(ids::N4, "restaurant", ids::N2),
        ChangeOp::add_arc(ids::N2, "name", ids::N3),
    ])
    .expect("U1 is conflict-free");

    let u2 = ChangeSet::from_ops([
        ChangeOp::CreNode(ids::N5, Value::str("need info")),
        ChangeOp::add_arc(ids::N2, "comment", ids::N5),
    ])
    .expect("U2 is conflict-free");

    let u3 = ChangeSet::from_ops([ChangeOp::rem_arc(ids::N6, "parking", ids::N7)])
        .expect("U3 is conflict-free");

    History::from_entries([(t1, u1), (t2, u2), (t3, u3)]).expect("timestamps increase")
}

/// The Guide database of Figure 3 (Example 2.2): Figure 2 after the
/// Example 2.3 history.
pub fn guide_figure3() -> OemDatabase {
    let mut db = guide_figure2();
    history_example_2_3()
        .apply_to(&mut db)
        .expect("Example 2.3 is valid for Figure 2");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArcTriple, Label};

    #[test]
    fn figure2_shape_matches_the_prose() {
        let db = guide_figure2();
        db.check_invariants().unwrap();
        assert_eq!(db.root(), ids::N4);
        // Two restaurants.
        assert_eq!(
            db.children_labeled(db.root(), Label::new("restaurant"))
                .count(),
            2
        );
        // Price irregularity: int vs string.
        assert_eq!(db.value(ids::N1).unwrap(), &Value::Int(10));
        let janta_price = db
            .children_labeled(ids::N6, Label::new("price"))
            .next()
            .unwrap();
        assert_eq!(db.value(janta_price).unwrap(), &Value::str("moderate"));
        // Address irregularity: complex vs string.
        let bangkok_addr = db
            .children_labeled(ids::BANGKOK, Label::new("address"))
            .next()
            .unwrap();
        assert!(db.is_complex(bangkok_addr));
        let janta_addr = db
            .children_labeled(ids::N6, Label::new("address"))
            .next()
            .unwrap();
        assert_eq!(db.value(janta_addr).unwrap(), &Value::str("120 Lytton"));
        // n7 shared: multiple incoming arcs.
        assert_eq!(db.parents(ids::N7).len(), 2);
        // Cycle through parking / nearby-eats.
        assert!(db.contains_arc(ArcTriple::new(ids::BANGKOK, "parking", ids::N7)));
        assert!(db.contains_arc(ArcTriple::new(ids::N7, "nearby-eats", ids::BANGKOK)));
    }

    #[test]
    fn example_2_3_history_is_valid_for_figure2() {
        assert!(history_example_2_3().is_valid_for(&guide_figure2()));
    }

    #[test]
    fn figure3_reflects_all_three_change_sets() {
        let db = guide_figure3();
        db.check_invariants().unwrap();
        // U1: price 10 -> 20.
        assert_eq!(db.value(ids::N1).unwrap(), &Value::Int(20));
        // U1: Hakata added with a name.
        assert!(db.contains_arc(ArcTriple::new(ids::N4, "restaurant", ids::N2)));
        assert_eq!(db.value(ids::N3).unwrap(), &Value::str("Hakata"));
        // U2: "need info" comment on Hakata.
        assert!(db.contains_arc(ArcTriple::new(ids::N2, "comment", ids::N5)));
        assert_eq!(db.value(ids::N5).unwrap(), &Value::str("need info"));
        // U3: Janta's parking arc removed; n7 stays (Bangkok still parks there).
        assert!(!db.contains_arc(ArcTriple::new(ids::N6, "parking", ids::N7)));
        assert!(db.contains_node(ids::N7));
        // Three restaurants now.
        assert_eq!(
            db.children_labeled(db.root(), Label::new("restaurant"))
                .count(),
            3
        );
    }

    #[test]
    fn history_display_matches_example_2_3() {
        let h = history_example_2_3();
        let text = h.to_string();
        assert!(text.contains("(1Jan97, {updNode(n1, 20), creNode(n2, C), creNode(n3, \"Hakata\"), addArc(n4, restaurant, n2), addArc(n2, name, n3)})"));
        assert!(text.contains("(5Jan97, {creNode(n5, \"need info\"), addArc(n2, comment, n5)})"));
        assert!(text.contains("(8Jan97, {remArc(n6, parking, n7)})"));
    }
}
