//! Labeled arcs.

use crate::{Label, NodeId};
use std::fmt;

/// A labeled, directed arc `(p, l, c)`: the object `c` is an `l`-labeled
/// subobject (child) of the complex object `p` (Definition 2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcTriple {
    /// Parent (source) object.
    pub parent: NodeId,
    /// Arc label.
    pub label: Label,
    /// Child (target) object.
    pub child: NodeId,
}

impl ArcTriple {
    /// Construct an arc triple.
    pub fn new(parent: NodeId, label: impl Into<Label>, child: NodeId) -> ArcTriple {
        ArcTriple {
            parent,
            label: label.into(),
            child,
        }
    }
}

impl fmt::Debug for ArcTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.parent, self.label, self.child)
    }
}

impl fmt::Display for ArcTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_paper_triple_notation() {
        let a = ArcTriple::new(NodeId::from_raw(4), "restaurant", NodeId::from_raw(2));
        assert_eq!(a.to_string(), "(n4, restaurant, n2)");
    }

    #[test]
    fn arcs_are_set_elements() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let a = ArcTriple::new(NodeId::from_raw(1), "a", NodeId::from_raw(2));
        set.insert(a);
        assert!(set.contains(&ArcTriple::new(NodeId::from_raw(1), "a", NodeId::from_raw(2))));
        assert!(!set.contains(&ArcTriple::new(NodeId::from_raw(1), "b", NodeId::from_raw(2))));
    }
}
