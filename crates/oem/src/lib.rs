//! # OEM — the Object Exchange Model
//!
//! A from-scratch implementation of the Object Exchange Model of
//! Papakonstantinou, Garcia-Molina and Widom (ICDE 1995), as used by
//! *"Representing and Querying Changes in Semistructured Data"* (Chawathe,
//! Abiteboul, Widom; ICDE 1998), Section 2.
//!
//! An OEM database ([`OemDatabase`]) is a rooted, labeled directed graph:
//! nodes are objects (atomic values or the complex marker `C`), arcs are
//! labeled object–subobject relationships, and persistence is by
//! reachability from the distinguished root.
//!
//! This crate provides:
//!
//! * the graph itself with invariant checking ([`OemDatabase`]);
//! * the paper's four basic change operations ([`ChangeOp`]), unordered
//!   conflict-checked change sets ([`ChangeSet`]) and timestamped histories
//!   ([`History`]) — Definition 2.2;
//! * the discrete, totally ordered time domain ([`Timestamp`]) with the
//!   paper's coercing date parser (`"8Jan97"`, `"1997-01-08"`, …);
//! * traversal, structural-equality, and graph-isomorphism utilities;
//! * a textual OEM reader/writer handling shared subobjects and cycles;
//! * DOT output for regenerating the paper's figures; and
//! * the paper's running Guide example as ready-made fixtures
//!   ([`guide::guide_figure2`], [`guide::history_example_2_3`]).
//!
//! ```
//! use oem::{guide, Value};
//!
//! // Figure 2 of the paper, with the paper's node numbering.
//! let mut db = guide::guide_figure2();
//! assert_eq!(db.value(guide::ids::N1).unwrap(), &Value::Int(10));
//!
//! // Example 2.3: the three timestamped change sets, applied in order.
//! guide::history_example_2_3().apply_to(&mut db).unwrap();
//! assert_eq!(db.value(guide::ids::N1).unwrap(), &Value::Int(20));
//! ```

#![warn(missing_docs)]

mod arc;
mod builder;
mod changeset;
mod database;
mod dot;
mod eq;
mod error;
pub mod guide;
mod history;
mod html;
mod ids;
mod label;
mod ops;
mod parse_ops;
mod pmap;
mod shared;
mod text;
mod versioned;
mod timestamp;
mod traverse;
mod value;

pub use arc::ArcTriple;
pub use builder::GraphBuilder;
pub use changeset::ChangeSet;
pub use database::OemDatabase;
pub use dot::to_dot;
pub use eq::{isomorphic, same_database};
pub use error::{OemError, Result};
pub use history::{History, HistoryEntry};
pub use html::parse_html;
pub use ids::NodeId;
pub use label::Label;
pub use ops::ChangeOp;
pub use parse_ops::{parse_change_set, parse_history, parse_op};
pub use pmap::{PMap, PSet};
pub use shared::SharedOem;
pub use versioned::{VersionEntry, VersionRing, VersionedOem};
pub use text::{parse_text, write_text, TextOptions};
pub use timestamp::{ParseTimestampError, Timestamp};
pub use traverse::{follow_path, max_depth, preorder, reachable_from};
pub use value::Value;
