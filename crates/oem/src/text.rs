//! A textual OEM format, in the spirit of Lore's textual object syntax.
//!
//! Writer and parser for whole databases, used by fixtures, examples, and
//! golden tests. The format renders nesting directly and handles shared
//! subobjects and cycles through `&oid` definitions and references:
//!
//! ```text
//! guide {
//!   restaurant &n8 {
//!     name "Bangkok Cuisine",
//!     price 10,
//!     parking &n7 {
//!       name "Lytton lot 2",
//!       nearby-eats &n8          // reference back: a cycle
//!     }
//!   },
//!   restaurant {
//!     parking &n7                // reference: shared subobject
//!   }
//! }
//! ```
//!
//! An object is written as `[&oid] value`; a bare `&oid` with no following
//! value is a reference. With [`TextOptions::always_ids`], every node gets
//! an explicit id and parsing reproduces the database id-for-id.

use crate::{ArcTriple, Label, NodeId, OemDatabase, OemError, Result, Value};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Options controlling the writer.
#[derive(Clone, Copy, Debug, Default)]
pub struct TextOptions {
    /// Emit an `&nK` id for every object (not just shared ones), making the
    /// text a lossless, id-preserving encoding.
    pub always_ids: bool,
}

/// Serialize `db` to the textual format.
pub fn write_text(db: &OemDatabase, opts: TextOptions) -> String {
    // Nodes needing an id: shared (in-degree > 1) or revisited via a cycle.
    let mut indeg: HashMap<NodeId, usize> = HashMap::new();
    for arc in db.arcs() {
        *indeg.entry(arc.child).or_insert(0) += 1;
    }
    let needs_id = |n: NodeId| -> bool {
        opts.always_ids || indeg.get(&n).copied().unwrap_or(0) > 1
    };

    let mut out = String::new();
    let mut defined: HashSet<NodeId> = HashSet::new();
    write!(out, "{} ", db.name()).expect("write to String");
    write_object(db, db.root(), 0, &mut out, &mut defined, &needs_id, &indeg);
    out.push('\n');
    out
}

fn write_object(
    db: &OemDatabase,
    n: NodeId,
    indent: usize,
    out: &mut String,
    defined: &mut HashSet<NodeId>,
    needs_id: &dyn Fn(NodeId) -> bool,
    indeg: &HashMap<NodeId, usize>,
) {
    if defined.contains(&n) {
        write!(out, "&{n}").expect("write to String");
        return;
    }
    // A node on the current DFS path (cycle target) also needs a ref; we
    // treat all defined-set membership uniformly above, and mark nodes
    // *before* descending so back-edges become references.
    let show_id = needs_id(n) || on_a_cycle(db, n, indeg);
    defined.insert(n);
    if show_id {
        write!(out, "&{n} ").expect("write to String");
    }
    let value = db.value(n).expect("writer walks existing nodes");
    if value.is_atomic() {
        write!(out, "{value}").expect("write to String");
        if !show_id {
            defined.remove(&n); // atoms without ids can't be referenced
        }
        return;
    }
    let children = db.children(n);
    if children.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    for (i, &(label, child)) in children.iter().enumerate() {
        for _ in 0..indent + 1 {
            out.push_str("  ");
        }
        write_label(label, out);
        out.push(' ');
        write_object(db, child, indent + 1, out, defined, needs_id, indeg);
        if i + 1 < children.len() {
            out.push(',');
        }
        out.push('\n');
    }
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push('}');
}

/// Conservative cycle check: does any path from `n` lead back to `n`?
fn on_a_cycle(db: &OemDatabase, n: NodeId, _indeg: &HashMap<NodeId, usize>) -> bool {
    let mut seen = HashSet::new();
    let mut stack: Vec<NodeId> = db.children(n).iter().map(|&(_, c)| c).collect();
    while let Some(x) = stack.pop() {
        if x == n {
            return true;
        }
        if seen.insert(x) {
            stack.extend(db.children(x).iter().map(|&(_, c)| c));
        }
    }
    false
}

fn label_needs_quoting(l: &str) -> bool {
    l.is_empty()
        || !l
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '&')
        || l.chars().next().is_some_and(|c| c.is_ascii_digit())
}

fn write_label(label: Label, out: &mut String) {
    let s = label.as_str();
    if label_needs_quoting(s) {
        write!(out, "`{s}`").expect("write to String");
    } else {
        out.push_str(s);
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> OemError {
        OemError::Text {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn eat(&mut self, want: u8) -> Result<()> {
        self.skip_ws();
        match self.peek() {
            Some(b) if b == want => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!(
                "expected {:?}, found {:?}",
                want as char,
                other.map(|b| b as char)
            ))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'&' {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii slice")
            .to_string())
    }

    fn label(&mut self) -> Result<Label> {
        self.skip_ws();
        if self.peek() == Some(b'`') {
            self.bump();
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'`' {
                    break;
                }
                self.bump();
            }
            let s = std::str::from_utf8(&self.src[start..self.pos])
                .map_err(|_| self.err("invalid utf8 in label"))?
                .to_string();
            self.eat(b'`')?;
            Ok(Label::new(&s))
        } else {
            Ok(Label::new(&self.ident()?))
        }
    }

    fn string_lit(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => bytes.push(b'\n'),
                    Some(b't') => bytes.push(b'\t'),
                    Some(b'"') => bytes.push(b'"'),
                    Some(b'\\') => bytes.push(b'\\'),
                    other => {
                        return Err(self.err(format!(
                            "bad escape: \\{:?}",
                            other.map(|b| b as char)
                        )))
                    }
                },
                Some(b) => bytes.push(b),
            }
        }
        String::from_utf8(bytes).map_err(|_| self.err("invalid utf8 in string"))
    }

    fn atom(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string_lit()?.into())),
            Some(b'@') => {
                // Timestamp atom: `@` followed by text up to a delimiter
                // (possibly containing one space for the time of day).
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if matches!(c, b',' | b'}' | b'{' | b'\n') {
                        break;
                    }
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid utf8 in timestamp"))?
                    .trim();
                text.parse::<crate::Timestamp>()
                    .map(Value::Time)
                    .map_err(|e| self.err(e.to_string()))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                if b == b'-' {
                    self.bump();
                }
                let mut is_real = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.bump();
                    } else if c == b'.' && !is_real {
                        is_real = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                if is_real {
                    text.parse::<f64>()
                        .map(Value::Real)
                        .map_err(|e| self.err(format!("bad real: {e}")))
                } else {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|e| self.err(format!("bad int: {e}")))
                }
            }
            _ => {
                let word = self.ident()?;
                match word.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    "C" => Ok(Value::Complex),
                    w => Err(self.err(format!("expected a value, found {w:?}"))),
                }
            }
        }
    }
}

/// State for building the database while parsing.
struct Builder2 {
    db: OemDatabase,
    /// Text oid → node; nodes may be created as placeholders on first
    /// reference and filled in at their definition.
    named: HashMap<String, NodeId>,
    defined: HashSet<String>,
}

impl Builder2 {
    fn node_for(&mut self, name: &str) -> Result<NodeId> {
        if let Some(&n) = self.named.get(name) {
            return Ok(n);
        }
        // Prefer the numeric id embedded in `nK` names so id-preserving
        // round trips work; fall back to a fresh id.
        let n = if let Some(raw) = name.strip_prefix('n').and_then(|d| d.parse::<u64>().ok()) {
            let id = NodeId::from_raw(raw);
            if self.db.is_fresh(id) {
                self.db.create_node_with_id(id, Value::Complex)?;
                id
            } else {
                self.db.create_node(Value::Complex)
            }
        } else {
            self.db.create_node(Value::Complex)
        };
        self.named.insert(name.to_string(), n);
        Ok(n)
    }
}

/// Parse the textual format into a database.
pub fn parse_text(src: &str) -> Result<OemDatabase> {
    let mut p = Parser::new(src);
    let name = p.ident()?;
    p.skip_ws();
    // Optional explicit root id.
    let root_name = if p.peek() == Some(b'&') {
        p.bump();
        Some(p.ident()?)
    } else {
        None
    };
    // Without an explicit root id, pick one above every `&nK` mentioned in
    // the source so user-chosen ids never collide with the root.
    let root_id = match root_name
        .as_deref()
        .and_then(|s| s.strip_prefix('n'))
        .and_then(|d| d.parse::<u64>().ok())
    {
        Some(raw) => NodeId::from_raw(raw),
        None => NodeId::from_raw(max_mentioned_id(src) + 1),
    };
    let mut b = Builder2 {
        db: OemDatabase::with_root_id(name, root_id),
        named: HashMap::new(),
        defined: HashSet::new(),
    };
    if let Some(rn) = root_name {
        b.named.insert(rn.clone(), root_id);
        b.defined.insert(rn);
    }
    parse_value_into(&mut p, &mut b, root_id)?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing input after database"));
    }
    b.db
        .check_invariants()
        .map_err(|msg| OemError::Text {
            line: 0,
            col: 0,
            msg,
        })?;
    Ok(b.db)
}

/// The largest numeric id mentioned as `&nK` anywhere in the source.
fn max_mentioned_id(src: &str) -> u64 {
    let bytes = src.as_bytes();
    let mut best = 0u64;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' && bytes.get(i + 1) == Some(&b'n') {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j > i + 2 {
                if let Ok(v) = src[i + 2..j].parse::<u64>() {
                    best = best.max(v);
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    best
}

/// Parse an object (which may be `&oid`, `&oid value`, or a bare value)
/// and return its node.
fn parse_object(p: &mut Parser, b: &mut Builder2) -> Result<NodeId> {
    p.skip_ws();
    if p.peek() == Some(b'&') {
        p.bump();
        let name = p.ident()?;
        let n = b.node_for(&name)?;
        p.skip_ws();
        let has_value = matches!(p.peek(), Some(b'{') | Some(b'"'))
            || p.peek().is_some_and(|c| c.is_ascii_digit() || c == b'-')
            || lookahead_word(p);
        if has_value {
            if !b.defined.insert(name.clone()) {
                return Err(p.err(format!("object &{name} defined twice")));
            }
            parse_value_into(p, b, n)?;
        }
        Ok(n)
    } else {
        let n = b.db.create_node(Value::Complex);
        parse_value_into(p, b, n)?;
        Ok(n)
    }
}

/// `true` if the next token is a bare word that could start an atom
/// (`true` / `false` / `C`).
fn lookahead_word(p: &Parser) -> bool {
    let rest = &p.src[p.pos..];
    for w in [b"true" as &[u8], b"false", b"C"] {
        if rest.starts_with(w) {
            let after = rest.get(w.len()).copied();
            if !after.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'-' || c == b'_') {
                return true;
            }
        }
    }
    false
}

fn parse_value_into(p: &mut Parser, b: &mut Builder2, n: NodeId) -> Result<()> {
    p.skip_ws();
    if p.peek() == Some(b'{') {
        p.bump();
        b.db.set_value(n, Value::Complex)?;
        loop {
            p.skip_ws();
            if p.peek() == Some(b'}') {
                p.bump();
                break;
            }
            let label = p.label()?;
            let child = parse_object(p, b)?;
            b.db.insert_arc(ArcTriple::new(n, label, child))?;
            p.skip_ws();
            if p.peek() == Some(b',') {
                p.bump();
            }
        }
        Ok(())
    } else {
        let v = p.atom()?;
        b.db.set_value(n, v)
    }
}

impl std::fmt::Display for OemDatabase {
    /// Databases display in the textual OEM format (shared/cyclic nodes
    /// get explicit ids).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&write_text(self, TextOptions::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guide::guide_figure2;
    use crate::{isomorphic, same_database, GraphBuilder};

    #[test]
    fn simple_database_round_trips() {
        let mut b = GraphBuilder::new("guide");
        let root = b.root();
        let rest = b.complex_child(root, "restaurant");
        b.atom_child(rest, "name", "Janta");
        b.atom_child(rest, "price", 10);
        b.atom_child(rest, "rating", 4.5);
        b.atom_child(rest, "open", true);
        let db = b.finish();
        let text = write_text(&db, TextOptions::default());
        let back = parse_text(&text).unwrap();
        assert!(isomorphic(&db, &back));
        assert_eq!(back.name(), "guide");
    }

    #[test]
    fn guide_round_trips_isomorphically() {
        let db = guide_figure2();
        let text = write_text(&db, TextOptions::default());
        let back = parse_text(&text).unwrap();
        assert!(isomorphic(&db, &back), "text was:\n{text}");
    }

    #[test]
    fn always_ids_round_trips_identically() {
        let db = guide_figure2();
        let text = write_text(
            &db,
            TextOptions {
                always_ids: true,
            },
        );
        let back = parse_text(&text).unwrap();
        assert!(same_database(&db, &back), "text was:\n{text}");
    }

    #[test]
    fn shared_nodes_use_references() {
        let db = guide_figure2();
        let text = write_text(&db, TextOptions::default());
        // n7 appears once as a definition and once as a bare reference.
        assert_eq!(text.matches("&n7").count(), 2, "text was:\n{text}");
    }

    #[test]
    fn cycles_are_printable_and_parseable() {
        let mut b = GraphBuilder::new("g");
        let root = b.root();
        let a = b.complex_child(root, "a");
        b.arc(a, "self", a); // tight self-loop
        b.arc(a, "up", root); // cycle through the root
        let db = b.finish();
        let text = write_text(&db, TextOptions::default());
        let back = parse_text(&text).unwrap();
        assert!(isomorphic(&db, &back), "text was:\n{text}");
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let mut b = GraphBuilder::new("g");
        let root = b.root();
        b.atom_child(root, "note", "line1\nline2 \"quoted\" \\slash");
        let db = b.finish();
        let back = parse_text(&write_text(&db, TextOptions::default())).unwrap();
        assert!(isomorphic(&db, &back));
    }

    #[test]
    fn odd_labels_are_backquoted() {
        let mut b = GraphBuilder::new("g");
        let root = b.root();
        b.atom_child(root, "label with space", 1);
        b.atom_child(root, "&val", 2);
        let db = b.finish();
        let text = write_text(&db, TextOptions::default());
        assert!(text.contains("`label with space`"));
        // &-prefixed labels are identifier-shaped and need no quoting.
        assert!(text.contains("&val"));
        let back = parse_text(&text).unwrap();
        assert!(isomorphic(&db, &back));
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = parse_text("guide {\n  name \"unterminated\n}").unwrap_err();
        match err {
            OemError::Text { line, .. } => assert!(line >= 2),
            other => panic!("expected text error, got {other:?}"),
        }
        assert!(parse_text("guide { price }").is_err());
        assert!(parse_text("guide { price 1 } extra").is_err());
    }

    #[test]
    fn timestamp_atoms_round_trip() {
        let mut b = GraphBuilder::new("g");
        let root = b.root();
        let t: crate::Timestamp = "30Dec96 11:30pm".parse().unwrap();
        b.atom_child(root, "polled-at", t);
        let db = b.finish();
        let text = write_text(&db, TextOptions::default());
        assert!(text.contains("@30Dec96 11:30pm"));
        let back = parse_text(&text).unwrap();
        assert!(isomorphic(&db, &back));
    }

    #[test]
    fn comments_are_skipped() {
        let db = parse_text("guide { // a comment\n  price 10\n}").unwrap();
        assert_eq!(db.node_count(), 2);
    }

    #[test]
    fn duplicate_definition_is_rejected() {
        let src = "g { a &x { v 1 }, b &x { v 2 } }";
        assert!(parse_text(src).is_err());
    }

    #[test]
    fn empty_complex_object_parses() {
        let db = parse_text("g { item {} }").unwrap();
        assert_eq!(db.node_count(), 2);
        assert_eq!(db.arc_count(), 1);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// All the textual parsers reject garbage with errors, never panic.
        #[test]
        fn parsers_never_panic(src in "\\PC{0,120}") {
            let _ = super::parse_text(&src);
            let _ = crate::parse_op(&src);
            let _ = crate::parse_change_set(&src);
            let _ = crate::parse_history(&src);
            let _ = src.parse::<crate::Timestamp>();
        }

        /// Structured fragments assembled from format atoms never panic.
        #[test]
        fn structured_fragments_never_panic(
            parts in proptest::collection::vec(
                proptest::sample::select(vec![
                    "guide", "{", "}", "&n1", "&n2", "name", "price",
                    "\"x\"", "10", "2.5", "true", "C", ",", "@1Jan97",
                    "`odd label`", "//c\n",
                ]),
                0..16,
            )
        ) {
            let src = parts.join(" ");
            if let Ok(db) = super::parse_text(&src) {
                db.check_invariants().unwrap();
                // Whatever parsed must round-trip through the writer.
                let text = super::write_text(&db, super::TextOptions::default());
                let back = super::parse_text(&text).unwrap();
                prop_assert!(crate::isomorphic(&db, &back));
            }
        }
    }
}
