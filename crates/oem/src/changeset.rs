//! Change sets: unordered collections of basic change operations
//! (Section 2.2).
//!
//! A set `U` is *valid for* a database `O` when (1) some ordering of `U` is
//! a valid sequence for `O`, (2) every valid ordering produces the same
//! database, and (3) `U` never contains both `addArc(p,l,c)` and
//! `remArc(p,l,c)`.
//!
//! Checking (2) by enumerating orderings is exponential, so we rely on two
//! structural facts, both property-tested in this module and in the
//! integration suite:
//!
//! * **Determinism.** If every valid ordering applies each operation exactly
//!   once, the result is fixed by the *set*: final arcs are
//!   `(A ∪ adds) \ rems` (disjoint by condition 3) and final values are
//!   fixed provided there is at most one `updNode` per node and one
//!   `creNode` per id. We therefore require that uniqueness up front.
//! * **Canonical scheduling.** Operation preconditions only ever force the
//!   phase order `creNode → remArc → updNode → addArc`: `remArc` can only
//!   target pre-existing arcs (condition 3), `updNode` may need arcs
//!   removed first (complex→atomic retyping), and `addArc` may need a node
//!   created or retyped to `C` first. Hence if *any* valid ordering exists,
//!   the phase ordering is valid, and trying it is a complete decision
//!   procedure for condition (1).

use crate::{ArcTriple, ChangeOp, NodeId, OemDatabase, OemError, Result};
use std::collections::HashSet;
use std::fmt;

/// An unordered, conflict-free set of basic change operations.
///
/// The structural uniqueness conditions (one `updNode` per node, one
/// `creNode` per id, no add/rem pair on the same arc) are enforced at
/// insertion time; validity *for a particular database* is checked by
/// [`ChangeSet::apply_to`] / [`ChangeSet::validate_for`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChangeSet {
    ops: Vec<ChangeOp>,
    created: HashSet<NodeId>,
    updated: HashSet<NodeId>,
    added: HashSet<ArcTriple>,
    removed: HashSet<ArcTriple>,
}

impl ChangeSet {
    /// The empty change set.
    pub fn new() -> ChangeSet {
        ChangeSet::default()
    }

    /// Build a change set from operations, rejecting structural conflicts.
    pub fn from_ops(ops: impl IntoIterator<Item = ChangeOp>) -> Result<ChangeSet> {
        let mut set = ChangeSet::new();
        for op in ops {
            set.push(op)?;
        }
        Ok(set)
    }

    /// Add one operation, rejecting structural conflicts. Exact duplicates
    /// are ignored (it is a set).
    pub fn push(&mut self, op: ChangeOp) -> Result<()> {
        match &op {
            ChangeOp::CreNode(n, _) => {
                if self.created.contains(n) {
                    if self.ops.contains(&op) {
                        return Ok(()); // exact duplicate
                    }
                    return Err(OemError::ConflictingCreates(*n));
                }
                self.created.insert(*n);
            }
            ChangeOp::UpdNode(n, _) => {
                if self.updated.contains(n) {
                    if self.ops.contains(&op) {
                        return Ok(());
                    }
                    return Err(OemError::ConflictingUpdates(*n));
                }
                self.updated.insert(*n);
            }
            ChangeOp::AddArc(a) => {
                if self.removed.contains(a) {
                    return Err(OemError::AddRemConflict(*a));
                }
                if !self.added.insert(*a) {
                    return Ok(());
                }
            }
            ChangeOp::RemArc(a) => {
                if self.added.contains(a) {
                    return Err(OemError::AddRemConflict(*a));
                }
                if !self.removed.insert(*a) {
                    return Ok(());
                }
            }
        }
        self.ops.push(op);
        Ok(())
    }

    /// Number of operations in the set.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations, in insertion order (order carries no meaning).
    pub fn ops(&self) -> &[ChangeOp] {
        &self.ops
    }

    /// Iterate over the operations.
    pub fn iter(&self) -> impl Iterator<Item = &ChangeOp> {
        self.ops.iter()
    }

    /// Node ids this set creates (`creNode` targets).
    ///
    /// Together with [`ChangeSet::updated_nodes`], [`ChangeSet::added_arcs`]
    /// and [`ChangeSet::removed_arcs`] this is the *delta-restriction*
    /// surface incremental evaluation builds on: a semi-naive evaluator
    /// restricts one query constraint at a time to candidates touched by
    /// these sets while the remaining constraints see the full database
    /// (see `DESIGN.md` §11).
    ///
    /// ```
    /// use oem::{ChangeOp, ChangeSet, NodeId, Value};
    /// let n9 = NodeId::from_raw(9);
    /// let set = ChangeSet::from_ops([
    ///     ChangeOp::CreNode(n9, Value::str("Hakata")),
    ///     ChangeOp::add_arc(NodeId::from_raw(1), "restaurant", n9),
    /// ])
    /// .unwrap();
    /// assert!(set.created_nodes().contains(&n9));
    /// assert_eq!(set.added_arcs().len(), 1);
    /// assert!(set.updated_nodes().is_empty() && set.removed_arcs().is_empty());
    /// ```
    pub fn created_nodes(&self) -> &HashSet<NodeId> {
        &self.created
    }

    /// Node ids this set updates (`updNode` targets).
    pub fn updated_nodes(&self) -> &HashSet<NodeId> {
        &self.updated
    }

    /// Arcs this set inserts (`addArc` triples).
    pub fn added_arcs(&self) -> &HashSet<ArcTriple> {
        &self.added
    }

    /// Arcs this set deletes (`remArc` triples).
    pub fn removed_arcs(&self) -> &HashSet<ArcTriple> {
        &self.removed
    }

    /// The canonical phase ordering `creNode → remArc → updNode → addArc`.
    ///
    /// By the scheduling argument in the module docs, this ordering is valid
    /// for `O` iff *some* valid ordering exists.
    pub fn canonical_order(&self) -> Vec<&ChangeOp> {
        let phase = |op: &ChangeOp| match op {
            ChangeOp::CreNode(..) => 0,
            ChangeOp::RemArc(..) => 1,
            ChangeOp::UpdNode(..) => 2,
            ChangeOp::AddArc(..) => 3,
        };
        let mut ordered: Vec<&ChangeOp> = self.ops.iter().collect();
        ordered.sort_by_key(|op| phase(op));
        ordered
    }

    /// Check validity for `db` without mutating it (applies to a clone).
    pub fn validate_for(&self, db: &OemDatabase) -> Result<()> {
        let mut scratch = db.clone();
        self.apply_ops(&mut scratch)
    }

    fn apply_ops(&self, db: &mut OemDatabase) -> Result<()> {
        for op in self.canonical_order() {
            op.apply(db)
                .map_err(|e| OemError::NoValidOrdering(Box::new(e)))?;
        }
        Ok(())
    }

    /// Apply the whole set to `db` (the paper's `U(O)`), then garbage-
    /// collect unreachable objects — Section 2.2: "immediately after each
    /// sequence has been applied, nodes that are unreachable are considered
    /// as deleted". Returns the ids deleted by that collection.
    ///
    /// On error the database is left untouched (validation runs on a clone
    /// first).
    pub fn apply_to(&self, db: &mut OemDatabase) -> Result<Vec<NodeId>> {
        let mut staged = db.clone();
        self.apply_ops(&mut staged)?;
        let dead = staged.collect_garbage();
        *db = staged;
        Ok(dead)
    }
}

impl fmt::Display for ChangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{op}")?;
        }
        f.write_str("}")
    }
}

impl IntoIterator for ChangeSet {
    type Item = ChangeOp;
    type IntoIter = std::vec::IntoIter<ChangeOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a ChangeSet {
    type Item = &'a ChangeOp;
    type IntoIter = std::slice::Iter<'a, ChangeOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn base() -> (OemDatabase, NodeId, NodeId) {
        let mut db = OemDatabase::new("guide");
        let r = db.create_node(Value::Complex);
        let p = db.create_node(Value::Int(10));
        db.insert_arc(ArcTriple::new(db.root(), "restaurant", r))
            .unwrap();
        db.insert_arc(ArcTriple::new(r, "price", p)).unwrap();
        (db, r, p)
    }

    #[test]
    fn example_2_2_u1_applies_out_of_order() {
        // U1 of Example 2.3, deliberately inserted in a scrambled order:
        // the addArc operations come before the creNodes they depend on.
        let (mut db, _, p) = base();
        let n2 = db.alloc_id();
        let n3 = db.alloc_id();
        let u1 = ChangeSet::from_ops([
            ChangeOp::add_arc(db.root(), "restaurant", n2),
            ChangeOp::add_arc(n2, "name", n3),
            ChangeOp::UpdNode(p, Value::Int(20)),
            ChangeOp::CreNode(n2, Value::Complex),
            ChangeOp::CreNode(n3, Value::str("Hakata")),
        ])
        .unwrap();
        let dead = u1.apply_to(&mut db).unwrap();
        assert!(dead.is_empty());
        assert_eq!(db.value(p).unwrap(), &Value::Int(20));
        assert_eq!(db.value(n3).unwrap(), &Value::str("Hakata"));
        assert!(db.contains_arc(ArcTriple::new(n2, "name", n3)));
        db.check_invariants().unwrap();
    }

    #[test]
    fn add_rem_conflict_is_rejected_at_build_time() {
        let (db, r, p) = base();
        let _ = db;
        let err = ChangeSet::from_ops([
            ChangeOp::add_arc(r, "x", p),
            ChangeOp::rem_arc(r, "x", p),
        ])
        .unwrap_err();
        assert!(matches!(err, OemError::AddRemConflict(_)));
    }

    #[test]
    fn two_updates_of_one_node_are_rejected() {
        let (_, _, p) = base();
        let err = ChangeSet::from_ops([
            ChangeOp::UpdNode(p, Value::Int(1)),
            ChangeOp::UpdNode(p, Value::Int(2)),
        ])
        .unwrap_err();
        assert!(matches!(err, OemError::ConflictingUpdates(_)));
    }

    #[test]
    fn exact_duplicates_collapse() {
        let (_, _, p) = base();
        let set = ChangeSet::from_ops([
            ChangeOp::UpdNode(p, Value::Int(1)),
            ChangeOp::UpdNode(p, Value::Int(1)),
        ])
        .unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn retype_then_add_arc_schedules_correctly() {
        // updNode(p, C) then addArc(p, ...) — insertion order reversed.
        let (mut db, r, p) = base();
        let _ = r;
        let n = db.alloc_id();
        let set = ChangeSet::from_ops([
            ChangeOp::add_arc(p, "detail", n),
            ChangeOp::CreNode(n, Value::str("x")),
            ChangeOp::UpdNode(p, Value::Complex),
        ])
        .unwrap();
        set.apply_to(&mut db).unwrap();
        assert!(db.is_complex(p));
        db.check_invariants().unwrap();
    }

    #[test]
    fn remove_children_then_retype_schedules_correctly() {
        // remArc must run before updNode(r, atomic).
        let (mut db, r, p) = base();
        let set = ChangeSet::from_ops([
            ChangeOp::UpdNode(r, Value::str("closed")),
            ChangeOp::rem_arc(r, "price", p),
        ])
        .unwrap();
        let dead = set.apply_to(&mut db).unwrap();
        assert_eq!(dead, vec![p]); // price object became unreachable
        assert_eq!(db.value(r).unwrap(), &Value::str("closed"));
        db.check_invariants().unwrap();
    }

    #[test]
    fn invalid_set_leaves_database_untouched() {
        let (mut db, r, p) = base();
        let before = db.clone();
        let set = ChangeSet::from_ops([
            ChangeOp::UpdNode(p, Value::Int(20)),
            ChangeOp::rem_arc(r, "no-such", p),
        ])
        .unwrap();
        assert!(set.apply_to(&mut db).is_err());
        assert_eq!(db.value(p).unwrap(), before.value(p).unwrap());
        assert_eq!(db.node_count(), before.node_count());
    }

    #[test]
    fn gc_runs_at_set_boundary_not_within() {
        // creNode leaves the node unreachable *within* the set; the addArc
        // in the same set rescues it, so nothing is collected.
        let (mut db, r, _) = base();
        let n = db.alloc_id();
        let set = ChangeSet::from_ops([
            ChangeOp::CreNode(n, Value::str("comment")),
            ChangeOp::add_arc(r, "comment", n),
        ])
        .unwrap();
        assert!(set.apply_to(&mut db).unwrap().is_empty());
        // Whereas a bare creNode with no arc is collected at the boundary.
        let orphan = db.alloc_id();
        let set = ChangeSet::from_ops([ChangeOp::CreNode(orphan, Value::Int(0))]).unwrap();
        assert_eq!(set.apply_to(&mut db).unwrap(), vec![orphan]);
        assert!(!db.is_fresh(orphan)); // id retired, never reused
    }

    #[test]
    fn order_independence_any_valid_permutation_agrees() {
        // Apply every permutation of a 4-op set naively (op-by-op, no
        // canonical ordering); all permutations that happen to be valid
        // sequences must agree with the canonical result.
        let (db0, r, p) = base();
        let mut db_for_ids = db0.clone();
        let n = db_for_ids.alloc_id();
        let ops = vec![
            ChangeOp::CreNode(n, Value::str("thai")),
            ChangeOp::add_arc(r, "cuisine", n),
            ChangeOp::UpdNode(p, Value::Int(20)),
            ChangeOp::rem_arc(r, "price", p),
        ];
        let set = ChangeSet::from_ops(ops.clone()).unwrap();
        let mut canonical = db_for_ids.clone();
        set.apply_to(&mut canonical).unwrap();

        let mut valid_orderings = 0;
        let mut idx = [0usize, 1, 2, 3];
        // Heap's algorithm, iterative-enough: just enumerate via sorting.
        let mut perms = Vec::new();
        permute(&mut idx, 0, &mut perms);
        for perm in perms {
            let mut db = db_for_ids.clone();
            let mut ok = true;
            for &i in &perm {
                if ops[i].apply(&mut db).is_err() {
                    ok = false;
                    break;
                }
            }
            if ok {
                valid_orderings += 1;
                db.collect_garbage();
                assert_eq!(db.node_count(), canonical.node_count());
                assert_eq!(db.arc_count(), canonical.arc_count());
                for id in db.node_ids() {
                    assert_eq!(db.value(id).unwrap(), canonical.value(id).unwrap());
                }
            }
        }
        assert!(valid_orderings >= 2, "test should exercise several orders");
    }

    fn permute(idx: &mut [usize; 4], k: usize, out: &mut Vec<[usize; 4]>) {
        if k == idx.len() {
            out.push(*idx);
            return;
        }
        for i in k..idx.len() {
            idx.swap(k, i);
            permute(idx, k + 1, out);
            idx.swap(k, i);
        }
    }

    #[test]
    fn display_matches_paper_set_notation() {
        let set = ChangeSet::from_ops([ChangeOp::rem_arc(
            NodeId::from_raw(6),
            "parking",
            NodeId::from_raw(7),
        )])
        .unwrap();
        assert_eq!(set.to_string(), "{remArc(n6, parking, n7)}");
    }
}
