//! The LSN-indexed version ring of the MVCC store (DESIGN.md §14).
//!
//! A [`VersionRing`] holds one immutable value per installed LSN — in
//! practice a structurally shared [`crate::SharedOem`] replica, where
//! consecutive versions share every untouched subtree, so N retained
//! versions cost O(database + total writes), not O(N × database). Any
//! retained LSN is readable: [`VersionRing::at`] resolves a timestamp to
//! the version in force at that instant (the greatest installed LSN not
//! after it). Retention is governed by two mechanisms:
//!
//! * **live snapshot refcounts** — [`VersionRing::pin`] marks a version
//!   as being read; [`VersionRing::retain`] never unlinks a pinned
//!   version (nor anything newer than the oldest pin, keeping the ring
//!   contiguous), and readers additionally hold the value itself alive
//!   through its own `Arc`s even past unlinking;
//! * **a horizon** — [`VersionRing::retain`]`(keep)` unlinks the oldest
//!   unpinned versions beyond the newest `keep`, after which reads below
//!   the horizon answer `None` and callers fall back to history replay
//!   (`doem::snapshot_at`).

use crate::Timestamp;
use std::collections::{BTreeMap, VecDeque};

/// The version store over OEM replicas: an LSN-indexed ring of
/// structurally shared database handles.
pub type VersionedOem = VersionRing<crate::SharedOem>;

/// One installed version.
#[derive(Clone, Debug)]
pub struct VersionEntry<T> {
    /// The LSN (change timestamp) this version was published at.
    pub lsn: Timestamp,
    /// The result-cache generation in force at this version — the bridge
    /// between LSN-addressed versions and generation-keyed cache entries.
    pub generation: u64,
    /// The versioned value (structurally shared with its neighbors).
    pub value: T,
}

/// An LSN-indexed ring of immutable versions, oldest first.
#[derive(Clone, Debug, Default)]
pub struct VersionRing<T> {
    /// Entries in strictly ascending LSN order.
    entries: VecDeque<VersionEntry<T>>,
    /// Live read pins: raw LSN → count. A pinned LSN always resolves to
    /// an exact installed version.
    pins: BTreeMap<i64, usize>,
    installed: u64,
    gced: u64,
}

impl<T: Clone> VersionRing<T> {
    /// An empty ring.
    pub fn new() -> VersionRing<T> {
        VersionRing {
            entries: VecDeque::new(),
            pins: BTreeMap::new(),
            installed: 0,
            gced: 0,
        }
    }

    /// Install a version at `lsn`. LSNs must arrive in ascending order
    /// (the commit pipeline publishes strictly increasing timestamps);
    /// re-installing the newest LSN replaces its value in place.
    pub fn publish_entry(&mut self, lsn: Timestamp, generation: u64, value: T) {
        if let Some(last) = self.entries.back_mut() {
            debug_assert!(lsn >= last.lsn, "version LSNs must ascend");
            if last.lsn == lsn {
                last.generation = generation;
                last.value = value;
                return;
            }
        }
        self.entries.push_back(VersionEntry {
            lsn,
            generation,
            value,
        });
        self.installed += 1;
    }

    /// The version in force at `lsn`: the entry with the greatest
    /// installed LSN `<= lsn`. `None` when `lsn` predates the retention
    /// horizon (or the ring is empty) — the caller's replay fallback.
    pub fn at(&self, lsn: Timestamp) -> Option<&VersionEntry<T>> {
        self.entries.iter().rev().find(|e| e.lsn <= lsn)
    }

    /// The newest version.
    pub fn latest(&self) -> Option<&VersionEntry<T>> {
        self.entries.back()
    }

    /// Pin the version in force at `lsn` for reading: bumps its live
    /// refcount so [`VersionRing::retain`] keeps it addressable, and
    /// returns the exact version LSN pinned (pass it to
    /// [`VersionRing::unpin`]) alongside the value.
    pub fn pin(&mut self, lsn: Timestamp) -> Option<(Timestamp, T)> {
        let entry = self.at(lsn)?;
        let (version_lsn, value) = (entry.lsn, entry.value.clone());
        *self.pins.entry(version_lsn.raw_minutes()).or_insert(0) += 1;
        Some((version_lsn, value))
    }

    /// Release one pin on the exact version LSN returned by
    /// [`VersionRing::pin`].
    pub fn unpin(&mut self, version_lsn: Timestamp) {
        let raw = version_lsn.raw_minutes();
        if let Some(count) = self.pins.get_mut(&raw) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(&raw);
            }
        } else {
            debug_assert!(false, "unpin without a matching pin at {version_lsn}");
        }
    }

    /// Unlink old versions beyond the newest `keep` (at least the newest
    /// always stays). Stops at the first pinned version from the front so
    /// the retained run stays contiguous. Returns how many were unlinked
    /// — unlinked values are freed once their last outside reader drops.
    pub fn retain(&mut self, keep: usize) -> u64 {
        let keep = keep.max(1);
        let mut dropped = 0u64;
        while self.entries.len() > keep {
            let front = &self.entries[0];
            if self.pins.contains_key(&front.lsn.raw_minutes()) {
                break;
            }
            self.entries.pop_front();
            dropped += 1;
        }
        self.gced += dropped;
        dropped
    }

    /// Number of retained versions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no version is installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The oldest retained LSN (the retention horizon).
    pub fn first_lsn(&self) -> Option<Timestamp> {
        self.entries.front().map(|e| e.lsn)
    }

    /// The newest installed LSN.
    pub fn last_lsn(&self) -> Option<Timestamp> {
        self.entries.back().map(|e| e.lsn)
    }

    /// Total versions ever installed.
    pub fn installed(&self) -> u64 {
        self.installed
    }

    /// Total versions unlinked by [`VersionRing::retain`].
    pub fn gced(&self) -> u64 {
        self.gced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(m: i64) -> Timestamp {
        Timestamp::from_raw_minutes(m)
    }

    fn ring_of(lsns: &[i64]) -> VersionRing<i64> {
        let mut ring = VersionRing::new();
        for (g, &m) in lsns.iter().enumerate() {
            ring.publish_entry(t(m), g as u64, m);
        }
        ring
    }

    #[test]
    fn at_resolves_to_the_version_in_force() {
        let ring = ring_of(&[10, 20, 30]);
        assert!(ring.at(t(9)).is_none());
        assert_eq!(ring.at(t(10)).unwrap().value, 10);
        assert_eq!(ring.at(t(25)).unwrap().value, 20);
        assert_eq!(ring.at(t(99)).unwrap().value, 30);
        assert_eq!(ring.latest().unwrap().lsn, t(30));
        assert_eq!((ring.first_lsn(), ring.last_lsn()), (Some(t(10)), Some(t(30))));
    }

    #[test]
    fn reinstalling_the_newest_lsn_replaces_in_place() {
        let mut ring = ring_of(&[10]);
        ring.publish_entry(t(10), 7, -1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.latest().unwrap().value, -1);
        assert_eq!(ring.latest().unwrap().generation, 7);
        assert_eq!(ring.installed(), 1);
    }

    #[test]
    fn retain_unlinks_beyond_the_horizon_but_keeps_the_newest() {
        let mut ring = ring_of(&[10, 20, 30, 40, 50]);
        assert_eq!(ring.retain(2), 3);
        assert_eq!(ring.first_lsn(), Some(t(40)));
        assert!(ring.at(t(35)).is_none(), "below the horizon");
        assert_eq!(ring.at(t(45)).unwrap().value, 40);
        // keep=0 still keeps the newest version.
        assert_eq!(ring.retain(0), 1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.gced(), 4);
    }

    #[test]
    fn pins_block_gc_and_keep_the_run_contiguous() {
        let mut ring = ring_of(&[10, 20, 30, 40]);
        // Pin resolves 25 to the exact version at 20.
        let (pinned, value) = ring.pin(t(25)).unwrap();
        assert_eq!((pinned, value), (t(20), 20));
        // GC can drop 10 but must stop at the pinned 20 — even though 30
        // is unpinned, unlinking it would leave a hole.
        assert_eq!(ring.retain(1), 1);
        assert_eq!(ring.first_lsn(), Some(t(20)));
        assert_eq!(ring.len(), 3);
        // Unpinning releases the horizon.
        ring.unpin(pinned);
        assert_eq!(ring.retain(1), 2);
        assert_eq!(ring.first_lsn(), Some(t(40)));
    }

    #[test]
    fn nested_pins_count() {
        let mut ring = ring_of(&[10, 20]);
        let (p1, _) = ring.pin(t(10)).unwrap();
        let (p2, _) = ring.pin(t(10)).unwrap();
        ring.unpin(p1);
        assert_eq!(ring.retain(1), 0, "still pinned once");
        ring.unpin(p2);
        assert_eq!(ring.retain(1), 1);
    }

    #[test]
    fn pin_below_horizon_answers_none() {
        let mut ring = ring_of(&[10, 20]);
        ring.retain(1);
        assert!(ring.pin(t(10)).is_none());
    }
}
