//! OEM histories (Definition 2.2).
//!
//! A history `H = (t1, U1), …, (tn, Un)` is a strictly time-ordered sequence
//! of change sets. `H` is valid for `O` when each `Ui` is valid for the
//! database produced by the prefix before it.

use crate::{ChangeSet, NodeId, OemDatabase, OemError, Result, Timestamp};
use std::fmt;

/// One history entry: a timestamp and the change set applied at that time.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryEntry {
    /// When the change set was applied.
    pub at: Timestamp,
    /// The set of basic change operations.
    pub changes: ChangeSet,
}

/// A strictly time-ordered sequence of timestamped change sets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct History {
    entries: Vec<HistoryEntry>,
}

impl History {
    /// The empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Build a history from `(timestamp, change set)` pairs, enforcing
    /// strictly increasing, finite timestamps.
    pub fn from_entries(
        entries: impl IntoIterator<Item = (Timestamp, ChangeSet)>,
    ) -> Result<History> {
        let mut h = History::new();
        for (at, changes) in entries {
            h.push(at, changes)?;
        }
        Ok(h)
    }

    /// Append a change set at time `at`, which must exceed every existing
    /// timestamp.
    pub fn push(&mut self, at: Timestamp, changes: ChangeSet) -> Result<()> {
        if at.is_infinite() {
            return Err(OemError::InfiniteTimestamp);
        }
        if let Some(last) = self.entries.last() {
            if at <= last.at {
                return Err(OemError::NonIncreasingTimestamp {
                    previous: last.at,
                    next: at,
                });
            }
        }
        self.entries.push(HistoryEntry { at, changes });
        Ok(())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in time order.
    pub fn entries(&self) -> &[HistoryEntry] {
        &self.entries
    }

    /// The timestamps `t1 < t2 < … < tn`.
    pub fn timestamps(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.entries.iter().map(|e| e.at)
    }

    /// Apply the whole history to `db` (the paper's `L(O)` / successive
    /// `Ui(O_{i-1})`), garbage-collecting at each change-set boundary.
    /// Returns all ids deleted along the way.
    ///
    /// Validation is per-entry: on failure, `db` holds the state after the
    /// last *successful* entry and the error names the offender.
    pub fn apply_to(&self, db: &mut OemDatabase) -> Result<Vec<NodeId>> {
        let mut deleted = Vec::new();
        for entry in &self.entries {
            deleted.extend(entry.changes.apply_to(db)?);
        }
        Ok(deleted)
    }

    /// `true` iff the history is valid for `db` (Definition 2.2): applies
    /// cleanly to a scratch copy.
    pub fn is_valid_for(&self, db: &OemDatabase) -> bool {
        let mut scratch = db.clone();
        self.apply_to(&mut scratch).is_ok()
    }

    /// The prefix of this history with timestamps `≤ t`.
    pub fn prefix_through(&self, t: Timestamp) -> History {
        History {
            entries: self
                .entries
                .iter()
                .take_while(|e| e.at <= t)
                .cloned()
                .collect(),
        }
    }

    /// Merge another history strictly after this one (all of `later`'s
    /// timestamps must exceed ours).
    pub fn extend(&mut self, later: History) -> Result<()> {
        for e in later.entries {
            self.push(e.at, e.changes)?;
        }
        Ok(())
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "({}, {})", e.at, e.changes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArcTriple, ChangeOp, Value};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn timestamps_must_strictly_increase() {
        let mut h = History::new();
        h.push(ts("1Jan97"), ChangeSet::new()).unwrap();
        let err = h.push(ts("1Jan97"), ChangeSet::new()).unwrap_err();
        assert!(matches!(err, OemError::NonIncreasingTimestamp { .. }));
        let err = h.push(ts("31Dec96"), ChangeSet::new()).unwrap_err();
        assert!(matches!(err, OemError::NonIncreasingTimestamp { .. }));
        h.push(ts("2Jan97"), ChangeSet::new()).unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn infinite_timestamps_are_rejected() {
        let mut h = History::new();
        assert!(matches!(
            h.push(Timestamp::INFINITY, ChangeSet::new()),
            Err(OemError::InfiniteTimestamp)
        ));
    }

    #[test]
    fn apply_runs_entries_in_order() {
        let mut db = OemDatabase::new("g");
        let price = db.create_node(Value::Int(10));
        db.insert_arc(ArcTriple::new(db.root(), "price", price))
            .unwrap();
        let h = History::from_entries([
            (
                ts("1Jan97"),
                ChangeSet::from_ops([ChangeOp::UpdNode(price, Value::Int(20))]).unwrap(),
            ),
            (
                ts("5Jan97"),
                ChangeSet::from_ops([ChangeOp::UpdNode(price, Value::Int(30))]).unwrap(),
            ),
        ])
        .unwrap();
        assert!(h.is_valid_for(&db));
        h.apply_to(&mut db).unwrap();
        assert_eq!(db.value(price).unwrap(), &Value::Int(30));
    }

    #[test]
    fn prefix_through_selects_a_time_range() {
        let h = History::from_entries([
            (ts("1Jan97"), ChangeSet::new()),
            (ts("5Jan97"), ChangeSet::new()),
            (ts("8Jan97"), ChangeSet::new()),
        ])
        .unwrap();
        assert_eq!(h.prefix_through(ts("5Jan97")).len(), 2);
        assert_eq!(h.prefix_through(ts("4Jan97")).len(), 1);
        assert_eq!(h.prefix_through(Timestamp::NEG_INFINITY).len(), 0);
        assert_eq!(h.prefix_through(Timestamp::INFINITY).len(), 3);
    }

    #[test]
    fn display_matches_paper_history_notation() {
        let h = History::from_entries([(
            ts("8Jan97"),
            ChangeSet::from_ops([ChangeOp::rem_arc(
                crate::NodeId::from_raw(6),
                "parking",
                crate::NodeId::from_raw(7),
            )])
            .unwrap(),
        )])
        .unwrap();
        assert_eq!(h.to_string(), "(8Jan97, {remArc(n6, parking, n7)})");
    }

    #[test]
    fn failed_entry_reports_error_and_stops() {
        let mut db = OemDatabase::new("g");
        let n = db.create_node(Value::Int(1));
        db.insert_arc(ArcTriple::new(db.root(), "x", n)).unwrap();
        let h = History::from_entries([
            (
                ts("1Jan97"),
                ChangeSet::from_ops([ChangeOp::UpdNode(n, Value::Int(2))]).unwrap(),
            ),
            (
                ts("2Jan97"),
                ChangeSet::from_ops([ChangeOp::rem_arc(db.root(), "nope", n)]).unwrap(),
            ),
        ])
        .unwrap();
        assert!(!h.is_valid_for(&db));
        assert!(h.apply_to(&mut db).is_err());
        // First entry landed before the failure.
        assert_eq!(db.value(n).unwrap(), &Value::Int(2));
    }
}
