//! Atomic object values.
//!
//! Definition 2.1 maps each node either to an atomic value (integer, real,
//! string, …) or to the reserved value `C` marking a complex object. The
//! paper's running example mixes types freely (a `price` that is `10` in one
//! entry and `"moderate"` in another), which is exactly the irregularity a
//! semistructured model must tolerate.
//!
//! [`Value`] implements total equality, ordering and hashing — reals compare
//! via `f64::total_cmp` / bit patterns so values can live in sets and maps
//! (needed by change sets, diffing and indexes). *Query-level* comparison is
//! different: Lorel's forgiving coercion lives in the `lorel` crate, not
//! here.

use crate::Timestamp;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The value of an OEM object.
#[derive(Clone, Debug)]
pub enum Value {
    /// The reserved value `C`: the object is complex (has outgoing arcs).
    Complex,
    /// An integer atomic value.
    Int(i64),
    /// A real (floating point) atomic value.
    Real(f64),
    /// A string atomic value.
    Str(Box<str>),
    /// A boolean atomic value.
    Bool(bool),
    /// A timestamp atomic value — the paper's "internal timestamp datatype"
    /// that textual dates are coerced to (Section 4.2).
    Time(Timestamp),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(s.as_ref().into())
    }

    /// `true` iff this is the reserved complex marker `C`.
    pub fn is_complex(&self) -> bool {
        matches!(self, Value::Complex)
    }

    /// `true` iff this is an atomic (non-`C`) value.
    pub fn is_atomic(&self) -> bool {
        !self.is_complex()
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Complex => "complex",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::Time(_) => "time",
        }
    }

    fn discriminant_rank(&self) -> u8 {
        match self {
            Value::Complex => 0,
            Value::Int(_) => 1,
            Value::Real(_) => 2,
            Value::Str(_) => 3,
            Value::Bool(_) => 4,
            Value::Time(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Complex, Value::Complex) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Time(a), Value::Time(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Time(a), Value::Time(b)) => a.cmp(b),
            _ => self.discriminant_rank().cmp(&other.discriminant_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.discriminant_rank().hash(state);
        match self {
            Value::Complex => {}
            Value::Int(i) => i.hash(state),
            Value::Real(r) => r.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Time(t) => t.raw_minutes().hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Complex => f.write_str("C"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => {
                // Always keep a decimal point so reals survive a text
                // round-trip as reals rather than being re-read as ints.
                if r.fract() == 0.0 && r.is_finite() {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Value::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Value::Bool(b) => write!(f, "{b}"),
            // The `@` sigil keeps timestamps distinguishable from ints and
            // idents in the textual OEM format.
            Value::Time(t) => write!(f, "@{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Value {
        Value::Real(r)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s.into())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<Timestamp> for Value {
    fn from(t: Timestamp) -> Value {
        Value::Time(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn complex_marker_is_not_atomic() {
        assert!(Value::Complex.is_complex());
        assert!(!Value::Complex.is_atomic());
        assert!(Value::Int(10).is_atomic());
    }

    #[test]
    fn cross_type_equality_is_false() {
        // Strict structural equality: coercion is a query-language concern.
        assert_ne!(Value::Int(10), Value::Real(10.0));
        assert_ne!(Value::str("10"), Value::Int(10));
    }

    #[test]
    fn real_equality_is_bitwise() {
        assert_eq!(Value::Real(f64::NAN), Value::Real(f64::NAN));
        assert_ne!(Value::Real(0.0), Value::Real(-0.0));
    }

    #[test]
    fn values_are_hashable() {
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        set.insert(Value::Real(1.0));
        set.insert(Value::str("1"));
        set.insert(Value::Complex);
        assert_eq!(set.len(), 4);
        assert!(set.contains(&Value::Int(1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Complex.to_string(), "C");
        assert_eq!(Value::Int(20).to_string(), "20");
        assert_eq!(Value::Real(20.0).to_string(), "20.0");
        assert_eq!(Value::Real(20.5).to_string(), "20.5");
        assert_eq!(Value::str("moderate").to_string(), "\"moderate\"");
        assert_eq!(Value::str("say \"hi\"").to_string(), "\"say \\\"hi\\\"\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = vec![
            Value::str("b"),
            Value::Int(2),
            Value::Complex,
            Value::Real(1.5),
            Value::Int(1),
            Value::str("a"),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Complex,
                Value::Int(1),
                Value::Int(2),
                Value::Real(1.5),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }
}
