//! The four basic change operations (Section 2.1).
//!
//! `creNode`, `updNode`, `addArc` and `remArc` with the paper's exact
//! preconditions. Node deletion is deliberately absent: persistence is by
//! reachability from the root, so deletion happens implicitly when
//! [`crate::OemDatabase::collect_garbage`] runs at change-set boundaries.

use crate::{ArcTriple, Label, NodeId, OemDatabase, OemError, Result, Value};
use std::fmt;

/// A basic change operation `u`; `u.apply(&mut db)` computes `u(O)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ChangeOp {
    /// `creNode(n, v)`: create a new object with fresh identifier `n` and
    /// initial value `v` (atomic or `C`).
    CreNode(NodeId, Value),
    /// `updNode(n, v)`: change the value of `n` to `v`. `n` must be atomic
    /// or complex without subobjects.
    UpdNode(NodeId, Value),
    /// `addArc(p, l, c)`: add an `l`-labeled arc from complex object `p` to
    /// `c`; the arc must not already exist.
    AddArc(ArcTriple),
    /// `remArc(p, l, c)`: remove the existing arc `(p, l, c)`.
    RemArc(ArcTriple),
}

impl ChangeOp {
    /// Shorthand constructor for `addArc`.
    pub fn add_arc(p: NodeId, l: impl Into<Label>, c: NodeId) -> ChangeOp {
        ChangeOp::AddArc(ArcTriple::new(p, l, c))
    }

    /// Shorthand constructor for `remArc`.
    pub fn rem_arc(p: NodeId, l: impl Into<Label>, c: NodeId) -> ChangeOp {
        ChangeOp::RemArc(ArcTriple::new(p, l, c))
    }

    /// Check this operation's preconditions against `db` without mutating
    /// it. `Ok(())` means the operation is *valid for* `db` in the paper's
    /// sense.
    pub fn validate(&self, db: &OemDatabase) -> Result<()> {
        match self {
            ChangeOp::CreNode(n, _) => {
                if !db.is_fresh(*n) {
                    return Err(OemError::IdNotFresh(*n));
                }
                Ok(())
            }
            ChangeOp::UpdNode(n, _) => {
                db.value(*n)?;
                if !db.children(*n).is_empty() {
                    return Err(OemError::UpdateOnNodeWithChildren(*n));
                }
                Ok(())
            }
            ChangeOp::AddArc(arc) => {
                if !db.contains_node(arc.parent) {
                    return Err(OemError::NoSuchNode(arc.parent));
                }
                if !db.contains_node(arc.child) {
                    return Err(OemError::NoSuchNode(arc.child));
                }
                if !db.is_complex(arc.parent) {
                    return Err(OemError::ParentNotComplex(arc.parent));
                }
                if db.contains_arc(*arc) {
                    return Err(OemError::ArcExists(*arc));
                }
                Ok(())
            }
            ChangeOp::RemArc(arc) => {
                if !db.contains_arc(*arc) {
                    return Err(OemError::NoSuchArc(*arc));
                }
                Ok(())
            }
        }
    }

    /// Validate and apply this operation to `db`.
    ///
    /// Note that applying a single operation may leave objects temporarily
    /// unreachable (Section 2.2); garbage collection runs only at change-set
    /// boundaries.
    pub fn apply(&self, db: &mut OemDatabase) -> Result<()> {
        self.validate(db)?;
        match self {
            ChangeOp::CreNode(n, v) => db.create_node_with_id(*n, v.clone()),
            ChangeOp::UpdNode(n, v) => db.set_value(*n, v.clone()),
            ChangeOp::AddArc(arc) => db.insert_arc(*arc),
            ChangeOp::RemArc(arc) => db.delete_arc(*arc),
        }
    }

    /// The node this operation creates or updates, if any.
    pub fn target_node(&self) -> Option<NodeId> {
        match self {
            ChangeOp::CreNode(n, _) | ChangeOp::UpdNode(n, _) => Some(*n),
            _ => None,
        }
    }

    /// The arc this operation adds or removes, if any.
    pub fn target_arc(&self) -> Option<ArcTriple> {
        match self {
            ChangeOp::AddArc(a) | ChangeOp::RemArc(a) => Some(*a),
            _ => None,
        }
    }
}

impl fmt::Display for ChangeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChangeOp::CreNode(n, v) => write!(f, "creNode({n}, {v})"),
            ChangeOp::UpdNode(n, v) => write!(f, "updNode({n}, {v})"),
            ChangeOp::AddArc(a) => {
                write!(f, "addArc({}, {}, {})", a.parent, a.label, a.child)
            }
            ChangeOp::RemArc(a) => {
                write!(f, "remArc({}, {}, {})", a.parent, a.label, a.child)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_restaurant() -> (OemDatabase, NodeId, NodeId) {
        let mut db = OemDatabase::new("guide");
        let r = db.create_node(Value::Complex);
        let p = db.create_node(Value::Int(10));
        db.insert_arc(ArcTriple::new(db.root(), "restaurant", r))
            .unwrap();
        db.insert_arc(ArcTriple::new(r, "price", p)).unwrap();
        (db, r, p)
    }

    #[test]
    fn cre_node_requires_fresh_id() {
        let (mut db, r, _) = db_with_restaurant();
        assert!(matches!(
            ChangeOp::CreNode(r, Value::Int(1)).apply(&mut db),
            Err(OemError::IdNotFresh(_))
        ));
        let fresh = db.alloc_id();
        ChangeOp::CreNode(fresh, Value::str("Hakata"))
            .apply(&mut db)
            .unwrap();
        assert_eq!(db.value(fresh).unwrap(), &Value::str("Hakata"));
    }

    #[test]
    fn upd_node_example_2_2_price_change() {
        // "the price rating for Bangkok Cuisine is changed from 10 to 20"
        let (mut db, _, p) = db_with_restaurant();
        ChangeOp::UpdNode(p, Value::Int(20)).apply(&mut db).unwrap();
        assert_eq!(db.value(p).unwrap(), &Value::Int(20));
    }

    #[test]
    fn upd_node_rejects_complex_with_subobjects() {
        let (mut db, r, _) = db_with_restaurant();
        assert!(matches!(
            ChangeOp::UpdNode(r, Value::Int(1)).apply(&mut db),
            Err(OemError::UpdateOnNodeWithChildren(_))
        ));
    }

    #[test]
    fn upd_node_may_retype_childless_complex() {
        // "The model requires us to remove all subobjects of a complex
        // object n before transforming it into an atomic object."
        let (mut db, r, p) = db_with_restaurant();
        ChangeOp::rem_arc(r, "price", p).apply(&mut db).unwrap();
        ChangeOp::UpdNode(r, Value::str("closed"))
            .apply(&mut db)
            .unwrap();
        assert_eq!(db.value(r).unwrap(), &Value::str("closed"));
        // And back to complex:
        ChangeOp::UpdNode(r, Value::Complex).apply(&mut db).unwrap();
        assert!(db.is_complex(r));
    }

    #[test]
    fn add_arc_preconditions() {
        let (mut db, r, p) = db_with_restaurant();
        // Parent must be complex.
        assert!(matches!(
            ChangeOp::add_arc(p, "x", r).apply(&mut db),
            Err(OemError::ParentNotComplex(_))
        ));
        // Both endpoints must exist.
        let ghost = NodeId::from_raw(999);
        assert!(matches!(
            ChangeOp::add_arc(r, "x", ghost).apply(&mut db),
            Err(OemError::NoSuchNode(_))
        ));
        assert!(matches!(
            ChangeOp::add_arc(ghost, "x", r).apply(&mut db),
            Err(OemError::NoSuchNode(_))
        ));
        // The arc must not already exist.
        assert!(matches!(
            ChangeOp::add_arc(r, "price", p).apply(&mut db),
            Err(OemError::ArcExists(_))
        ));
    }

    #[test]
    fn rem_arc_requires_existing_arc() {
        let (mut db, r, p) = db_with_restaurant();
        assert!(matches!(
            ChangeOp::rem_arc(r, "cost", p).apply(&mut db),
            Err(OemError::NoSuchArc(_))
        ));
        ChangeOp::rem_arc(r, "price", p).apply(&mut db).unwrap();
        assert!(!db.contains_arc(ArcTriple::new(r, "price", p)));
    }

    #[test]
    fn validate_does_not_mutate() {
        let (db, r, p) = db_with_restaurant();
        let before_nodes = db.node_count();
        let op = ChangeOp::rem_arc(r, "price", p);
        op.validate(&db).unwrap();
        assert_eq!(db.node_count(), before_nodes);
        assert!(db.contains_arc(ArcTriple::new(r, "price", p)));
    }

    #[test]
    fn display_matches_paper_notation() {
        let op = ChangeOp::UpdNode(NodeId::from_raw(1), Value::Int(20));
        assert_eq!(op.to_string(), "updNode(n1, 20)");
        let op = ChangeOp::add_arc(NodeId::from_raw(4), "restaurant", NodeId::from_raw(2));
        assert_eq!(op.to_string(), "addArc(n4, restaurant, n2)");
        let op = ChangeOp::CreNode(NodeId::from_raw(3), Value::str("Hakata"));
        assert_eq!(op.to_string(), "creNode(n3, \"Hakata\")");
        let op = ChangeOp::CreNode(NodeId::from_raw(2), Value::Complex);
        assert_eq!(op.to_string(), "creNode(n2, C)");
    }
}
