//! Errors for OEM databases, change operations, histories and the text
//! format.

use crate::{ArcTriple, NodeId, Timestamp};
use std::fmt;

/// Everything that can go wrong when manipulating an OEM database.
#[derive(Clone, Debug, PartialEq)]
pub enum OemError {
    /// A referenced object does not exist in the database.
    NoSuchNode(NodeId),
    /// `creNode` was given an identifier that is already in use or retired.
    /// Section 2.2: "object identifiers of deleted nodes are not reused".
    IdNotFresh(NodeId),
    /// `addArc`/`remArc` constraint violation: the named arc already exists.
    ArcExists(ArcTriple),
    /// `remArc` was asked to remove an arc that is not present.
    NoSuchArc(ArcTriple),
    /// `addArc` requires the parent to be a complex object.
    ParentNotComplex(NodeId),
    /// `updNode` requires an atomic object or a complex object without
    /// subobjects (Section 2.1).
    UpdateOnNodeWithChildren(NodeId),
    /// A change *set* contained two `updNode` operations for the same node,
    /// so different valid orderings would produce different databases
    /// (violates Definition 2.2's order-independence requirement).
    ConflictingUpdates(NodeId),
    /// A change set contained two `creNode` operations for the same id.
    ConflictingCreates(NodeId),
    /// A change set contained both `addArc(p,l,c)` and `remArc(p,l,c)`
    /// (explicitly forbidden, Section 2.2, condition 3).
    AddRemConflict(ArcTriple),
    /// No ordering of the change set is valid for the database; the payload
    /// is the error from the first operation that could not be scheduled.
    NoValidOrdering(Box<OemError>),
    /// History timestamps must be strictly increasing (Definition 2.2).
    NonIncreasingTimestamp {
        /// Timestamp of the preceding entry.
        previous: Timestamp,
        /// Offending timestamp (≤ `previous`).
        next: Timestamp,
    },
    /// Histories may not operate on infinite timestamps.
    InfiniteTimestamp,
    /// A parse error in the OEM text format, with 1-based line/column.
    Text {
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for OemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OemError::NoSuchNode(n) => write!(f, "no such object: {n}"),
            OemError::IdNotFresh(n) => {
                write!(f, "creNode: identifier {n} is already in use or retired")
            }
            OemError::ArcExists(a) => write!(f, "addArc: arc {a} already exists"),
            OemError::NoSuchArc(a) => write!(f, "remArc: no such arc {a}"),
            OemError::ParentNotComplex(n) => {
                write!(f, "addArc: parent {n} is not a complex object")
            }
            OemError::UpdateOnNodeWithChildren(n) => write!(
                f,
                "updNode: {n} is a complex object with subobjects; remove them first"
            ),
            OemError::ConflictingUpdates(n) => {
                write!(f, "change set has multiple updNode operations for {n}")
            }
            OemError::ConflictingCreates(n) => {
                write!(f, "change set has multiple creNode operations for {n}")
            }
            OemError::AddRemConflict(a) => write!(
                f,
                "change set contains both addArc and remArc for {a} (forbidden)"
            ),
            OemError::NoValidOrdering(e) => {
                write!(f, "no valid ordering of the change set exists: {e}")
            }
            OemError::NonIncreasingTimestamp { previous, next } => write!(
                f,
                "history timestamps must strictly increase: {next} follows {previous}"
            ),
            OemError::InfiniteTimestamp => {
                f.write_str("history timestamps must be finite")
            }
            OemError::Text { line, col, msg } => {
                write!(f, "OEM text parse error at {line}:{col}: {msg}")
            }
        }
    }
}

impl std::error::Error for OemError {}

/// Result alias for OEM operations.
pub type Result<T> = std::result::Result<T, OemError>;
