//! Database equality.
//!
//! Two notions are used throughout the test suites:
//!
//! * [`same_database`] — identity-level equality: same ids, same values,
//!   same arc set. This is what "D(O₀(D), H(D)) = D"-style round-trip
//!   properties need.
//! * [`isomorphic`] — structural equality up to a renaming of node ids,
//!   needed when comparing databases built through different routes (e.g.
//!   a diff-reconstructed snapshot whose ids differ from the original's).
//!
//! Isomorphism of rooted labeled graphs is decided by iterated color
//! refinement (1-WL) followed by a backtracking search over the (usually
//! tiny) ambiguous classes. Databases in this project are small-to-medium
//! and highly value-labeled, so refinement almost always singles out a
//! unique matching.

use crate::{Label, NodeId, OemDatabase, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

/// Identity-level equality: same name is *not* required, but node ids,
/// values, root and arcs must coincide exactly.
pub fn same_database(a: &OemDatabase, b: &OemDatabase) -> bool {
    if a.root() != b.root() || a.node_count() != b.node_count() || a.arc_count() != b.arc_count()
    {
        return false;
    }
    for n in a.node_ids() {
        match (a.value(n), b.value(n)) {
            (Ok(va), Ok(vb)) if va == vb => {}
            _ => return false,
        }
    }
    a.arcs().all(|arc| b.contains_arc(arc))
}

fn hash64(h: impl Hash) -> u64 {
    let mut hasher = DefaultHasher::new();
    h.hash(&mut hasher);
    hasher.finish()
}

/// One round of color refinement: a node's new color hashes its old color
/// with the multiset of (label, child color) pairs.
fn refine(db: &OemDatabase, colors: &HashMap<NodeId, u64>) -> HashMap<NodeId, u64> {
    let mut next = HashMap::with_capacity(colors.len());
    for n in db.node_ids() {
        let mut sig: Vec<(Label, u64)> = db
            .children(n)
            .iter()
            .map(|&(l, c)| (l, colors[&c]))
            .collect();
        sig.sort();
        next.insert(n, hash64((colors[&n], sig)));
    }
    next
}

fn initial_colors(db: &OemDatabase) -> HashMap<NodeId, u64> {
    db.node_ids()
        .map(|n| {
            let v: &Value = db.value(n).expect("iterating own ids");
            let root_tag = n == db.root();
            (n, hash64((root_tag, v)))
        })
        .collect()
}

/// Partition nodes by color.
fn classes(colors: &HashMap<NodeId, u64>) -> BTreeMap<u64, Vec<NodeId>> {
    let mut m: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
    for (&n, &c) in colors {
        m.entry(c).or_default().push(n);
    }
    for v in m.values_mut() {
        v.sort();
    }
    m
}

/// Check whether a complete mapping `a -> b` is an isomorphism.
fn is_valid_mapping(a: &OemDatabase, b: &OemDatabase, map: &HashMap<NodeId, NodeId>) -> bool {
    if map.get(&a.root()) != Some(&b.root()) {
        return false;
    }
    for n in a.node_ids() {
        let m = map[&n];
        if a.value(n).ok() != b.value(m).ok() {
            return false;
        }
        let mut ca: Vec<(Label, NodeId)> = a
            .children(n)
            .iter()
            .map(|&(l, c)| (l, map[&c]))
            .collect();
        let mut cb: Vec<(Label, NodeId)> = b.children(m).to_vec();
        ca.sort();
        cb.sort();
        if ca != cb {
            return false;
        }
    }
    true
}

/// Structural equality of two rooted databases up to node renaming.
///
/// Complete for the graphs in this project; on pathological highly-regular
/// graphs the bounded backtracking may give a false negative (never a false
/// positive), which is the safe direction for tests.
pub fn isomorphic(a: &OemDatabase, b: &OemDatabase) -> bool {
    if a.node_count() != b.node_count() || a.arc_count() != b.arc_count() {
        return false;
    }
    let mut ca = initial_colors(a);
    let mut cb = initial_colors(b);
    // |N| rounds suffice for 1-WL to stabilize.
    for _ in 0..a.node_count().max(1) {
        let na = refine(a, &ca);
        let nb = refine(b, &cb);
        let stable = classes(&na).len() == classes(&ca).len();
        ca = na;
        cb = nb;
        if stable {
            break;
        }
    }
    let pa = classes(&ca);
    let pb = classes(&cb);
    if pa.len() != pb.len() {
        return false;
    }
    let mut groups = Vec::new();
    for ((col_a, nodes_a), (col_b, nodes_b)) in pa.into_iter().zip(pb) {
        if col_a != col_b || nodes_a.len() != nodes_b.len() {
            return false;
        }
        groups.push((nodes_a, nodes_b));
    }
    // Sort ambiguous classes first ascending so the search fails fast.
    groups.sort_by_key(|(ga, _)| ga.len());
    // Per-class `used` flags: since we process one class fully before the
    // next, a single flag vector sized to the largest class works if reset
    // per class — simpler: give each class its own flags by offsetting.
    // We run the search class-by-class with one shared map, recursing
    // through classes; flags are per current class.
    fn solve(
        a: &OemDatabase,
        b: &OemDatabase,
        groups: &[(Vec<NodeId>, Vec<NodeId>)],
        gi: usize,
        map: &mut HashMap<NodeId, NodeId>,
        budget: &mut usize,
    ) -> bool {
        if gi == groups.len() {
            return is_valid_mapping(a, b, map);
        }
        let mut used = vec![false; groups[gi].1.len()];
        backtrack_class(a, b, groups, gi, 0, &mut used, map, budget)
    }
    #[allow(clippy::too_many_arguments)]
    fn backtrack_class(
        a: &OemDatabase,
        b: &OemDatabase,
        groups: &[(Vec<NodeId>, Vec<NodeId>)],
        gi: usize,
        ii: usize,
        used: &mut [bool],
        map: &mut HashMap<NodeId, NodeId>,
        budget: &mut usize,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        let (ref ga, ref gb) = groups[gi];
        if ii == ga.len() {
            return solve(a, b, groups, gi + 1, map, budget);
        }
        let n = ga[ii];
        for k in 0..gb.len() {
            if used[k] {
                continue;
            }
            *budget = budget.saturating_sub(1);
            used[k] = true;
            map.insert(n, gb[k]);
            if backtrack_class(a, b, groups, gi, ii + 1, used, map, budget) {
                return true;
            }
            used[k] = false;
            map.remove(&n);
            if *budget == 0 {
                return false;
            }
        }
        false
    }
    let mut map = HashMap::new();
    let mut budget = 200_000usize;
    solve(a, b, &groups, 0, &mut map, &mut budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guide::guide_figure2;
    use crate::GraphBuilder;

    #[test]
    fn database_equals_itself() {
        let db = guide_figure2();
        assert!(same_database(&db, &db));
        assert!(isomorphic(&db, &db));
    }

    #[test]
    fn clone_is_same_and_isomorphic() {
        let db = guide_figure2();
        let copy = db.clone();
        assert!(same_database(&db, &copy));
        assert!(isomorphic(&db, &copy));
    }

    #[test]
    fn renamed_ids_are_isomorphic_but_not_same() {
        let db = guide_figure2();
        // Rebuild the same shape with fresh auto-ids.
        let mut b = GraphBuilder::new("guide");
        let root = b.root();
        let bangkok = b.complex_child(root, "restaurant");
        b.atom_child(bangkok, "name", "Bangkok Cuisine");
        b.atom_child(bangkok, "price", 10);
        let addr = b.complex_child(bangkok, "address");
        b.atom_child(addr, "street", "Lytton");
        b.atom_child(addr, "city", "Palo Alto");
        let janta = b.complex_child(root, "restaurant");
        b.atom_child(janta, "name", "Janta");
        b.atom_child(janta, "price", "moderate");
        b.atom_child(janta, "address", "120 Lytton");
        b.atom_child(janta, "cuisine", "Indian");
        let lot = b.complex_child(bangkok, "parking");
        b.arc(janta, "parking", lot);
        b.atom_child(lot, "name", "Lytton lot 2");
        b.atom_child(lot, "comment", "usually full");
        b.arc(lot, "nearby-eats", bangkok);
        let rebuilt = b.finish();

        assert!(!same_database(&db, &rebuilt));
        assert!(isomorphic(&db, &rebuilt));
    }

    #[test]
    fn value_difference_breaks_isomorphism() {
        let a = guide_figure2();
        let mut b = guide_figure2();
        b.set_value(crate::guide::ids::N1, crate::Value::Int(11))
            .unwrap();
        assert!(!isomorphic(&a, &b));
        assert!(!same_database(&a, &b));
    }

    #[test]
    fn arc_label_difference_breaks_isomorphism() {
        let mut x = GraphBuilder::new("g");
        let r = x.root();
        x.atom_child(r, "a", 1);
        let x = x.finish();
        let mut y = GraphBuilder::new("g");
        let r = y.root();
        y.atom_child(r, "b", 1);
        let y = y.finish();
        assert!(!isomorphic(&x, &y));
    }

    #[test]
    fn symmetric_siblings_need_backtracking() {
        // Two structurally identical children: refinement cannot split
        // them, so the matcher must try assignments.
        fn twin() -> OemDatabase {
            let mut b = GraphBuilder::new("g");
            let r = b.root();
            let c1 = b.complex_child(r, "kid");
            let c2 = b.complex_child(r, "kid");
            b.atom_child(c1, "v", 1);
            b.atom_child(c2, "v", 1);
            b.finish()
        }
        assert!(isomorphic(&twin(), &twin()));
    }

    #[test]
    fn root_position_matters() {
        // Same underlying graph, different root designation.
        let mut b1 = GraphBuilder::new("g");
        let r1 = b1.root();
        let mid = b1.complex_child(r1, "x");
        b1.atom_child(mid, "y", 1);
        let g1 = b1.finish();

        let mut b2 = GraphBuilder::new("g");
        let r2 = b2.root();
        b2.atom_child(r2, "y", 1);
        let _ = mid;
        let g2 = b2.finish();
        assert!(!isomorphic(&g1, &g2));
    }
}
