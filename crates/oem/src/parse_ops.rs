//! Parsing change operations, change sets and histories from the paper's
//! textual notation — the inverse of their `Display` forms:
//!
//! ```text
//! creNode(n2, C)
//! updNode(n1, 20)
//! addArc(n4, restaurant, n2)
//! remArc(n6, parking, n7)
//! {updNode(n1, 20), creNode(n2, C)}
//! (1Jan97, {updNode(n1, 20)})
//! ```

use crate::{ArcTriple, ChangeOp, ChangeSet, History, NodeId, OemError, Result, Timestamp, Value};

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, msg: impl Into<String>) -> OemError {
        OemError::Text {
            line: 1,
            col: self.pos + 1,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.src[self.pos..].chars().next() {
            if !c.is_whitespace() {
                break;
            }
            self.pos += c.len_utf8();
        }
    }

    fn eat(&mut self, want: char) -> Result<()> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(want) {
            self.pos += want.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected {want:?}")))
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn word(&mut self) -> Result<&'a str> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.src[self.pos..].chars().next() {
            if !(c.is_alphanumeric() || c == '-' || c == '_') {
                break;
            }
            self.pos += c.len_utf8();
        }
        if self.pos == start {
            return Err(self.err("expected a word"));
        }
        Ok(&self.src[start..self.pos])
    }

    fn node_id(&mut self) -> Result<NodeId> {
        let w = self.word()?;
        w.strip_prefix('n')
            .and_then(|d| d.parse::<u64>().ok())
            .map(NodeId::from_raw)
            .ok_or_else(|| self.err(format!("expected a node id like n7, found {w:?}")))
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some('"') => {
                self.pos += 1;
                let mut out = String::new();
                let mut chars = self.src[self.pos..].char_indices();
                loop {
                    let Some((i, c)) = chars.next() else {
                        return Err(self.err("unterminated string"));
                    };
                    match c {
                        '"' => {
                            self.pos += i + 1;
                            return Ok(Value::str(out));
                        }
                        '\\' => match chars.next() {
                            Some((_, 'n')) => out.push('\n'),
                            Some((_, 't')) => out.push('\t'),
                            Some((_, c2)) => out.push(c2),
                            None => return Err(self.err("bad escape")),
                        },
                        c => out.push(c),
                    }
                }
            }
            Some('@') => {
                self.pos += 1;
                // Timestamp value up to the closing paren.
                let rest = &self.src[self.pos..];
                let end = rest.find([',', ')']).unwrap_or(rest.len());
                let text = rest[..end].trim();
                self.pos += end;
                text.parse::<Timestamp>()
                    .map(Value::Time)
                    .map_err(|e| self.err(e.to_string()))
            }
            _ => {
                let start = self.pos;
                while let Some(c) = self.src[self.pos..].chars().next() {
                    if !(c.is_alphanumeric() || c == '.' || c == '-') {
                        break;
                    }
                    self.pos += c.len_utf8();
                }
                let text = &self.src[start..self.pos];
                match text {
                    "C" => Ok(Value::Complex),
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    t if t.contains('.') => t
                        .parse::<f64>()
                        .map(Value::Real)
                        .map_err(|e| self.err(format!("bad value {t:?}: {e}"))),
                    t => t
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|e| self.err(format!("bad value {t:?}: {e}"))),
                }
            }
        }
    }

    fn op(&mut self) -> Result<ChangeOp> {
        let kind = self.word()?;
        self.eat('(')?;
        let op = match kind {
            "creNode" | "updNode" => {
                let n = self.node_id()?;
                self.eat(',')?;
                let v = self.value()?;
                if kind == "creNode" {
                    ChangeOp::CreNode(n, v)
                } else {
                    ChangeOp::UpdNode(n, v)
                }
            }
            "addArc" | "remArc" => {
                let p = self.node_id()?;
                self.eat(',')?;
                let label = self.label()?;
                self.eat(',')?;
                let c = self.node_id()?;
                let arc = ArcTriple::new(p, label.as_str(), c);
                if kind == "addArc" {
                    ChangeOp::AddArc(arc)
                } else {
                    ChangeOp::RemArc(arc)
                }
            }
            other => {
                return Err(self.err(format!(
                    "expected creNode/updNode/addArc/remArc, found {other:?}"
                )))
            }
        };
        self.eat(')')?;
        Ok(op)
    }

    fn label(&mut self) -> Result<String> {
        self.skip_ws();
        if self.peek() == Some('"') {
            match self.value()? {
                Value::Str(s) => Ok(s.to_string()),
                _ => Err(self.err("expected a label string")),
            }
        } else {
            Ok(self.word()?.to_string())
        }
    }

    fn change_set(&mut self) -> Result<ChangeSet> {
        self.eat('{')?;
        let mut set = ChangeSet::new();
        loop {
            if self.peek() == Some('}') {
                self.pos += 1;
                return Ok(set);
            }
            set.push(self.op()?)?;
            if self.peek() == Some(',') {
                self.pos += 1;
            }
        }
    }

    fn done(&mut self) -> Result<()> {
        self.skip_ws();
        if self.pos == self.src.len() {
            Ok(())
        } else {
            Err(self.err("trailing input"))
        }
    }
}

/// Parse a single change operation in the paper's notation.
pub fn parse_op(src: &str) -> Result<ChangeOp> {
    let mut c = Cursor { src, pos: 0 };
    let op = c.op()?;
    c.done()?;
    Ok(op)
}

/// Parse a change set: `{op, op, …}` (or a single bare op).
pub fn parse_change_set(src: &str) -> Result<ChangeSet> {
    let mut c = Cursor { src, pos: 0 };
    let set = if c.peek() == Some('{') {
        c.change_set()?
    } else {
        ChangeSet::from_ops([c.op()?])?
    };
    c.done()?;
    Ok(set)
}

/// Parse a history: one `(timestamp, {ops})` entry per line (blank lines
/// and `//` comments ignored).
pub fn parse_history(src: &str) -> Result<History> {
    let mut h = History::new();
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        let mut c = Cursor { src: line, pos: 0 };
        c.eat('(')?;
        c.skip_ws();
        let rest = &line[c.pos..];
        let comma = rest.find(',').ok_or_else(|| c.err("expected ','"))?;
        let at: Timestamp = rest[..comma]
            .trim()
            .parse()
            .map_err(|e: crate::ParseTimestampError| c.err(e.to_string()))?;
        c.pos += comma + 1;
        let set = c.change_set()?;
        c.eat(')')?;
        c.done()?;
        h.push(at, set)?;
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guide::history_example_2_3;

    #[test]
    fn ops_round_trip_their_display_forms() {
        for text in [
            "creNode(n2, C)",
            "creNode(n3, \"Hakata\")",
            "updNode(n1, 20)",
            "updNode(n1, 20.5)",
            "updNode(n1, true)",
            "addArc(n4, restaurant, n2)",
            "remArc(n6, parking, n7)",
        ] {
            let op = parse_op(text).unwrap();
            assert_eq!(op.to_string(), text);
        }
    }

    #[test]
    fn timestamp_values_parse() {
        let op = parse_op("updNode(n5, @1Jan97)").unwrap();
        assert_eq!(
            op,
            ChangeOp::UpdNode(NodeId::from_raw(5), Value::Time("1Jan97".parse().unwrap()))
        );
    }

    #[test]
    fn change_sets_round_trip() {
        let text = "{updNode(n1, 20), creNode(n2, C), addArc(n4, restaurant, n2)}";
        let set = parse_change_set(text).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.to_string(), text);
        // Bare single op also accepted.
        assert_eq!(parse_change_set("remArc(n6, parking, n7)").unwrap().len(), 1);
    }

    #[test]
    fn example_2_3_history_round_trips() {
        let h = history_example_2_3();
        let text = h.to_string();
        let back = parse_history(&text).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn bad_inputs_error() {
        assert!(parse_op("delNode(n1)").is_err());
        assert!(parse_op("updNode(x1, 20)").is_err());
        assert!(parse_op("updNode(n1, 20) extra").is_err());
        assert!(parse_change_set("{updNode(n1, 1), updNode(n1, 2)}").is_err()); // conflict
        assert!(parse_history("(notadate, {creNode(n1, C)})").is_err());
    }

    #[test]
    fn quoted_labels_parse() {
        let op = parse_op("addArc(n1, \"label with space\", n2)").unwrap();
        let ChangeOp::AddArc(a) = op else { panic!() };
        assert_eq!(a.label.as_str(), "label with space");
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// All three change-notation entry points must reject garbage with
        /// an error, never panic.
        #[test]
        fn change_notation_parsers_never_panic(src in "\\PC{0,80}") {
            let _ = parse_op(&src);
            let _ = parse_change_set(&src);
            let _ = parse_history(&src);
        }

        /// Op-shaped soup (names, parens, commas, quotes) reaches the
        /// argument parsing that plain garbage bounces off.
        #[test]
        fn change_notation_parsers_never_panic_on_opish_input(
            src in "(creNode|remArc|updNode|addArc|\\(|\\)|,|\\{|\\}|n[0-9]|\"|at | ){0,25}"
        ) {
            let _ = parse_op(&src);
            let _ = parse_change_set(&src);
            let _ = parse_history(&src);
        }
    }
}
