//! Persistent (path-copying) integer maps — the structural-sharing
//! substrate of the MVCC version store (DESIGN.md §14).
//!
//! [`PMap`] is a big-endian PATRICIA trie in the style of Okasaki & Gill
//! ("Fast Mergeable Integer Maps", 1998): interior nodes branch on the
//! *highest* bit position at which their subtrees' keys differ, so an
//! in-order traversal yields keys in ascending unsigned order — the same
//! iteration contract as the `BTreeMap` it replaces inside
//! [`crate::OemDatabase`]. Every interior edge is an [`Arc`], and updates
//! copy only the O(log n) spine from the root down to the touched leaf
//! (via [`Arc::make_mut`], which degrades to in-place mutation when a
//! node is unshared). Cloning a map is therefore O(1), and two clones
//! diverging under writes share every untouched subtree — a snapshot
//! costs O(writes since the snapshot), not O(database).
//!
//! [`PSet`] is the set view (a `PMap<()>`).

use std::sync::Arc;

/// One trie node: a key/value leaf, or a branch on bit `bit` whose
/// subtrees share the prefix `prefix` strictly above that bit.
#[derive(Clone, Debug)]
enum Node<V> {
    Leaf {
        key: u64,
        value: V,
    },
    Branch {
        /// The bits all keys below this node share, above `bit`; `bit`
        /// and everything below it are zeroed.
        prefix: u64,
        /// The branching bit (exactly one bit set): keys with it clear
        /// go left, keys with it set go right.
        bit: u64,
        left: Arc<Node<V>>,
        right: Arc<Node<V>>,
    },
}

/// The highest bit position at which `a` and `b` differ, as a one-bit
/// mask. Caller guarantees `a != b`.
fn branching_bit(a: u64, b: u64) -> u64 {
    let diff = a ^ b;
    debug_assert!(diff != 0);
    1u64 << (63 - diff.leading_zeros())
}

/// Keep only the bits of `key` strictly above `bit`.
fn mask(key: u64, bit: u64) -> u64 {
    key & !(bit | (bit - 1))
}

/// Whether `key` lives under a branch with the given `prefix`/`bit`.
fn matches_prefix(key: u64, prefix: u64, bit: u64) -> bool {
    mask(key, bit) == prefix
}

/// Join two subtrees whose prefixes `p0`/`p1` are known to differ,
/// branching on their highest differing bit.
fn join<V>(p0: u64, t0: Arc<Node<V>>, p1: u64, t1: Arc<Node<V>>) -> Node<V> {
    let bit = branching_bit(p0, p1);
    let prefix = mask(p0, bit);
    if p0 & bit == 0 {
        Node::Branch {
            prefix,
            bit,
            left: t0,
            right: t1,
        }
    } else {
        Node::Branch {
            prefix,
            bit,
            left: t1,
            right: t0,
        }
    }
}

/// A persistent map from `u64` keys to values with O(1) clone and
/// O(log n) path-copying updates. Iteration is in ascending key order.
#[derive(Clone, Debug)]
pub struct PMap<V> {
    root: Option<Arc<Node<V>>>,
    len: usize,
}

impl<V> Default for PMap<V> {
    fn default() -> PMap<V> {
        PMap::new()
    }
}

impl<V> PMap<V> {
    /// The empty map.
    pub fn new() -> PMap<V> {
        PMap { root: None, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: u64) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        loop {
            match node {
                Node::Leaf { key: k, value } => {
                    return if *k == key { Some(value) } else { None };
                }
                Node::Branch {
                    prefix,
                    bit,
                    left,
                    right,
                } => {
                    if !matches_prefix(key, *prefix, *bit) {
                        return None;
                    }
                    node = if key & *bit == 0 { left } else { right };
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Iterate `(key, &value)` in ascending key order.
    pub fn iter(&self) -> Iter<'_, V> {
        let mut stack = Vec::new();
        if let Some(root) = self.root.as_deref() {
            stack.push(root);
        }
        Iter { stack }
    }

    /// Iterate keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

impl<V: Clone> PMap<V> {
    /// Insert `key → value`, returning the previous value if any. Copies
    /// only the spine from the root to the touched position; subtrees
    /// shared with clones of this map stay shared.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        match &mut self.root {
            None => {
                self.root = Some(Arc::new(Node::Leaf { key, value }));
                self.len += 1;
                None
            }
            Some(root) => {
                let prev = insert_rec(root, key, value);
                if prev.is_none() {
                    self.len += 1;
                }
                prev
            }
        }
    }

    /// A mutable borrow of the value at `key` (path-copying the spine so
    /// sharing clones are unaffected), or `None` when absent.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if !self.contains_key(key) {
            return None;
        }
        Some(get_mut_rec(
            self.root.as_mut().expect("presence checked"),
            key,
        ))
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let root = self.root.as_ref()?;
        let (value, replacement) = remove_rec(root, key)?;
        self.root = replacement;
        self.len -= 1;
        Some(value)
    }
}

/// Recursive insert; `node`'s subtree is known non-empty.
fn insert_rec<V: Clone>(node: &mut Arc<Node<V>>, key: u64, value: V) -> Option<V> {
    // Divergence cases create a new branch *above* the existing subtree
    // without touching (or cloning) its interior.
    match &**node {
        Node::Leaf { key: k, .. } if *k != key => {
            let old = Arc::clone(node);
            *node = Arc::new(join(key, Arc::new(Node::Leaf { key, value }), *k, old));
            return None;
        }
        Node::Branch { prefix, bit, .. } if !matches_prefix(key, *prefix, *bit) => {
            let old = Arc::clone(node);
            *node = Arc::new(join(
                key,
                Arc::new(Node::Leaf { key, value }),
                *prefix,
                old,
            ));
            return None;
        }
        _ => {}
    }
    // The key belongs inside this node: path-copy it and descend.
    match Arc::make_mut(node) {
        Node::Leaf { value: v, .. } => Some(std::mem::replace(v, value)),
        Node::Branch {
            bit, left, right, ..
        } => {
            if key & *bit == 0 {
                insert_rec(left, key, value)
            } else {
                insert_rec(right, key, value)
            }
        }
    }
}

/// Recursive `get_mut`; the key is known present under `node`.
fn get_mut_rec<V: Clone>(node: &mut Arc<Node<V>>, key: u64) -> &mut V {
    match Arc::make_mut(node) {
        Node::Leaf { value, .. } => value,
        Node::Branch {
            bit, left, right, ..
        } => {
            if key & *bit == 0 {
                get_mut_rec(left, key)
            } else {
                get_mut_rec(right, key)
            }
        }
    }
}

/// Purely functional removal: the removed value plus the replacement
/// subtree (`None` when the subtree vanishes). Returns `None` when the
/// key is absent (and then nothing was copied).
#[allow(clippy::type_complexity)]
fn remove_rec<V: Clone>(node: &Arc<Node<V>>, key: u64) -> Option<(V, Option<Arc<Node<V>>>)> {
    match &**node {
        Node::Leaf { key: k, value } => {
            if *k == key {
                Some((value.clone(), None))
            } else {
                None
            }
        }
        Node::Branch {
            prefix,
            bit,
            left,
            right,
        } => {
            if !matches_prefix(key, *prefix, *bit) {
                return None;
            }
            if key & *bit == 0 {
                let (value, rep) = remove_rec(left, key)?;
                let replacement = match rep {
                    Some(l) => Arc::new(Node::Branch {
                        prefix: *prefix,
                        bit: *bit,
                        left: l,
                        right: Arc::clone(right),
                    }),
                    // A branch always has two children: collapsing to the
                    // sibling keeps the PATRICIA invariant.
                    None => Arc::clone(right),
                };
                Some((value, Some(replacement)))
            } else {
                let (value, rep) = remove_rec(right, key)?;
                let replacement = match rep {
                    Some(r) => Arc::new(Node::Branch {
                        prefix: *prefix,
                        bit: *bit,
                        left: Arc::clone(left),
                        right: r,
                    }),
                    None => Arc::clone(left),
                };
                Some((value, Some(replacement)))
            }
        }
    }
}

/// Ascending-order iterator over a [`PMap`].
pub struct Iter<'a, V> {
    /// Unvisited subtrees; branches are expanded right-pushed-first so
    /// the left (smaller-key) subtree pops first.
    stack: Vec<&'a Node<V>>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<(u64, &'a V)> {
        loop {
            match self.stack.pop()? {
                Node::Leaf { key, value } => return Some((*key, value)),
                Node::Branch { left, right, .. } => {
                    self.stack.push(right);
                    self.stack.push(left);
                }
            }
        }
    }
}

impl<'a, V> IntoIterator for &'a PMap<V> {
    type Item = (u64, &'a V);
    type IntoIter = Iter<'a, V>;

    fn into_iter(self) -> Iter<'a, V> {
        self.iter()
    }
}

impl<V: PartialEq> PartialEq for PMap<V> {
    fn eq(&self, other: &PMap<V>) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<V: Eq> Eq for PMap<V> {}

impl<V: Clone> FromIterator<(u64, V)> for PMap<V> {
    fn from_iter<I: IntoIterator<Item = (u64, V)>>(iter: I) -> PMap<V> {
        let mut map = PMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A persistent `u64` set with O(1) clone — the set view of [`PMap`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PSet {
    map: PMap<()>,
}

impl PSet {
    /// The empty set.
    pub fn new() -> PSet {
        PSet { map: PMap::new() }
    }

    /// Insert `key`; `true` when it was newly added.
    pub fn insert(&mut self, key: u64) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Whether `key` is a member.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(key)
    }

    /// Remove `key`; `true` when it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        self.map.remove(key).is_some()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.map.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_answers_nothing() {
        let m: PMap<i32> = PMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(0), None);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = PMap::new();
        assert_eq!(m.insert(5, "a"), None);
        assert_eq!(m.insert(1, "b"), None);
        assert_eq!(m.insert(9, "c"), None);
        assert_eq!(m.insert(5, "a2"), Some("a"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(5), Some(&"a2"));
        assert_eq!(m.get(2), None);
        assert_eq!(m.remove(1), Some("b"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_ascending_including_high_bit_keys() {
        let keys = [u64::MAX, 0, 1, 1 << 63, 42, (1 << 63) | 7, 3];
        let mut m = PMap::new();
        for &k in &keys {
            m.insert(k, k);
        }
        let seen: Vec<u64> = m.keys().collect();
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn clones_share_structure_and_diverge_under_writes() {
        let mut a = PMap::new();
        for k in 0..100u64 {
            a.insert(k, k as i64);
        }
        let b = a.clone();
        a.insert(50, -1);
        a.remove(10);
        assert_eq!(b.get(50), Some(&50));
        assert_eq!(b.get(10), Some(&10));
        assert_eq!(a.get(50), Some(&-1));
        assert_eq!(a.get(10), None);
        assert_eq!(b.len(), 100);
        assert_eq!(a.len(), 99);
    }

    #[test]
    fn get_mut_path_copies_away_from_clones() {
        let mut a = PMap::new();
        a.insert(1, vec![1]);
        a.insert(2, vec![2]);
        let b = a.clone();
        a.get_mut(1).unwrap().push(99);
        assert_eq!(b.get(1), Some(&vec![1]));
        assert_eq!(a.get(1), Some(&vec![1, 99]));
        // Absent keys copy nothing and answer None.
        assert!(a.get_mut(7).is_none());
    }

    #[test]
    fn set_view_behaves_like_a_set() {
        let mut s = PSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(1));
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// A scripted operation against both the model and the trie.
    #[derive(Clone, Debug)]
    enum Op {
        Insert(u64, i64),
        Remove(u64),
        GetMutAdd(u64, i64),
    }

    /// Decode one op from a raw code (the offline proptest stand-in has
    /// no `prop_oneof`/`prop_map`, so scripts arrive as integer vectors).
    /// Keys alternate between a small colliding domain — overwrites and
    /// removes of present keys — and a hashed wide domain that exercises
    /// high bits (including bit 63).
    fn decode(code: u64) -> Op {
        let key = if code.is_multiple_of(2) {
            (code / 8) % 24
        } else {
            // SplitMix64 finalizer: spreads codes across all 64 bits.
            let mut k = code.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            k = (k ^ (k >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            k = (k ^ (k >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            k ^ (k >> 31)
        };
        let value = (code as i64).wrapping_sub(500_000);
        match code % 3 {
            0 => Op::Insert(key, value),
            1 => Op::Remove(key),
            _ => Op::GetMutAdd(key, value),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// The trie agrees with a `BTreeMap` model across random op
        /// scripts — contents, lengths, return values, and ascending
        /// iteration order.
        #[test]
        fn pmap_matches_btreemap_model(ops in proptest::collection::vec(0u64..1_000_000, 1..96)) {
            let mut model: BTreeMap<u64, i64> = BTreeMap::new();
            let mut map: PMap<i64> = PMap::new();
            for &code in &ops {
                match decode(code) {
                    Op::Insert(k, v) => {
                        prop_assert_eq!(map.insert(k, v), model.insert(k, v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(map.remove(k), model.remove(&k));
                    }
                    Op::GetMutAdd(k, v) => {
                        let got = map.get_mut(k).map(|slot| {
                            *slot = slot.wrapping_add(v);
                            *slot
                        });
                        let want = model.get_mut(&k).map(|slot| {
                            *slot = slot.wrapping_add(v);
                            *slot
                        });
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(map.len(), model.len());
            }
            let trie: Vec<(u64, i64)> = map.iter().map(|(k, &v)| (k, v)).collect();
            let model: Vec<(u64, i64)> = model.into_iter().collect();
            prop_assert_eq!(trie, model);
        }

        /// Structural sharing never lets a clone observe later writes:
        /// snapshots taken mid-script stay frozen.
        #[test]
        fn clones_are_immutable_snapshots(ops in proptest::collection::vec(0u64..1_000_000, 1..72)) {
            let mut model: BTreeMap<u64, i64> = BTreeMap::new();
            let mut map: PMap<i64> = PMap::new();
            let cut = ops.len() / 2;
            let mut snapshot = None;
            for (i, &code) in ops.iter().enumerate() {
                if i == cut {
                    snapshot = Some((map.clone(), model.clone()));
                }
                match decode(code) {
                    Op::Insert(k, v) => {
                        map.insert(k, v);
                        model.insert(k, v);
                    }
                    Op::Remove(k) => {
                        map.remove(k);
                        model.remove(&k);
                    }
                    Op::GetMutAdd(k, v) => {
                        if let Some(slot) = map.get_mut(k) {
                            *slot = slot.wrapping_add(v);
                        }
                        if let Some(slot) = model.get_mut(&k) {
                            *slot = slot.wrapping_add(v);
                        }
                    }
                }
            }
            let (snap_map, snap_model) = snapshot.expect("cut < len");
            let frozen: Vec<(u64, i64)> = snap_map.iter().map(|(k, &v)| (k, v)).collect();
            let expected: Vec<(u64, i64)> = snap_model.into_iter().collect();
            prop_assert_eq!(frozen, expected);
        }
    }
}
