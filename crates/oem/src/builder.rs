//! Ergonomic construction of OEM graphs.
//!
//! [`GraphBuilder`] wraps an [`OemDatabase`] with handle-based helpers so
//! fixtures and tests can express graphs (including shared subobjects and
//! cycles) without spelling out every arc triple. `finish` checks the
//! Definition 2.1 invariants, so a builder cannot hand back a malformed
//! database.

use crate::{ArcTriple, Label, NodeId, OemDatabase, Value};

/// A fluent builder over a fresh [`OemDatabase`].
#[derive(Debug)]
pub struct GraphBuilder {
    db: OemDatabase,
}

impl GraphBuilder {
    /// Start a database named `name` with an auto-id root.
    pub fn new(name: impl Into<String>) -> GraphBuilder {
        GraphBuilder {
            db: OemDatabase::new(name),
        }
    }

    /// Start a database whose root carries a chosen id (paper-figure
    /// numbering).
    pub fn with_root_id(name: impl Into<String>, root: u64) -> GraphBuilder {
        GraphBuilder {
            db: OemDatabase::with_root_id(name, NodeId::from_raw(root)),
        }
    }

    /// The root object.
    pub fn root(&self) -> NodeId {
        self.db.root()
    }

    /// Create a detached atomic object.
    pub fn atom(&mut self, value: impl Into<Value>) -> NodeId {
        self.db.create_node(value.into())
    }

    /// Create a detached atomic object with a chosen id.
    pub fn atom_with_id(&mut self, id: u64, value: impl Into<Value>) -> NodeId {
        let n = NodeId::from_raw(id);
        self.db
            .create_node_with_id(n, value.into())
            .expect("builder ids must be fresh");
        n
    }

    /// Create a detached complex object.
    pub fn complex(&mut self) -> NodeId {
        self.db.create_node(Value::Complex)
    }

    /// Create a detached complex object with a chosen id.
    pub fn complex_with_id(&mut self, id: u64) -> NodeId {
        let n = NodeId::from_raw(id);
        self.db
            .create_node_with_id(n, Value::Complex)
            .expect("builder ids must be fresh");
        n
    }

    /// Add an arc `(parent, label, child)` between existing objects.
    pub fn arc(&mut self, parent: NodeId, label: impl Into<Label>, child: NodeId) -> &mut Self {
        self.db
            .insert_arc(ArcTriple::new(parent, label, child))
            .expect("builder arcs must be well-formed");
        self
    }

    /// Create an atomic child: `parent --label--> new_atom(value)`.
    pub fn atom_child(
        &mut self,
        parent: NodeId,
        label: impl Into<Label>,
        value: impl Into<Value>,
    ) -> NodeId {
        let c = self.atom(value);
        self.arc(parent, label, c);
        c
    }

    /// Create a complex child: `parent --label--> new_complex`.
    pub fn complex_child(&mut self, parent: NodeId, label: impl Into<Label>) -> NodeId {
        let c = self.complex();
        self.arc(parent, label, c);
        c
    }

    /// Finish building; panics if the graph violates Definition 2.1
    /// (fixtures are programmer-authored, so violations are bugs).
    pub fn finish(self) -> OemDatabase {
        if let Err(msg) = self.db.check_invariants() {
            panic!("GraphBuilder produced an invalid database: {msg}");
        }
        self.db
    }

    /// Access the database mid-build (e.g. for assertions in tests).
    pub fn db(&self) -> &OemDatabase {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structures() {
        let mut b = GraphBuilder::new("guide");
        let root = b.root();
        let rest = b.complex_child(root, "restaurant");
        b.atom_child(rest, "name", "Bangkok Cuisine");
        b.atom_child(rest, "price", 10);
        let db = b.finish();
        assert_eq!(db.node_count(), 4);
        assert_eq!(db.arc_count(), 3);
    }

    #[test]
    fn supports_shared_children_and_cycles() {
        let mut b = GraphBuilder::new("g");
        let root = b.root();
        let r1 = b.complex_child(root, "restaurant");
        let r2 = b.complex_child(root, "restaurant");
        let lot = b.complex_child(r1, "parking");
        b.arc(r2, "parking", lot);
        b.arc(lot, "nearby-eats", r1); // cycle r1 -> lot -> r1
        let db = b.finish();
        assert_eq!(db.parents(lot).len(), 2);
        db.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn finish_rejects_detached_nodes() {
        let mut b = GraphBuilder::new("g");
        b.atom("orphan");
        let _ = b.finish();
    }

    #[test]
    fn chosen_ids_are_respected() {
        let mut b = GraphBuilder::with_root_id("guide", 4);
        assert_eq!(b.root().raw(), 4);
        let price = b.atom_with_id(1, 10);
        b.arc(b.root(), "price", price);
        let db = b.finish();
        assert_eq!(db.value(NodeId::from_raw(1)).unwrap(), &Value::Int(10));
    }
}
