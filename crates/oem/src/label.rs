//! Interned arc labels.
//!
//! Every arc in an OEM database carries a string label (Definition 2.1).
//! Labels are heavily repeated (`restaurant`, `name`, …) and are compared
//! constantly during query evaluation, so they are interned process-wide:
//! a [`Label`] is a `Copy` handle whose equality is a single integer compare.
//!
//! Interning is global rather than per-database because labels routinely
//! cross database boundaries — change operations, DOEM annotations, query
//! ASTs, and diffs all mention labels independently of any one database.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned arc label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(u32);

struct Interner {
    by_name: HashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Label {
    /// Intern `name` and return its handle. Idempotent.
    pub fn new(name: &str) -> Label {
        {
            let guard = interner().read().unwrap();
            if let Some(&id) = guard.by_name.get(name) {
                return Label(id);
            }
        }
        let mut guard = interner().write().unwrap();
        if let Some(&id) = guard.by_name.get(name) {
            return Label(id);
        }
        let id = u32::try_from(guard.names.len()).expect("label interner overflow");
        guard.names.push(name.into());
        guard.by_name.insert(name.into(), id);
        Label(id)
    }

    /// The label's string form.
    pub fn as_str(self) -> &'static str {
        let guard = interner().read().unwrap();
        // Interned strings are never freed, so extending the lifetime of the
        // boxed str to 'static is sound: the box is owned by a process-wide
        // interner that only ever grows.
        let s: &str = &guard.names[self.0 as usize];
        unsafe { std::mem::transmute::<&str, &'static str>(s) }
    }

    /// Whether this is one of the reserved `&`-prefixed labels used by the
    /// DOEM-in-OEM encoding (Section 5.1 of the paper).
    pub fn is_reserved(self) -> bool {
        self.as_str().starts_with('&')
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Label {
    fn from(name: &str) -> Label {
        Label::new(name)
    }
}

impl From<String> for Label {
    fn from(name: String) -> Label {
        Label::new(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Label::new("restaurant");
        let b = Label::new("restaurant");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "restaurant");
    }

    #[test]
    fn distinct_names_get_distinct_labels() {
        assert_ne!(Label::new("price"), Label::new("name"));
    }

    #[test]
    fn reserved_labels_are_detected() {
        assert!(Label::new("&val").is_reserved());
        assert!(Label::new("&price-history").is_reserved());
        assert!(!Label::new("price").is_reserved());
    }

    #[test]
    fn display_is_bare_and_debug_is_quoted() {
        let l = Label::new("nearby-eats");
        assert_eq!(l.to_string(), "nearby-eats");
        assert_eq!(format!("{l:?}"), "\"nearby-eats\"");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Label::new("concurrent-label")))
            .collect();
        let labels: Vec<Label> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(labels.windows(2).all(|w| w[0] == w[1]));
    }
}
