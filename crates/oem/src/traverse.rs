//! Graph traversal utilities.
//!
//! Preorder walks (the paper's snapshot-extraction procedure in Section 3.2
//! traverses "in preorder"), reachability frontiers, and simple label-path
//! enumeration shared by the query engines.

use crate::{Label, NodeId, OemDatabase};
use std::collections::HashSet;

/// Preorder depth-first traversal from `start`, visiting each node once
/// (cycles and shared subobjects are handled by a visited set). Children
/// are explored in arc insertion order.
pub fn preorder(db: &OemDatabase, start: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut seen = HashSet::new();
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        if !seen.insert(n) || !db.contains_node(n) {
            continue;
        }
        order.push(n);
        // Push children in reverse so they pop in insertion order.
        for &(_, c) in db.children(n).iter().rev() {
            if !seen.contains(&c) {
                stack.push(c);
            }
        }
    }
    order
}

/// The set of nodes reachable from `start` (inclusive).
pub fn reachable_from(db: &OemDatabase, start: NodeId) -> HashSet<NodeId> {
    preorder(db, start).into_iter().collect()
}

/// All nodes reached from `start` by following exactly the label sequence
/// `path`. Duplicate bindings are preserved (a node reachable along two
/// distinct arc paths appears twice), matching query-binding semantics.
pub fn follow_path(db: &OemDatabase, start: NodeId, path: &[Label]) -> Vec<NodeId> {
    let mut frontier = vec![start];
    for &label in path {
        let mut next = Vec::new();
        for n in frontier {
            next.extend(db.children_labeled(n, label));
        }
        frontier = next;
    }
    frontier
}

/// Depth of the graph viewed as a DAG from the root: the longest acyclic
/// path length, used by workload generators and diff heuristics.
pub fn max_depth(db: &OemDatabase) -> usize {
    fn go(
        db: &OemDatabase,
        n: NodeId,
        on_path: &mut HashSet<NodeId>,
        memo: &mut std::collections::HashMap<NodeId, usize>,
    ) -> usize {
        if let Some(&d) = memo.get(&n) {
            return d;
        }
        if !on_path.insert(n) {
            return 0; // back-edge: cycles contribute no extra depth
        }
        let d = db
            .children(n)
            .iter()
            .map(|&(_, c)| go(db, c, on_path, memo) + 1)
            .max()
            .unwrap_or(0);
        on_path.remove(&n);
        memo.insert(n, d);
        d
    }
    let mut on_path = HashSet::new();
    let mut memo = std::collections::HashMap::new();
    go(db, db.root(), &mut on_path, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guide::{guide_figure2, ids};
    use crate::GraphBuilder;

    #[test]
    fn preorder_visits_each_node_once() {
        let db = guide_figure2();
        let order = preorder(&db, db.root());
        assert_eq!(order.len(), db.node_count());
        assert_eq!(order[0], db.root());
        let unique: HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), order.len());
    }

    #[test]
    fn preorder_survives_cycles() {
        let mut b = GraphBuilder::new("g");
        let root = b.root();
        let a = b.complex_child(root, "a");
        b.arc(a, "back", root);
        let db = b.finish();
        assert_eq!(preorder(&db, db.root()).len(), 2);
    }

    #[test]
    fn follow_path_walks_label_sequences() {
        let db = guide_figure2();
        let names = follow_path(
            &db,
            db.root(),
            &[Label::new("restaurant"), Label::new("name")],
        );
        assert_eq!(names.len(), 2);
        let streets = follow_path(
            &db,
            db.root(),
            &[
                Label::new("restaurant"),
                Label::new("address"),
                Label::new("street"),
            ],
        );
        assert_eq!(streets.len(), 1);
        assert_eq!(
            db.value(streets[0]).unwrap(),
            &crate::Value::str("Lytton")
        );
    }

    #[test]
    fn follow_path_preserves_duplicate_bindings() {
        // Both restaurants park at n7, so restaurant.parking binds n7 twice.
        let db = guide_figure2();
        let lots = follow_path(
            &db,
            db.root(),
            &[Label::new("restaurant"), Label::new("parking")],
        );
        assert_eq!(lots, vec![ids::N7, ids::N7]);
    }

    #[test]
    fn max_depth_ignores_cycles() {
        let db = guide_figure2();
        // root -> restaurant -> address -> street is depth 3; the
        // parking/nearby-eats cycle adds reachability but finite depth.
        assert!(max_depth(&db) >= 3);
        assert!(max_depth(&db) < db.node_count());
    }
}
