//! The time domain.
//!
//! Section 2.2 assumes "some time domain *time* that is discrete and totally
//! ordered". We use minutes since 1990-01-01 00:00 (signed), which covers
//! the paper's examples (`1Jan97`, `8Jan97`, polling "every night at
//! 11:30pm") with room to spare, plus ±∞ sentinels required by the QSS time
//! variables `t[-i]`, which the paper defines as negative infinity when the
//! subscription has not yet polled `i` times.
//!
//! In keeping with Lorel's "extensive use of coercion" (Section 4.2), any
//! recognizable textual format is accepted: `8Jan97`, `08Jan1997`,
//! `1997-01-08`, each optionally followed by a time of day (`11:30pm`,
//! `23:30`).

use std::fmt;
use std::str::FromStr;

/// A point in the discrete, totally ordered time domain.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(i64);

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Days from 1970-01-01 to the given civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11], Mar == 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Days from the epoch used by [`Timestamp`] (1990-01-01) to 1970-01-01.
const EPOCH_OFFSET_DAYS: i64 = 7305; // days_from_civil(1990, 1, 1)

impl Timestamp {
    /// Negative infinity: earlier than every finite timestamp.
    pub const NEG_INFINITY: Timestamp = Timestamp(i64::MIN);
    /// Positive infinity: later than every finite timestamp.
    pub const INFINITY: Timestamp = Timestamp(i64::MAX);

    /// Build a timestamp from a civil date and time of day.
    ///
    /// `year` is the full year (1997, not 97). Panics on out-of-range
    /// month/day/hour/minute — callers validating user input should go
    /// through [`str::parse`] instead.
    pub fn from_ymd_hm(year: i64, month: u32, day: u32, hour: u32, minute: u32) -> Timestamp {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!((1..=31).contains(&day), "day out of range: {day}");
        assert!(hour < 24, "hour out of range: {hour}");
        assert!(minute < 60, "minute out of range: {minute}");
        let days = days_from_civil(year, month, day) - EPOCH_OFFSET_DAYS;
        Timestamp(days * 24 * 60 + i64::from(hour) * 60 + i64::from(minute))
    }

    /// A date at midnight.
    pub fn from_ymd(year: i64, month: u32, day: u32) -> Timestamp {
        Timestamp::from_ymd_hm(year, month, day, 0, 0)
    }

    /// Raw minutes since 1990-01-01 00:00.
    pub fn raw_minutes(self) -> i64 {
        self.0
    }

    /// Rebuild from raw minutes (inverse of [`Timestamp::raw_minutes`]).
    pub fn from_raw_minutes(minutes: i64) -> Timestamp {
        Timestamp(minutes)
    }

    /// `true` for the two infinity sentinels.
    pub fn is_infinite(self) -> bool {
        self == Timestamp::NEG_INFINITY || self == Timestamp::INFINITY
    }

    /// This timestamp advanced by `minutes` (saturating; infinities are
    /// fixed points).
    pub fn plus_minutes(self, minutes: i64) -> Timestamp {
        if self.is_infinite() {
            return self;
        }
        Timestamp(self.0.saturating_add(minutes))
    }

    /// This timestamp advanced by `days`.
    pub fn plus_days(self, days: i64) -> Timestamp {
        self.plus_minutes(days * 24 * 60)
    }

    /// Decompose into (year, month, day, hour, minute).
    ///
    /// Panics on the infinity sentinels, which have no civil form.
    pub fn civil(self) -> (i64, u32, u32, u32, u32) {
        assert!(!self.is_infinite(), "infinite timestamp has no civil form");
        let minutes_of_day = self.0.rem_euclid(24 * 60);
        let days = (self.0 - minutes_of_day) / (24 * 60);
        let (y, m, d) = civil_from_days(days + EPOCH_OFFSET_DAYS);
        (
            y,
            m,
            d,
            (minutes_of_day / 60) as u32,
            (minutes_of_day % 60) as u32,
        )
    }

    /// Day of week, 0 = Monday … 6 = Sunday.
    pub fn weekday(self) -> u32 {
        assert!(!self.is_infinite(), "infinite timestamp has no weekday");
        let days = self.0.div_euclid(24 * 60) + EPOCH_OFFSET_DAYS;
        // 1970-01-01 was a Thursday (index 3 with Monday = 0).
        ((days + 3).rem_euclid(7)) as u32
    }

    /// The timestamp at 00:00 of the same day.
    pub fn midnight(self) -> Timestamp {
        assert!(!self.is_infinite(), "infinite timestamp has no midnight");
        Timestamp(self.0 - self.0.rem_euclid(24 * 60))
    }
}

impl fmt::Display for Timestamp {
    /// Canonical form matches the paper: `8Jan97`, with a time-of-day suffix
    /// when not midnight (`8Jan97 11:30pm`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Timestamp::NEG_INFINITY {
            return f.write_str("-inf");
        }
        if *self == Timestamp::INFINITY {
            return f.write_str("+inf");
        }
        let (y, m, d, hh, mm) = self.civil();
        // Two-digit years are only unambiguous inside the parser's
        // 1970–2069 pivot window; elsewhere print the full year.
        if (1970..=2069).contains(&y) {
            let yy = y.rem_euclid(100);
            write!(f, "{d}{}{yy:02}", MONTHS[(m - 1) as usize])?;
        } else {
            write!(f, "{d}{}{y}", MONTHS[(m - 1) as usize])?;
        }
        if hh != 0 || mm != 0 {
            let (h12, ampm) = match hh {
                0 => (12, "am"),
                1..=11 => (hh, "am"),
                12 => (12, "pm"),
                _ => (hh - 12, "pm"),
            };
            write!(f, " {h12}:{mm:02}{ampm}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error produced when a timestamp cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTimestampError {
    input: String,
}

impl fmt::Display for ParseTimestampError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized timestamp: {:?}", self.input)
    }
}

impl std::error::Error for ParseTimestampError {}

fn parse_time_of_day(s: &str) -> Option<(u32, u32)> {
    let s = s.trim();
    let (clock, ampm) = if let Some(rest) = s.strip_suffix("pm").or_else(|| s.strip_suffix("PM")) {
        (rest.trim_end(), Some(true))
    } else if let Some(rest) = s.strip_suffix("am").or_else(|| s.strip_suffix("AM")) {
        (rest.trim_end(), Some(false))
    } else {
        (s, None)
    };
    let (h, m) = clock.split_once(':')?;
    let h: u32 = h.trim().parse().ok()?;
    let m: u32 = m.trim().parse().ok()?;
    if m >= 60 {
        return None;
    }
    let h = match ampm {
        None => {
            if h >= 24 {
                return None;
            }
            h
        }
        Some(pm) => {
            if !(1..=12).contains(&h) {
                return None;
            }
            match (pm, h) {
                (false, 12) => 0,
                (false, h) => h,
                (true, 12) => 12,
                (true, h) => h + 12,
            }
        }
    };
    Some((h, m))
}

fn month_from_name(name: &str) -> Option<u32> {
    MONTHS
        .iter()
        .position(|m| m.eq_ignore_ascii_case(name))
        .map(|i| (i + 1) as u32)
}

/// Widen a two-digit year with a 1970 pivot: `97` → 1997, `05` → 2005.
fn widen_year(y: i64, digits: usize) -> i64 {
    if digits <= 2 {
        if y >= 70 {
            1900 + y
        } else {
            2000 + y
        }
    } else {
        y
    }
}

/// Parse `8Jan97` / `08Jan1997` style dates.
fn parse_compact_date(s: &str) -> Option<(i64, u32, u32)> {
    let day_len = s.chars().take_while(|c| c.is_ascii_digit()).count();
    if !(1..=2).contains(&day_len) {
        return None;
    }
    let day: u32 = s[..day_len].parse().ok()?;
    let rest = &s[day_len..];
    let alpha_len = rest.chars().take_while(|c| c.is_ascii_alphabetic()).count();
    if alpha_len != 3 {
        return None;
    }
    let month = month_from_name(&rest[..alpha_len])?;
    let year_str = &rest[alpha_len..];
    if year_str.is_empty() || !year_str.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    let year = widen_year(year_str.parse().ok()?, year_str.len());
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some((year, month, day))
}

/// Parse ISO `1997-01-08` dates.
fn parse_iso_date(s: &str) -> Option<(i64, u32, u32)> {
    let mut parts = s.split('-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some((y, m, d))
}

impl FromStr for Timestamp {
    type Err = ParseTimestampError;

    fn from_str(input: &str) -> Result<Timestamp, ParseTimestampError> {
        let s = input.trim();
        match s {
            "-inf" | "-infinity" => return Ok(Timestamp::NEG_INFINITY),
            "+inf" | "inf" | "+infinity" | "infinity" => return Ok(Timestamp::INFINITY),
            _ => {}
        }
        // Split an optional time-of-day suffix on the first space.
        let (date_part, time_part) = match s.split_once(' ') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let date = parse_compact_date(date_part).or_else(|| parse_iso_date(date_part));
        let Some((y, m, d)) = date else {
            return Err(ParseTimestampError {
                input: input.to_string(),
            });
        };
        let (hh, mm) = match time_part {
            None => (0, 0),
            Some(t) => parse_time_of_day(t).ok_or_else(|| ParseTimestampError {
                input: input.to_string(),
            })?,
        };
        // Reject dates that normalize to a different day (e.g. 31Feb).
        let ts = Timestamp::from_ymd_hm(y, m, d, hh, mm);
        let (cy, cm, cd, _, _) = ts.civil();
        if (cy, cm, cd) != (y, m, d) {
            return Err(ParseTimestampError {
                input: input.to_string(),
            });
        }
        Ok(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dates_parse_and_order() {
        let t1: Timestamp = "1Jan97".parse().unwrap();
        let t2: Timestamp = "5Jan97".parse().unwrap();
        let t3: Timestamp = "8Jan97".parse().unwrap();
        assert!(t1 < t2 && t2 < t3);
        assert_eq!(t1, Timestamp::from_ymd(1997, 1, 1));
        assert_eq!(t3.to_string(), "8Jan97");
    }

    #[test]
    fn coercion_accepts_many_formats() {
        let a: Timestamp = "08Jan1997".parse().unwrap();
        let b: Timestamp = "1997-01-08".parse().unwrap();
        let c: Timestamp = "8Jan97".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn time_of_day_suffix() {
        let t: Timestamp = "30Dec96 11:30pm".parse().unwrap();
        assert_eq!(t.civil(), (1996, 12, 30, 23, 30));
        assert_eq!(t.to_string(), "30Dec96 11:30pm");
        let u: Timestamp = "30Dec96 23:30".parse().unwrap();
        assert_eq!(t, u);
        let noon: Timestamp = "1Jan97 12:00pm".parse().unwrap();
        assert_eq!(noon.civil().3, 12);
        let midnight_ish: Timestamp = "1Jan97 12:05am".parse().unwrap();
        assert_eq!(midnight_ish.civil().3, 0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        for bad in ["", "Jan97", "32Jan97", "1Foo97", "1Jan97 25:00", "31Feb97"] {
            assert!(bad.parse::<Timestamp>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn infinities_order_around_everything() {
        let t: Timestamp = "1Jan97".parse().unwrap();
        assert!(Timestamp::NEG_INFINITY < t);
        assert!(t < Timestamp::INFINITY);
        assert_eq!("-inf".parse::<Timestamp>().unwrap(), Timestamp::NEG_INFINITY);
        assert_eq!("+inf".parse::<Timestamp>().unwrap(), Timestamp::INFINITY);
        assert_eq!(Timestamp::NEG_INFINITY.to_string(), "-inf");
    }

    #[test]
    fn civil_round_trip() {
        for (y, m, d, hh, mm) in [
            (1990, 1, 1, 0, 0),
            (1996, 12, 30, 23, 30),
            (1997, 1, 1, 0, 0),
            (2000, 2, 29, 12, 0), // leap day
            (1975, 6, 15, 6, 45), // before the epoch
            (2038, 1, 19, 3, 14),
        ] {
            let ts = Timestamp::from_ymd_hm(y, m, d, hh, mm);
            assert_eq!(ts.civil(), (y, m, d, hh, mm));
        }
    }

    #[test]
    fn display_parse_round_trip() {
        for s in ["1Jan97", "8Jan97", "30Dec96 11:30pm", "15Jun05 6:45am"] {
            let ts: Timestamp = s.parse().unwrap();
            assert_eq!(ts.to_string(), s);
            assert_eq!(ts.to_string().parse::<Timestamp>().unwrap(), ts);
        }
    }

    #[test]
    fn weekday_is_correct() {
        // 1997-01-01 was a Wednesday.
        assert_eq!(Timestamp::from_ymd(1997, 1, 1).weekday(), 2);
        // 1997-01-03 was a Friday.
        assert_eq!(Timestamp::from_ymd(1997, 1, 3).weekday(), 4);
        // 1990-01-01 (the epoch) was a Monday.
        assert_eq!(Timestamp::from_ymd(1990, 1, 1).weekday(), 0);
    }

    #[test]
    fn midnight_and_arithmetic() {
        let t: Timestamp = "30Dec96 11:30pm".parse().unwrap();
        assert_eq!(t.midnight().to_string(), "30Dec96");
        assert_eq!(t.plus_days(2).to_string(), "1Jan97 11:30pm");
        assert_eq!(t.plus_minutes(30).to_string(), "31Dec96");
        assert_eq!(Timestamp::INFINITY.plus_days(5), Timestamp::INFINITY);
    }

    #[test]
    fn two_digit_year_window() {
        assert_eq!("1Jan70".parse::<Timestamp>().unwrap().civil().0, 1970);
        assert_eq!("1Jan69".parse::<Timestamp>().unwrap().civil().0, 2069);
        assert_eq!("1Jan05".parse::<Timestamp>().unwrap().civil().0, 2005);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// Timestamp parsing must reject garbage with an error, never panic.
        #[test]
        fn timestamp_from_str_never_panics(src in "\\PC{0,40}") {
            let _ = src.parse::<Timestamp>();
        }

        /// Near-miss timestamps (digits, month fragments, am/pm tails)
        /// exercise every arm of the civil-date validation.
        #[test]
        fn timestamp_from_str_never_panics_on_datish_input(
            src in "[0-9]{0,4}(Jan|Feb|Mar|Jun|Dec|xx)?[0-9]{0,4}( [0-9]{1,2}:[0-9]{1,2}(am|pm|xm)?)?"
        ) {
            let _ = src.parse::<Timestamp>();
        }
    }
}
