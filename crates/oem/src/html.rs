//! Encoding HTML documents as OEM graphs.
//!
//! The paper's opening example is `htmldiff` over the Palo Alto Weekly's
//! restaurant pages, and Section 2 notes that "OEM can encode numerous
//! kinds of data, including … electronic documents in formats such as SGML
//! and HTML". This module supplies that encoding: a lenient parser for an
//! HTML subset producing an OEM tree —
//!
//! * an element becomes a complex object, reached from its parent by an
//!   arc labeled with the (lowercased) tag name;
//! * an attribute `k="v"` becomes an atomic subobject under label `@k`;
//! * a text run becomes a string atom under label `text`.
//!
//! Leniency matches 1990s HTML: unknown tags pass through, unclosed tags
//! close at their ancestor's end tag, void elements (`br`, `img`, `hr`, …)
//! never take children, comments and doctypes are skipped.

use crate::{ArcTriple, OemDatabase, Result, Value};

const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param",
    "source", "track", "wbr",
];

/// Parse an HTML document into an OEM database named `name`. The root
/// object is the document; top-level elements hang off it.
pub fn parse_html(name: &str, src: &str) -> Result<OemDatabase> {
    let mut db = OemDatabase::new(name);
    let root = db.root();
    let mut stack: Vec<(String, crate::NodeId)> = vec![(String::new(), root)];
    let mut chars = src.char_indices().peekable();
    let bytes = src;

    let mut text_start: Option<usize> = None;
    let flush_text = |db: &mut OemDatabase,
                          stack: &[(String, crate::NodeId)],
                          start: Option<usize>,
                          end: usize| {
        if let Some(s) = start {
            let text = bytes[s..end].trim();
            if !text.is_empty() {
                let collapsed = collapse_ws(text);
                let atom = db.create_node(Value::str(collapsed));
                let parent = stack.last().expect("root never pops").1;
                db.insert_arc(ArcTriple::new(parent, "text", atom))
                    .expect("fresh atom");
            }
        }
    };

    while let Some(&(i, c)) = chars.peek() {
        if c != '<' {
            if text_start.is_none() {
                text_start = Some(i);
            }
            chars.next();
            continue;
        }
        // A tag begins: flush pending text.
        flush_text(&mut db, &stack, text_start.take(), i);
        chars.next(); // consume '<'

        // Comment / doctype?
        if bytes[i..].starts_with("<!--") {
            let end = bytes[i..].find("-->").map(|k| i + k + 3).unwrap_or(bytes.len());
            while chars.peek().is_some_and(|&(j, _)| j < end) {
                chars.next();
            }
            continue;
        }
        if bytes[i + 1..].starts_with('!') || bytes[i + 1..].starts_with('?') {
            while let Some(&(_, c2)) = chars.peek() {
                chars.next();
                if c2 == '>' {
                    break;
                }
            }
            continue;
        }

        // Closing tag?
        let closing = chars.peek().is_some_and(|&(_, c2)| c2 == '/');
        if closing {
            chars.next();
        }
        // Tag name.
        let mut tag = String::new();
        while let Some(&(_, c2)) = chars.peek() {
            if c2.is_ascii_alphanumeric() || c2 == '-' {
                tag.push(c2.to_ascii_lowercase());
                chars.next();
            } else {
                break;
            }
        }
        // Attributes (also consumed for closing tags, which have none).
        let mut attrs: Vec<(String, String)> = Vec::new();
        let mut self_closed = false;
        loop {
            // skip whitespace
            while chars.peek().is_some_and(|&(_, c2)| c2.is_whitespace()) {
                chars.next();
            }
            match chars.peek() {
                None => break,
                Some(&(_, '>')) => {
                    chars.next();
                    break;
                }
                Some(&(_, '/')) => {
                    self_closed = true;
                    chars.next();
                }
                Some(&(_, _)) => {
                    // attribute name
                    let mut key = String::new();
                    while let Some(&(_, c2)) = chars.peek() {
                        if c2.is_ascii_alphanumeric() || c2 == '-' || c2 == '_' || c2 == ':' {
                            key.push(c2.to_ascii_lowercase());
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    if key.is_empty() {
                        chars.next(); // unparseable char; skip
                        continue;
                    }
                    // skip ws, optional ="value"
                    while chars.peek().is_some_and(|&(_, c2)| c2.is_whitespace()) {
                        chars.next();
                    }
                    let mut value = String::new();
                    if chars.peek().is_some_and(|&(_, c2)| c2 == '=') {
                        chars.next();
                        while chars.peek().is_some_and(|&(_, c2)| c2.is_whitespace()) {
                            chars.next();
                        }
                        match chars.peek() {
                            Some(&(_, q)) if q == '"' || q == '\'' => {
                                chars.next();
                                while let Some(&(_, c2)) = chars.peek() {
                                    chars.next();
                                    if c2 == q {
                                        break;
                                    }
                                    value.push(c2);
                                }
                            }
                            _ => {
                                while let Some(&(_, c2)) = chars.peek() {
                                    if c2.is_whitespace() || c2 == '>' || c2 == '/' {
                                        break;
                                    }
                                    value.push(c2);
                                    chars.next();
                                }
                            }
                        }
                    }
                    attrs.push((key, value));
                }
            }
        }

        if tag.is_empty() {
            continue; // stray '<'
        }
        if closing {
            // Pop to the matching open tag if present (lenient).
            if let Some(pos) = stack.iter().rposition(|(t, _)| *t == tag) {
                stack.truncate(pos.max(1));
            }
            continue;
        }
        // Open element.
        let parent = stack.last().expect("root never pops").1;
        let node = db.create_node(Value::Complex);
        db.insert_arc(ArcTriple::new(parent, tag.as_str(), node))
            .expect("fresh element");
        for (k, v) in attrs {
            let atom = db.create_node(Value::str(v));
            db.insert_arc(ArcTriple::new(node, format!("@{k}").as_str(), atom))
                .expect("fresh attribute");
        }
        if !self_closed && !VOID_ELEMENTS.contains(&tag.as_str()) {
            stack.push((tag, node));
        }
    }
    flush_text(&mut db, &stack, text_start.take(), bytes.len());

    debug_assert!(db.check_invariants().is_ok());
    Ok(db)
}

fn collapse_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_ws = false;
    for c in s.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
            }
            in_ws = true;
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{follow_path, Label};

    #[test]
    fn elements_attributes_and_text() {
        let db = parse_html(
            "page",
            r#"<html><body><h1>Guide</h1><p class="entry">Janta</p></body></html>"#,
        )
        .unwrap();
        db.check_invariants().unwrap();
        let h1_text = follow_path(
            &db,
            db.root(),
            &["html", "body", "h1", "text"].map(Label::new),
        );
        assert_eq!(h1_text.len(), 1);
        assert_eq!(db.value(h1_text[0]).unwrap(), &Value::str("Guide"));
        let class = follow_path(
            &db,
            db.root(),
            &["html", "body", "p", "@class"].map(Label::new),
        );
        assert_eq!(db.value(class[0]).unwrap(), &Value::str("entry"));
    }

    #[test]
    fn void_and_self_closing_elements() {
        let db = parse_html("p", "<p>a<br>b</p><img src='x.gif'/> tail").unwrap();
        db.check_invariants().unwrap();
        // br and img take no children; "a" and "b" are both p's text runs.
        let texts = follow_path(&db, db.root(), &["p", "text"].map(Label::new));
        assert_eq!(texts.len(), 2);
        let src = follow_path(&db, db.root(), &["img", "@src"].map(Label::new));
        assert_eq!(db.value(src[0]).unwrap(), &Value::str("x.gif"));
    }

    #[test]
    fn comments_and_doctype_are_skipped() {
        let db = parse_html(
            "p",
            "<!DOCTYPE html><!-- hidden <b>not a tag</b> --><p>shown</p>",
        )
        .unwrap();
        assert_eq!(
            follow_path(&db, db.root(), &["p", "text"].map(Label::new)).len(),
            1
        );
        assert!(db
            .node_ids()
            .all(|n| db.value(n).unwrap() != &Value::str("hidden")));
    }

    #[test]
    fn unclosed_tags_are_tolerated() {
        // 1990s-style list markup without </li>.
        let db = parse_html("l", "<ul><li>one<li>two<li>three</ul><p>after</p>").unwrap();
        db.check_invariants().unwrap();
        let items = follow_path(&db, db.root(), &["ul", "li"].map(Label::new));
        // Lenient nesting may nest subsequent <li> under the previous one;
        // all three text runs must exist somewhere under ul.
        let ul = follow_path(&db, db.root(), &[Label::new("ul")].map(|l| l))[0];
        let all_text: Vec<String> = crate::preorder(&db, ul)
            .into_iter()
            .filter_map(|n| match db.value(n).ok()? {
                Value::Str(s) => Some(s.to_string()),
                _ => None,
            })
            .collect();
        assert!(all_text.contains(&"one".to_string()));
        assert!(all_text.contains(&"three".to_string()));
        assert!(!items.is_empty());
        // The paragraph after the list is outside it.
        assert_eq!(
            follow_path(&db, db.root(), &["p", "text"].map(Label::new)).len(),
            1
        );
    }

    #[test]
    fn whitespace_collapses_inside_text_runs() {
        let db = parse_html("p", "<p>  hello\n   world  </p>").unwrap();
        let t = follow_path(&db, db.root(), &["p", "text"].map(Label::new));
        assert_eq!(db.value(t[0]).unwrap(), &Value::str("hello world"));
    }

    #[test]
    fn garbage_never_panics() {
        for bad in ["<", "</", "<<<>>>", "<p", "a<b=''", "<!--", "<p att=>x"] {
            let _ = parse_html("g", bad);
        }
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// The HTML reader must survive arbitrary input without panicking.
        #[test]
        fn parse_html_never_panics(src in "\\PC{0,120}") {
            let _ = parse_html("fuzz", &src);
        }

        /// Tag soup (unbalanced tags, stray brackets, entities) exercises
        /// the tree-building recovery paths.
        #[test]
        fn parse_html_never_panics_on_tag_soup(
            src in "(<|>|</|<a|<ul|<li|<h1|&amp;|&#x3B;|txt| |\n){0,40}"
        ) {
            let _ = parse_html("fuzz", &src);
        }
    }
}
