//! Cheap snapshot handles over an OEM database.
//!
//! A [`SharedOem`] is an [`Arc`]-backed handle: cloning it is O(1) and the
//! clone observes the graph exactly as it was at clone time, no matter
//! what later writers do. Writers go through [`SharedOem::make_mut`],
//! which mutates in place while the handle is unshared; the moment a
//! reader still holds an older snapshot it switches to a *persistent*
//! clone — O(1) at the handle, with the write itself path-copying only
//! the touched spine of the underlying [`PMap`](crate::PMap) storage
//! (DESIGN.md §14), never duplicating the whole database. This is the
//! mechanism behind snapshot-isolated query execution and the MVCC
//! version ring in the serve layer: readers clone the handle under a
//! brief lock and evaluate entirely outside it.

use crate::OemDatabase;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, copy-on-write handle to an [`OemDatabase`].
///
/// ```
/// use oem::{OemDatabase, SharedOem, Value};
///
/// let mut live = SharedOem::new(OemDatabase::new("g"));
/// let snapshot = live.snapshot();          // O(1), pins the current state
/// let n = live.make_mut().create_node(Value::Int(1)); // copy-on-write
/// assert!(live.contains_node(n));
/// assert!(!snapshot.contains_node(n));     // the snapshot is unmoved
/// ```
#[derive(Clone, Debug)]
pub struct SharedOem(Arc<OemDatabase>);

impl SharedOem {
    /// Wrap a database in a shareable handle.
    pub fn new(db: OemDatabase) -> SharedOem {
        SharedOem(Arc::new(db))
    }

    /// An O(1) snapshot: the returned handle keeps observing the state as
    /// of this call even while `self` is subsequently mutated.
    pub fn snapshot(&self) -> SharedOem {
        self.clone()
    }

    /// Mutable access for writers. In-place while this handle is the only
    /// owner; takes an O(1) persistent clone first when snapshots are
    /// still outstanding, leaving them untouched — the write then
    /// path-copies only what it touches (DESIGN.md §14).
    pub fn make_mut(&mut self) -> &mut OemDatabase {
        Arc::make_mut(&mut self.0)
    }

    /// Whether any snapshot of this handle is still alive (in which case
    /// the next [`SharedOem::make_mut`] takes the persistent-clone path).
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.0) > 1
    }

    /// Recover the owned database, cloning only if snapshots remain.
    pub fn into_inner(self) -> OemDatabase {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl Deref for SharedOem {
    type Target = OemDatabase;

    fn deref(&self) -> &OemDatabase {
        &self.0
    }
}

impl From<OemDatabase> for SharedOem {
    fn from(db: OemDatabase) -> SharedOem {
        SharedOem::new(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArcTriple, Value};

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let mut live = SharedOem::new(OemDatabase::new("g"));
        let root = live.root();
        let before = live.snapshot();
        assert!(live.is_shared());

        let n = live.make_mut().create_node(Value::Int(7));
        live.make_mut()
            .insert_arc(ArcTriple::new(root, "x", n))
            .unwrap();
        assert!(live.contains_node(n));
        assert!(!before.contains_node(n));
        assert_eq!(before.node_count(), 1);
    }

    #[test]
    fn unshared_handle_mutates_in_place() {
        let mut live = SharedOem::new(OemDatabase::new("g"));
        assert!(!live.is_shared());
        let ptr_before = Arc::as_ptr(&live.0);
        live.make_mut().create_node(Value::Int(1));
        assert_eq!(ptr_before, Arc::as_ptr(&live.0), "no clone when unshared");
    }

    #[test]
    fn dropping_snapshots_restores_in_place_mutation() {
        let live = SharedOem::new(OemDatabase::new("g"));
        let snap = live.snapshot();
        assert!(live.is_shared());
        drop(snap);
        assert!(!live.is_shared());
    }

    #[test]
    fn into_inner_round_trips() {
        let live = SharedOem::new(OemDatabase::new("g"));
        let snap = live.snapshot();
        let owned = live.into_inner(); // clones: snap is alive
        assert!(crate::same_database(&owned, &snap));
    }
}
