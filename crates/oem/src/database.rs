//! The OEM database: a rooted, labeled graph of objects.
//!
//! Definition 2.1: an OEM database is `(N, A, v, r)` — object identifiers,
//! labeled directed arcs, a value function, and a distinguished root. Only
//! complex objects (value `C`) have outgoing arcs, and every node must be
//! reachable from the root.
//!
//! Reachability is *enforced lazily*: while a change set is being applied,
//! unreachable objects are permitted (Section 2.2), and
//! [`OemDatabase::collect_garbage`] removes them at change-set boundaries.
//! Collected ids are retired forever — Section 2.2 assumes deleted ids are
//! never reused — so `creNode` on a previously used id is rejected.

use crate::pmap::{PMap, PSet};
use crate::{ArcTriple, Label, NodeId, OemError, Result, Value};
use std::collections::HashSet;

/// Per-node storage: the value and outgoing arcs in insertion order.
#[derive(Clone, Debug)]
struct NodeData {
    value: Value,
    /// Outgoing arcs in insertion order. Order is not semantically
    /// meaningful in OEM (arcs form a set) but deterministic order keeps
    /// printing, diffing and query results stable.
    out: Vec<(Label, NodeId)>,
}

/// A rooted OEM database.
///
/// Storage is **persistent** (DESIGN.md §14): the node map is a
/// path-copying PATRICIA trie ([`PMap`]), so cloning a database is O(1)
/// and a clone diverging under writes shares every untouched subtree
/// with its siblings. That makes [`crate::SharedOem`]'s copy-on-write
/// `make_mut` cost O(write), not O(database) — the structural-sharing
/// substrate of the MVCC version store.
#[derive(Clone, Debug)]
pub struct OemDatabase {
    /// The database name; the first component of a Lorel path expression
    /// resolves against it (e.g. `guide` in `guide.restaurant.price`).
    name: String,
    root: NodeId,
    /// Nodes keyed by raw id; trie order is ascending id order.
    nodes: PMap<NodeData>,
    /// Total arcs — always the sum of the adjacency lists' lengths.
    /// Membership checks scan the parent's (short) adjacency list; a
    /// separate arc set would re-enter every arc into the clone path.
    arc_count: usize,
    /// Ids that were used once and have been garbage-collected.
    retired: PSet,
    /// Next id handed out by [`OemDatabase::create_node`].
    next_id: u64,
}

impl OemDatabase {
    /// Create a database named `name` with a fresh complex root object.
    pub fn new(name: impl Into<String>) -> OemDatabase {
        OemDatabase::with_root_id(name, NodeId(1))
    }

    /// Create a database whose root object has a chosen id. Used by
    /// fixtures that reproduce the paper's figures with the paper's node
    /// numbering (the Guide root is `n4`).
    pub fn with_root_id(name: impl Into<String>, root: NodeId) -> OemDatabase {
        let mut nodes = PMap::new();
        nodes.insert(
            root.0,
            NodeData {
                value: Value::Complex,
                out: Vec::new(),
            },
        );
        OemDatabase {
            name: name.into(),
            root,
            nodes,
            arc_count: 0,
            retired: PSet::new(),
            next_id: root.0 + 1,
        }
    }

    /// The database name (the implicit first label of path expressions).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the database.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The distinguished root object.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of objects currently in the database.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of arcs currently in the database.
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// Whether `n` is currently an object of the database.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.contains_key(n.0)
    }

    /// Whether the arc `(p, l, c)` is currently present. O(out-degree of
    /// the parent) — adjacency lists are the single source of truth.
    pub fn contains_arc(&self, arc: ArcTriple) -> bool {
        self.children(arc.parent)
            .iter()
            .any(|&(l, c)| l == arc.label && c == arc.child)
    }

    /// The value of object `n`.
    pub fn value(&self, n: NodeId) -> Result<&Value> {
        self.nodes
            .get(n.0)
            .map(|d| &d.value)
            .ok_or(OemError::NoSuchNode(n))
    }

    /// `true` iff `n` exists and is a complex object.
    pub fn is_complex(&self, n: NodeId) -> bool {
        matches!(self.nodes.get(n.0), Some(d) if d.value.is_complex())
    }

    /// Outgoing arcs of `n` in insertion order (empty for atomic objects).
    pub fn children(&self, n: NodeId) -> &[(Label, NodeId)] {
        self.nodes.get(n.0).map(|d| d.out.as_slice()).unwrap_or(&[])
    }

    /// The `l`-labeled children of `n`, in insertion order.
    pub fn children_labeled<'a>(
        &'a self,
        n: NodeId,
        l: Label,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.children(n)
            .iter()
            .filter(move |(label, _)| *label == l)
            .map(|&(_, c)| c)
    }

    /// All object ids, ascending.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().map(NodeId)
    }

    /// All arcs, grouped by parent in id order, then insertion order.
    pub fn arcs(&self) -> impl Iterator<Item = ArcTriple> + '_ {
        self.nodes.iter().flat_map(|(p, d)| {
            d.out.iter().map(move |&(label, child)| ArcTriple {
                parent: NodeId(p),
                label,
                child,
            })
        })
    }

    /// The distinct labels on arcs out of `n`.
    pub fn out_labels(&self, n: NodeId) -> Vec<Label> {
        let mut seen = Vec::new();
        for &(l, _) in self.children(n) {
            if !seen.contains(&l) {
                seen.push(l);
            }
        }
        seen
    }

    /// Parents of `c`: every `(p, l)` with an arc `(p, l, c)`.
    ///
    /// O(|A|); incoming adjacency is not indexed because nothing in the hot
    /// paths needs it — diffing and GC both walk outgoing arcs.
    pub fn parents(&self, c: NodeId) -> Vec<(NodeId, Label)> {
        self.arcs()
            .filter(|a| a.child == c)
            .map(|a| (a.parent, a.label))
            .collect()
    }

    // ---- low-level mutation (validity is the ops layer's concern) ----

    /// Hand out a fresh id without creating a node yet. Useful for building
    /// `creNode` operations ahead of applying them: the returned id stays
    /// fresh (a later `creNode` with it succeeds) but will never be handed
    /// out again by this database.
    pub fn alloc_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// `true` iff `n` was never used as an object id.
    pub fn is_fresh(&self, n: NodeId) -> bool {
        !self.nodes.contains_key(n.0) && !self.retired.contains(n.0)
    }

    /// Create a node with a caller-chosen fresh id (the paper's
    /// `creNode(n, v)` shape). Fails with [`OemError::IdNotFresh`] if the id
    /// was ever used.
    pub fn create_node_with_id(&mut self, n: NodeId, value: Value) -> Result<()> {
        if !self.is_fresh(n) {
            return Err(OemError::IdNotFresh(n));
        }
        self.nodes.insert(
            n.0,
            NodeData {
                value,
                out: Vec::new(),
            },
        );
        if n.0 >= self.next_id {
            self.next_id = n.0 + 1;
        }
        Ok(())
    }

    /// Create a node with an auto-allocated id.
    pub fn create_node(&mut self, value: Value) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.insert(
            id.0,
            NodeData {
                value,
                out: Vec::new(),
            },
        );
        id
    }

    /// Overwrite the value of `n` unconditionally (no paper preconditions;
    /// see [`crate::ChangeOp::UpdNode`] for the checked path).
    pub fn set_value(&mut self, n: NodeId, value: Value) -> Result<()> {
        let data = self.nodes.get_mut(n.0).ok_or(OemError::NoSuchNode(n))?;
        data.value = value;
        Ok(())
    }

    /// Insert the arc `(p, l, c)`. Checks only existence/duplication, not
    /// parent complexity (see [`crate::ChangeOp::AddArc`] for full checks).
    pub fn insert_arc(&mut self, arc: ArcTriple) -> Result<()> {
        if !self.nodes.contains_key(arc.parent.0) {
            return Err(OemError::NoSuchNode(arc.parent));
        }
        if !self.nodes.contains_key(arc.child.0) {
            return Err(OemError::NoSuchNode(arc.child));
        }
        if self.contains_arc(arc) {
            return Err(OemError::ArcExists(arc));
        }
        self.nodes
            .get_mut(arc.parent.0)
            .expect("parent checked above")
            .out
            .push((arc.label, arc.child));
        self.arc_count += 1;
        Ok(())
    }

    /// Remove the arc `(p, l, c)`.
    pub fn delete_arc(&mut self, arc: ArcTriple) -> Result<()> {
        let pos = self
            .children(arc.parent)
            .iter()
            .position(|&(l, c)| l == arc.label && c == arc.child)
            .ok_or(OemError::NoSuchArc(arc))?;
        self.nodes
            .get_mut(arc.parent.0)
            .expect("children() found the arc")
            .out
            .remove(pos);
        self.arc_count -= 1;
        Ok(())
    }

    /// The set of nodes reachable from the root by directed paths.
    pub fn reachable(&self) -> HashSet<NodeId> {
        let mut seen = HashSet::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        seen.insert(self.root);
        while let Some(n) = stack.pop() {
            for &(_, c) in self.children(n) {
                if seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        seen
    }

    /// Remove (and retire the ids of) every object unreachable from the
    /// root, together with arcs among removed objects. Returns the removed
    /// ids in ascending order.
    ///
    /// This implements OEM's deletion-by-unreachability (Section 2.1) and is
    /// invoked at change-set boundaries (Section 2.2).
    pub fn collect_garbage(&mut self) -> Vec<NodeId> {
        let live = self.reachable();
        let dead: Vec<NodeId> = self
            .nodes
            .keys()
            .map(NodeId)
            .filter(|n| !live.contains(n))
            .collect();
        for &n in &dead {
            let data = self.nodes.remove(n.0).expect("listed above");
            self.arc_count -= data.out.len();
            self.retired.insert(n.0);
        }
        // Arcs *into* dead nodes can only originate from dead nodes (a live
        // parent would make the child live), so removing the dead nodes'
        // own adjacency lists removed every dead-touching arc; assert that
        // in debug builds.
        debug_assert!(self.arcs().all(|a| live.contains(&a.child)));
        dead
    }

    /// Check the Definition 2.1 invariants; used by tests and debug
    /// assertions. Returns a human-readable violation if any.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        if !self.nodes.contains_key(self.root.0) {
            return Err(format!("root {} is not an object", self.root));
        }
        for (raw, data) in &self.nodes {
            let n = NodeId(raw);
            if data.value.is_atomic() && !data.out.is_empty() {
                return Err(format!("atomic object {n} has outgoing arcs"));
            }
            let mut seen = HashSet::new();
            for &(l, c) in &data.out {
                if !self.nodes.contains_key(c.0) {
                    return Err(format!("dangling arc ({n}, {l}, {c})"));
                }
                if !seen.insert((l, c)) {
                    return Err(format!("duplicate arc ({n}, {l}, {c})"));
                }
            }
        }
        if self.arc_count != self.nodes.values().map(|d| d.out.len()).sum::<usize>() {
            return Err("arc counter and adjacency lists disagree".to_string());
        }
        let live = self.reachable();
        if live.len() != self.nodes.len() {
            let orphan = self
                .nodes
                .keys()
                .map(NodeId)
                .find(|n| !live.contains(n))
                .expect("count mismatch implies an orphan");
            return Err(format!("object {orphan} is unreachable from the root"));
        }
        Ok(())
    }
}

impl Default for OemDatabase {
    fn default() -> OemDatabase {
        OemDatabase::new("db")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (OemDatabase, NodeId, NodeId) {
        let mut db = OemDatabase::new("guide");
        let a = db.create_node(Value::Complex);
        let b = db.create_node(Value::Int(10));
        db.insert_arc(ArcTriple::new(db.root(), "restaurant", a))
            .unwrap();
        db.insert_arc(ArcTriple::new(a, "price", b)).unwrap();
        (db, a, b)
    }

    #[test]
    fn fresh_database_has_complex_root() {
        let db = OemDatabase::new("guide");
        assert_eq!(db.name(), "guide");
        assert!(db.is_complex(db.root()));
        assert_eq!(db.node_count(), 1);
        assert_eq!(db.arc_count(), 0);
        db.check_invariants().unwrap();
    }

    #[test]
    fn arcs_and_children_agree() {
        let (db, a, b) = tiny();
        assert_eq!(db.children(db.root()), &[(Label::new("restaurant"), a)]);
        assert_eq!(
            db.children_labeled(a, Label::new("price")).collect::<Vec<_>>(),
            vec![b]
        );
        assert_eq!(db.arc_count(), 2);
        assert!(db.contains_arc(ArcTriple::new(a, "price", b)));
        db.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_arc_is_rejected() {
        let (mut db, a, b) = tiny();
        let err = db.insert_arc(ArcTriple::new(a, "price", b)).unwrap_err();
        assert!(matches!(err, OemError::ArcExists(_)));
    }

    #[test]
    fn parallel_arcs_with_different_labels_are_fine() {
        let (mut db, a, b) = tiny();
        db.insert_arc(ArcTriple::new(a, "cost", b)).unwrap();
        assert_eq!(db.children(a).len(), 2);
        db.check_invariants().unwrap();
    }

    #[test]
    fn delete_arc_removes_exactly_one() {
        let (mut db, a, b) = tiny();
        db.delete_arc(ArcTriple::new(a, "price", b)).unwrap();
        assert!(!db.contains_arc(ArcTriple::new(a, "price", b)));
        assert!(db
            .delete_arc(ArcTriple::new(a, "price", b))
            .is_err());
    }

    #[test]
    fn gc_removes_unreachable_and_retires_ids() {
        let (mut db, a, b) = tiny();
        db.delete_arc(ArcTriple::new(db.root(), "restaurant", a))
            .unwrap();
        let dead = db.collect_garbage();
        assert_eq!(dead, vec![a, b]);
        assert!(!db.contains_node(a));
        // Retired ids are not fresh.
        assert!(!db.is_fresh(a));
        assert!(matches!(
            db.create_node_with_id(a, Value::Int(1)),
            Err(OemError::IdNotFresh(_))
        ));
        db.check_invariants().unwrap();
    }

    #[test]
    fn gc_keeps_cycles_reachable_from_root() {
        let mut db = OemDatabase::new("g");
        let a = db.create_node(Value::Complex);
        let b = db.create_node(Value::Complex);
        db.insert_arc(ArcTriple::new(db.root(), "x", a)).unwrap();
        db.insert_arc(ArcTriple::new(a, "to", b)).unwrap();
        db.insert_arc(ArcTriple::new(b, "back", a)).unwrap();
        assert!(db.collect_garbage().is_empty());
        // Cut the cycle off the root: both nodes die together.
        db.delete_arc(ArcTriple::new(db.root(), "x", a)).unwrap();
        let dead = db.collect_garbage();
        assert_eq!(dead.len(), 2);
        db.check_invariants().unwrap();
    }

    #[test]
    fn explicit_ids_bump_the_allocator() {
        let mut db = OemDatabase::new("g");
        db.create_node_with_id(NodeId::from_raw(100), Value::Int(5))
            .unwrap();
        let next = db.create_node(Value::Int(6));
        assert!(next.raw() > 100);
    }

    #[test]
    fn multiple_incoming_arcs_share_a_child() {
        // Figure 2's n7 ("Lytton lot 2") has two incoming parking arcs.
        let mut db = OemDatabase::new("g");
        let r1 = db.create_node(Value::Complex);
        let r2 = db.create_node(Value::Complex);
        let lot = db.create_node(Value::str("Lytton lot 2"));
        db.insert_arc(ArcTriple::new(db.root(), "restaurant", r1))
            .unwrap();
        db.insert_arc(ArcTriple::new(db.root(), "restaurant", r2))
            .unwrap();
        db.insert_arc(ArcTriple::new(r1, "parking", lot)).unwrap();
        db.insert_arc(ArcTriple::new(r2, "parking", lot)).unwrap();
        assert_eq!(db.parents(lot).len(), 2);
        db.check_invariants().unwrap();
        // Removing one incoming arc keeps the shared child alive.
        db.delete_arc(ArcTriple::new(r1, "parking", lot)).unwrap();
        assert!(db.collect_garbage().is_empty());
        assert!(db.contains_node(lot));
    }

    #[test]
    fn invariant_checker_catches_atomic_with_children() {
        let (mut db, a, _) = tiny();
        db.set_value(a, Value::Int(3)).unwrap(); // a still has a child arc
        assert!(db.check_invariants().is_err());
    }
}
