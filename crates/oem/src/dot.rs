//! Graphviz (DOT) rendering of OEM databases, for regenerating the paper's
//! figures. Complex objects render as circles labeled with their id;
//! atomic objects show their value.

use crate::{OemDatabase, Value};
use std::fmt::Write as _;

/// Render `db` as a `digraph` in DOT syntax.
pub fn to_dot(db: &OemDatabase) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{}\" {{", escape(db.name())).expect("write to String");
    writeln!(out, "  rankdir=TB;").expect("write to String");
    for n in db.node_ids() {
        let value = db.value(n).expect("iterating own ids");
        let (shape, label) = match value {
            Value::Complex => ("circle", n.to_string()),
            v => ("box", format!("{n}\\n{}", escape(&v.to_string()))),
        };
        let root_mark = if n == db.root() { ", penwidth=2" } else { "" };
        writeln!(out, "  {n} [shape={shape}, label=\"{label}\"{root_mark}];")
            .expect("write to String");
    }
    for arc in db.arcs() {
        writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            arc.parent,
            arc.child,
            escape(arc.label.as_str())
        )
        .expect("write to String");
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guide::guide_figure2;

    #[test]
    fn dot_mentions_every_node_and_arc() {
        let db = guide_figure2();
        let dot = to_dot(&db);
        assert!(dot.starts_with("digraph \"guide\""));
        for n in db.node_ids() {
            assert!(dot.contains(&format!("  {n} ")), "missing node {n}");
        }
        assert_eq!(dot.matches(" -> ").count(), db.arc_count());
        // The root is highlighted.
        assert!(dot.contains("penwidth=2"));
    }

    #[test]
    fn quotes_in_values_are_escaped() {
        let mut b = crate::GraphBuilder::new("g");
        let root = b.root();
        b.atom_child(root, "note", "a \"quoted\" word");
        let dot = to_dot(&b.finish());
        assert!(dot.contains("\\\""));
    }
}
