//! htmldiff-style marked-up rendering (paper Section 1.1, Figure 1).
//!
//! The paper's `htmldiff` tool renders a marked-up copy of a page that
//! highlights the differences between two versions. We produce the same
//! behaviour over OEM snapshots: the *new* snapshot is rendered in the
//! textual OEM style with a gutter mark per line —
//!
//! * `+` — inserted object or added arc,
//! * `*` — updated value (the old value is shown inline as `old => new`),
//! * `-` — removed arc (rendered where it used to hang, with its old
//!   target summarized),
//! * ` ` — unchanged.

use crate::script::DiffResult;
use crate::{diff, MatchMode};
use oem::{ArcTriple, NodeId, OemDatabase, Value};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Render the marked-up diff between two snapshots.
pub fn markup(old: &OemDatabase, new: &OemDatabase, mode: MatchMode) -> oem::Result<String> {
    let result = diff(old, new, mode)?;
    Ok(render(old, new, &result))
}

/// Render a precomputed diff.
pub fn render(old: &OemDatabase, new: &OemDatabase, result: &DiffResult) -> String {
    let mut out = String::new();
    let mut visited = HashSet::new();
    let _ = writeln!(out, "  {} {{", new.name());
    render_children(
        old,
        new,
        result,
        new.root(),
        1,
        &mut visited,
        &mut out,
    );
    out.push_str("  }\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn summary(db: &OemDatabase, n: NodeId) -> String {
    match db.value(n) {
        Ok(Value::Complex) => format!("{{…{}}}", n),
        Ok(v) => v.to_string(),
        Err(_) => "?".to_string(),
    }
}

fn render_children(
    old: &OemDatabase,
    new: &OemDatabase,
    r: &DiffResult,
    n: NodeId,
    depth: usize,
    visited: &mut HashSet<NodeId>,
    out: &mut String,
) {
    // Removed arcs first (they no longer exist in `new`): arcs out of the
    // old counterpart whose mapped form is absent.
    if let Some(o) = r.matching.old_of(n) {
        for &(label, old_child) in old.children(o) {
            let still_there = r
                .matching
                .new_of(old_child)
                .is_some_and(|nc| new.contains_arc(ArcTriple::new(n, label, nc)));
            if !still_there {
                let _ = write!(out, "- ");
                indent(out, depth);
                let _ = writeln!(out, "{label} {}", summary(old, old_child));
            }
        }
    }
    for &(label, child) in new.children(n) {
        let inserted = r.matching.old_of(child).is_none();
        let arc_added = !inserted
            && r.matching
                .old_of(n)
                .is_none_or(|o| {
                    let oc = r.matching.old_of(child).expect("checked above");
                    !old.contains_arc(ArcTriple::new(o, label, oc))
                });
        let value = new.value(child).expect("child exists");
        let updated_from: Option<&Value> = r.matching.old_of(child).and_then(|oc| {
            let ov = old.value(oc).ok()?;
            (ov != value).then_some(ov)
        });
        let mark = if inserted || arc_added {
            '+'
        } else if updated_from.is_some() {
            '*'
        } else {
            ' '
        };
        let _ = write!(out, "{mark} ");
        indent(out, depth);
        let _ = write!(out, "{label} ");
        if !visited.insert(child) {
            let _ = writeln!(out, "&{child}");
            continue;
        }
        match value {
            Value::Complex => {
                let _ = writeln!(out, "{{");
                render_children(old, new, r, child, depth + 1, visited, out);
                let _ = write!(out, "{mark} ");
                indent(out, depth);
                let _ = writeln!(out, "}}");
            }
            v => {
                if let Some(ov) = updated_from {
                    let _ = writeln!(out, "{ov} => {v}");
                } else {
                    let _ = writeln!(out, "{v}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::guide::{guide_figure2, guide_figure3};

    #[test]
    fn figure1_style_markup_of_the_guide_update() {
        let old = guide_figure2();
        let new = guide_figure3();
        let text = markup(&old, &new, MatchMode::ById).unwrap();
        // The new Hakata restaurant is marked inserted.
        assert!(text.contains("+"), "{text}");
        assert!(text.contains("\"Hakata\""), "{text}");
        // The price update shows old and new values.
        assert!(text.contains("10 => 20"), "{text}");
        // The removed parking arc is rendered with a '-' gutter.
        assert!(text.lines().any(|l| l.starts_with('-') && l.contains("parking")),
            "{text}");
        // Unchanged lines keep a blank gutter.
        assert!(text.lines().any(|l| l.starts_with(' ') && l.contains("Janta")),
            "{text}");
    }

    #[test]
    fn identical_snapshots_have_a_clean_gutter() {
        let db = guide_figure2();
        let text = markup(&db, &db, MatchMode::ById).unwrap();
        assert!(text.lines().all(|l| l.starts_with(' ') || l.starts_with("  ")), "{text}");
    }

    #[test]
    fn shared_nodes_render_as_references_once() {
        let old = guide_figure2();
        let text = markup(&old, &old, MatchMode::ById).unwrap();
        // n7 appears once expanded and once as &n7.
        assert_eq!(text.matches("&n7").count(), 1, "{text}");
    }
}
