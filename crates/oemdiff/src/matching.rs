//! Matching nodes between two snapshots.
//!
//! QSS infers changes from snapshot pairs (Section 6); following the
//! paper's CRGMW96 lineage the first step is a *matching* between the old
//! and new object sets. Two modes:
//!
//! * [`match_by_id`] — when the source preserves object identifiers across
//!   polls (our in-process wrappers do), identity is the matching.
//! * [`match_structural`] — when identifiers are not comparable (the
//!   general autonomous-source case): roots are matched, then matched
//!   parents propagate matches to their children — first exactly (equal
//!   deep signatures, aligned per label by longest-common-subsequence),
//!   then approximately (same label, similar shallow signature or both
//!   complex), breadth-first.

use crate::signature::Signatures;
use oem::{Label, NodeId, OemDatabase};
use std::collections::{HashMap, HashSet, VecDeque};

/// A matching: a partial 1-1 mapping from old node ids to new node ids.
#[derive(Clone, Debug, Default)]
pub struct Matching {
    forward: HashMap<NodeId, NodeId>,
    backward: HashMap<NodeId, NodeId>,
}

impl Matching {
    /// Record a pair; ignored if either side is already matched.
    pub fn pair(&mut self, old: NodeId, new: NodeId) -> bool {
        if self.forward.contains_key(&old) || self.backward.contains_key(&new) {
            return false;
        }
        self.forward.insert(old, new);
        self.backward.insert(new, old);
        true
    }

    /// The new node matched to `old`.
    pub fn new_of(&self, old: NodeId) -> Option<NodeId> {
        self.forward.get(&old).copied()
    }

    /// The old node matched to `new`.
    pub fn old_of(&self, new: NodeId) -> Option<NodeId> {
        self.backward.get(&new).copied()
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` iff no pairs.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Iterate `(old, new)` pairs (unordered).
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.forward.iter().map(|(&o, &n)| (o, n))
    }
}

/// Match by identifier: nodes present in both databases pair with
/// themselves.
pub fn match_by_id(old: &OemDatabase, new: &OemDatabase) -> Matching {
    let mut m = Matching::default();
    for n in old.node_ids() {
        if new.contains_node(n) {
            m.pair(n, n);
        }
    }
    m
}

/// Longest common subsequence over equatable keys; returns index pairs.
fn lcs<T: PartialEq>(a: &[T], b: &[T]) -> Vec<(usize, usize)> {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if a[i] == b[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Structural matching (see module docs).
pub fn match_structural(old: &OemDatabase, new: &OemDatabase) -> Matching {
    let so = Signatures::compute(old);
    let sn = Signatures::compute(new);
    let mut m = Matching::default();
    m.pair(old.root(), new.root());

    let mut queue = VecDeque::from([(old.root(), new.root())]);
    let mut processed: HashSet<(NodeId, NodeId)> = HashSet::new();
    while let Some((po, pn)) = queue.pop_front() {
        if !processed.insert((po, pn)) {
            continue;
        }
        // Group children per label preserving order.
        let labels: Vec<Label> = {
            let mut ls = old.out_labels(po);
            for l in new.out_labels(pn) {
                if !ls.contains(&l) {
                    ls.push(l);
                }
            }
            ls
        };
        for label in labels {
            let co: Vec<NodeId> = old.children_labeled(po, label).collect();
            let cn: Vec<NodeId> = new.children_labeled(pn, label).collect();

            // Tier 1: exact alignment by deep signature (LCS keeps order).
            let ko: Vec<u64> = co.iter().map(|&c| so.deep(c)).collect();
            let kn: Vec<u64> = cn.iter().map(|&c| sn.deep(c)).collect();
            let mut used_o = vec![false; co.len()];
            let mut used_n = vec![false; cn.len()];
            for (i, j) in lcs(&ko, &kn) {
                if m.pair(co[i], cn[j]) {
                    used_o[i] = true;
                    used_n[j] = true;
                    queue.push_back((co[i], cn[j]));
                }
            }
            // Tier 2: pair leftovers with equal shallow signatures (same
            // current value), in order.
            for (i, &o_node) in co.iter().enumerate() {
                if used_o[i] || m.new_of(o_node).is_some() {
                    continue;
                }
                for (j, &n_node) in cn.iter().enumerate() {
                    if used_n[j] || m.old_of(n_node).is_some() {
                        continue;
                    }
                    if so.shallow(o_node) == sn.shallow(n_node) {
                        if m.pair(o_node, n_node) {
                            used_o[i] = true;
                            used_n[j] = true;
                            queue.push_back((o_node, n_node));
                        }
                        break;
                    }
                }
            }
            // Tier 3: pair remaining same-kind children in order — complex
            // with complex (their subtrees changed; descending finds the
            // real edits) and atomic with atomic (a value update, which is
            // what htmldiff reports for edited text runs).
            for (i, &o_node) in co.iter().enumerate() {
                if used_o[i] || m.new_of(o_node).is_some() {
                    continue;
                }
                let o_complex = old.is_complex(o_node);
                for (j, &n_node) in cn.iter().enumerate() {
                    if used_n[j]
                        || m.old_of(n_node).is_some()
                        || new.is_complex(n_node) != o_complex
                    {
                        continue;
                    }
                    if m.pair(o_node, n_node) {
                        used_o[i] = true;
                        used_n[j] = true;
                        if o_complex {
                            queue.push_back((o_node, n_node));
                        }
                    }
                    break;
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::guide::{guide_figure2, guide_figure3, ids};
    use oem::GraphBuilder;

    #[test]
    fn id_matching_pairs_shared_ids() {
        let old = guide_figure2();
        let new = guide_figure3();
        let m = match_by_id(&old, &new);
        assert_eq!(m.len(), old.node_count()); // figure3 only adds nodes
        assert_eq!(m.new_of(ids::N1), Some(ids::N1));
        assert_eq!(m.old_of(ids::N2), None); // Hakata is new
    }

    #[test]
    fn structural_matching_on_identical_databases_is_total() {
        let a = guide_figure2();
        let b = guide_figure2();
        let m = match_structural(&a, &b);
        assert_eq!(m.len(), a.node_count());
        for n in a.node_ids() {
            assert_eq!(m.new_of(n), Some(n));
        }
    }

    #[test]
    fn structural_matching_survives_id_renaming() {
        let a = guide_figure2();
        // Same content, totally different ids.
        let mut b = GraphBuilder::with_root_id("guide", 100);
        let guide = b.root();
        let bangkok = b.complex_with_id(108);
        b.arc(guide, "restaurant", bangkok);
        b.atom_child(bangkok, "name", "Bangkok Cuisine");
        b.atom_child(bangkok, "price", 10);
        let addr = b.complex_child(bangkok, "address");
        b.atom_child(addr, "street", "Lytton");
        b.atom_child(addr, "city", "Palo Alto");
        let janta = b.complex_with_id(106);
        b.arc(guide, "restaurant", janta);
        b.atom_child(janta, "name", "Janta");
        b.atom_child(janta, "price", "moderate");
        b.atom_child(janta, "address", "120 Lytton");
        b.atom_child(janta, "cuisine", "Indian");
        let lot = b.complex_with_id(107);
        b.arc(bangkok, "parking", lot);
        b.arc(janta, "parking", lot);
        b.atom_child(lot, "name", "Lytton lot 2");
        b.atom_child(lot, "comment", "usually full");
        b.arc(lot, "nearby-eats", bangkok);
        let b = b.finish();

        let m = match_structural(&a, &b);
        assert_eq!(m.len(), a.node_count());
        assert_eq!(m.new_of(ids::N6), Some(oem::NodeId::from_raw(106)));
        assert_eq!(m.new_of(ids::N7), Some(oem::NodeId::from_raw(107)));
    }

    #[test]
    fn value_edit_still_matches_via_complex_parent() {
        let a = guide_figure2();
        let mut b = guide_figure2();
        b.set_value(ids::N1, oem::Value::Int(20)).unwrap();
        let m = match_structural(&a, &b);
        // The restaurant parents match (tier 3), and so does the price leaf
        // through per-label pairing under its matched parent.
        assert_eq!(m.new_of(ids::BANGKOK), Some(ids::BANGKOK));
        assert_eq!(m.new_of(ids::N6), Some(ids::N6));
    }

    #[test]
    fn lcs_is_a_common_subsequence() {
        let a = [1, 3, 5, 7, 9];
        let b = [3, 4, 7, 9, 10];
        let pairs = lcs(&a, &b);
        let vals: Vec<i32> = pairs.iter().map(|&(i, _)| a[i]).collect();
        assert_eq!(vals, vec![3, 7, 9]);
    }
}
