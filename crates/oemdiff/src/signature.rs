//! Structural node signatures.
//!
//! The matcher compares nodes across two snapshots by signature: an
//! iterated hash of a node's value and its children's labels and
//! signatures (color refinement). Unlike a bottom-up subtree hash, color
//! refinement converges on cyclic graphs too, which OEM permits.
//!
//! Two nodes with equal signatures are *very likely* roots of isomorphic
//! reachable subgraphs; the change-script generator never relies on that
//! blindly — it verifies the final script by applying it — so a hash
//! collision can only cost script quality, not correctness.

use oem::{Label, NodeId, OemDatabase};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// The number of refinement rounds. Signatures distinguish structure up to
/// this depth; deeper differences are caught by the verification step.
const ROUNDS: usize = 8;

fn hash64(h: impl Hash) -> u64 {
    let mut hasher = DefaultHasher::new();
    h.hash(&mut hasher);
    hasher.finish()
}

/// Per-node signatures for one database.
#[derive(Clone, Debug)]
pub struct Signatures {
    sig: HashMap<NodeId, u64>,
    /// Shallow signature: value only (used as a weaker fallback tier).
    value_sig: HashMap<NodeId, u64>,
}

impl Signatures {
    /// Compute signatures for every node of `db`.
    pub fn compute(db: &OemDatabase) -> Signatures {
        let mut sig: HashMap<NodeId, u64> = db
            .node_ids()
            .map(|n| (n, hash64(db.value(n).expect("own id"))))
            .collect();
        let value_sig = sig.clone();
        for _ in 0..ROUNDS {
            let mut next = HashMap::with_capacity(sig.len());
            for n in db.node_ids() {
                let mut child_sigs: Vec<(Label, u64)> = db
                    .children(n)
                    .iter()
                    .map(|&(l, c)| (l, sig[&c]))
                    .collect();
                child_sigs.sort();
                next.insert(n, hash64((sig[&n], child_sigs)));
            }
            sig = next;
        }
        Signatures { sig, value_sig }
    }

    /// The deep (refined) signature of `n`.
    pub fn deep(&self, n: NodeId) -> u64 {
        self.sig[&n]
    }

    /// The shallow (value-only) signature of `n`.
    pub fn shallow(&self, n: NodeId) -> u64 {
        self.value_sig[&n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::guide::guide_figure2;
    use oem::GraphBuilder;

    #[test]
    fn identical_structures_get_identical_signatures() {
        let a = guide_figure2();
        let b = guide_figure2();
        let sa = Signatures::compute(&a);
        let sb = Signatures::compute(&b);
        for n in a.node_ids() {
            assert_eq!(sa.deep(n), sb.deep(n));
        }
    }

    #[test]
    fn value_changes_change_signatures_up_the_path() {
        let a = guide_figure2();
        let mut b = guide_figure2();
        b.set_value(oem::guide::ids::N1, oem::Value::Int(20)).unwrap();
        let sa = Signatures::compute(&a);
        let sb = Signatures::compute(&b);
        // The changed leaf and the root both differ.
        assert_ne!(sa.deep(oem::guide::ids::N1), sb.deep(oem::guide::ids::N1));
        assert_ne!(sa.deep(a.root()), sb.deep(b.root()));
        // An untouched leaf (Janta's cuisine) is unchanged.
        let cuisine = a
            .children_labeled(oem::guide::ids::N6, oem::Label::new("cuisine"))
            .next()
            .unwrap();
        assert_eq!(sa.deep(cuisine), sb.deep(cuisine));
    }

    #[test]
    fn cycles_converge() {
        let mut b = GraphBuilder::new("g");
        let root = b.root();
        let a = b.complex_child(root, "x");
        b.arc(a, "loop", a);
        let db = b.finish();
        let s = Signatures::compute(&db); // must terminate
        assert_ne!(s.deep(db.root()), s.deep(a));
    }

    #[test]
    fn shallow_signature_ignores_structure() {
        let mut b = GraphBuilder::new("g");
        let root = b.root();
        let x = b.atom_child(root, "a", 1);
        let y = b.atom_child(root, "b", 1);
        let db = b.finish();
        let s = Signatures::compute(&db);
        assert_eq!(s.shallow(x), s.shallow(y));
    }
}
