//! # OEMdiff — inferring changes from snapshots of semistructured data
//!
//! The differencing substrate of *"Representing and Querying Changes in
//! Semistructured Data"* (ICDE 1998). Autonomous sources rarely expose
//! triggers or history, so QSS (Section 6) infers change operations from
//! consecutive snapshots: this crate computes, for snapshots `R_old` and
//! `R_new`, a valid OEM change set `U` with `U(R_old) = R_new` — the
//! property the paper's `OEMdiff` module guarantees — following the
//! matching-then-script approach of the cited CRGMW96/CGM97 algorithms.
//!
//! Two matching modes: [`MatchMode::ById`] when the source preserves
//! object identifiers across polls, and [`MatchMode::Structural`]
//! (signature + LCS alignment) when it does not.
//!
//! [`markup`] renders an `htmldiff`-style marked-up copy of the new
//! snapshot highlighting insertions, updates, and deletions (the paper's
//! Figure 1 behaviour).
//!
//! ```
//! use oem::guide::{guide_figure2, guide_figure3};
//! use oemdiff::{diff, stats, MatchMode};
//!
//! let r = diff(&guide_figure2(), &guide_figure3(), MatchMode::ById).unwrap();
//! let s = stats(&r.changes);
//! assert_eq!((s.creates, s.updates, s.adds, s.removes), (3, 1, 3, 1));
//! ```

#![warn(missing_docs)]

mod markup;
mod matching;
mod script;
mod signature;

pub use markup::{markup, render};
pub use matching::{match_by_id, match_structural, Matching};
pub use script::{diff, diff_verified, stats, verify_diff, DiffResult, DiffStats, MatchMode};
pub use signature::Signatures;
