//! Change-script generation: from a node matching to a valid change set
//! `U` with `U(R_old) = R_new`.
//!
//! This is the contract QSS depends on (Section 6: "QSS obtains a history
//! H … that is, `Ui(Ri−1) = Ri` for all i > 0"). The generated set is
//! verified by application before it is returned.

use crate::matching::{match_by_id, match_structural, Matching};
use oem::{same_database, ArcTriple, ChangeOp, ChangeSet, NodeId, OemDatabase, OemError};
use std::collections::{HashMap, HashSet};

/// How nodes are matched across the two snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// Object identifiers are stable across snapshots (the fast path; our
    /// in-process polling results preserve ids).
    #[default]
    ById,
    /// Identifiers are not comparable — match by structure (the general
    /// autonomous-source case, per CRGMW96).
    Structural,
}

/// The outcome of differencing.
#[derive(Clone, Debug)]
pub struct DiffResult {
    /// The change set; applying it to the old snapshot yields the new one.
    pub changes: ChangeSet,
    /// The node matching used (old → new).
    pub matching: Matching,
    /// New-snapshot node → id it received in the updated old snapshot
    /// (matched nodes keep the old id; created nodes get a fresh one).
    pub new_ids: HashMap<NodeId, NodeId>,
}

impl DiffResult {
    /// Number of operations in the script.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// `true` iff the snapshots were found identical.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// Compute a change set transforming `old` into `new`.
///
/// The script is *verified*: it is applied to a copy of `old` and the
/// result compared with `new` (by id when matched ids are preserved). An
/// [`OemError`] here indicates an internal inconsistency, not bad input.
///
/// ```
/// use oem::guide::{guide_figure2, guide_figure3};
/// use oemdiff::{diff, MatchMode};
///
/// let r = diff(&guide_figure2(), &guide_figure3(), MatchMode::ById).unwrap();
/// let mut db = guide_figure2();
/// r.changes.apply_to(&mut db).unwrap();       // U(R_old) …
/// assert!(oem::same_database(&db, &guide_figure3())); // … = R_new
/// ```
pub fn diff(old: &OemDatabase, new: &OemDatabase, mode: MatchMode) -> oem::Result<DiffResult> {
    let mut matching = match mode {
        MatchMode::ById => {
            let mut m = match_by_id(old, new);
            m.pair(old.root(), new.root()); // roots always correspond
            m
        }
        MatchMode::Structural => match_structural(old, new),
    };
    // In id mode the root pairing may have failed above if either root was
    // already paired to a different node (only possible when the two roots
    // have different ids and one root's id appears as a non-root in the
    // other database — then that id pairing is wrong; rebuild without it).
    if matching.new_of(old.root()) != Some(new.root()) {
        let mut m = Matching::default();
        m.pair(old.root(), new.root());
        for (o, n) in matching.pairs() {
            if o != old.root() && n != new.root() {
                m.pair(o, n);
            }
        }
        matching = m;
    }

    // Assign result ids to every new node.
    let mut scratch = old.clone();
    let mut new_ids: HashMap<NodeId, NodeId> = HashMap::new();
    let mut taken: HashSet<NodeId> = old.node_ids().collect();
    for n in new.node_ids() {
        if let Some(o) = matching.old_of(n) {
            new_ids.insert(n, o);
        }
    }
    for n in new.node_ids() {
        if new_ids.contains_key(&n) {
            continue;
        }
        // Prefer keeping the new node's own id when it is fresh for the
        // old database; otherwise allocate — skipping ids already claimed
        // by other kept new nodes (the allocator only knows the old
        // database's ids).
        let id = if scratch.is_fresh(n) && !taken.contains(&n) {
            n
        } else {
            loop {
                let candidate = scratch.alloc_id();
                if !taken.contains(&candidate) {
                    break candidate;
                }
            }
        };
        taken.insert(id);
        new_ids.insert(n, id);
    }

    // Operations.
    let mut ops: Vec<ChangeOp> = Vec::new();
    for n in new.node_ids() {
        let value = new.value(n).expect("own id").clone();
        match matching.old_of(n) {
            None => ops.push(ChangeOp::CreNode(new_ids[&n], value)),
            Some(o) => {
                if old.value(o).expect("matched id") != &value {
                    ops.push(ChangeOp::UpdNode(o, value));
                }
            }
        }
    }
    let old_arcs: HashSet<ArcTriple> = old.arcs().collect();
    let mapped_new: HashSet<ArcTriple> = new
        .arcs()
        .map(|a| ArcTriple {
            parent: new_ids[&a.parent],
            label: a.label,
            child: new_ids[&a.child],
        })
        .collect();
    for &arc in mapped_new.difference(&old_arcs) {
        ops.push(ChangeOp::AddArc(arc));
    }
    for &arc in old_arcs.difference(&mapped_new) {
        ops.push(ChangeOp::RemArc(arc));
    }

    let changes = ChangeSet::from_ops(ops)?;

    // Verify: U(old) must equal new under the id mapping.
    let mut check = old.clone();
    changes.apply_to(&mut check)?;
    if !equal_under_mapping(&check, new, &new_ids) {
        return Err(OemError::NoValidOrdering(Box::new(OemError::Text {
            line: 0,
            col: 0,
            msg: "internal: diff verification failed".to_string(),
        })));
    }
    Ok(DiffResult {
        changes,
        matching,
        new_ids,
    })
}

/// `check` equals `new` with every new id replaced through `new_ids`.
fn equal_under_mapping(
    check: &OemDatabase,
    new: &OemDatabase,
    new_ids: &HashMap<NodeId, NodeId>,
) -> bool {
    if check.node_count() != new.node_count() || check.arc_count() != new.arc_count() {
        return false;
    }
    for n in new.node_ids() {
        let mapped = new_ids[&n];
        if check.value(mapped).ok() != new.value(n).ok() {
            return false;
        }
    }
    new.arcs().all(|a| {
        check.contains_arc(ArcTriple {
            parent: new_ids[&a.parent],
            label: a.label,
            child: new_ids[&a.child],
        })
    })
}

/// Standalone verification helper used by tests and benchmarks: does
/// applying `changes` to `old` produce a database identical to `new`?
/// (Id-preserving sources only — for structural diffs use the mapping in
/// [`DiffResult`].)
pub fn verify_diff(old: &OemDatabase, new: &OemDatabase, changes: &ChangeSet) -> bool {
    let mut db = old.clone();
    if changes.apply_to(&mut db).is_err() {
        return false;
    }
    same_database(&db, new)
}

/// Summary statistics of a change set, used by reports and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// `creNode` count.
    pub creates: usize,
    /// `updNode` count.
    pub updates: usize,
    /// `addArc` count.
    pub adds: usize,
    /// `remArc` count.
    pub removes: usize,
}

/// Compute summary statistics.
pub fn stats(changes: &ChangeSet) -> DiffStats {
    let mut s = DiffStats::default();
    for op in changes.iter() {
        match op {
            ChangeOp::CreNode(..) => s.creates += 1,
            ChangeOp::UpdNode(..) => s.updates += 1,
            ChangeOp::AddArc(..) => s.adds += 1,
            ChangeOp::RemArc(..) => s.removes += 1,
        }
    }
    s
}

/// Convenience for tests: diff expecting id-stable snapshots and verify.
pub fn diff_verified(old: &OemDatabase, new: &OemDatabase) -> DiffResult {
    let r = diff(old, new, MatchMode::ById).expect("diff must succeed");
    assert!(verify_diff(old, new, &r.changes) || {
        // Structural fallback: ids may not be preserved (fresh creNode ids).
        let mut db = old.clone();
        r.changes.apply_to(&mut db).expect("verified in diff");
        oem::isomorphic(&db, new)
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::guide::{guide_figure2, guide_figure3, ids};
    use oem::{isomorphic, GraphBuilder, Value};

    #[test]
    fn identical_snapshots_diff_empty() {
        let r = diff_verified(&guide_figure2(), &guide_figure2());
        assert!(r.is_empty());
    }

    #[test]
    fn figure2_to_figure3_reproduces_example_2_3s_operations() {
        let r = diff_verified(&guide_figure2(), &guide_figure3());
        let s = stats(&r.changes);
        // Example 2.3: 3 creNode, 1 updNode, 3 addArc, 1 remArc —
        // flattened into one set here (the diff sees only endpoints).
        assert_eq!(
            s,
            DiffStats {
                creates: 3,
                updates: 1,
                adds: 3,
                removes: 1
            }
        );
        // New nodes keep their (fresh) snapshot ids.
        assert_eq!(r.new_ids[&ids::N2], ids::N2);
    }

    #[test]
    fn structural_diff_handles_renamed_ids() {
        // Old and new describe the same world with disjoint id spaces,
        // except the new snapshot adds a rating.
        let mut b = GraphBuilder::with_root_id("g", 50);
        let root = b.root();
        let r1 = b.complex_child(root, "restaurant");
        b.atom_child(r1, "name", "Janta");
        b.atom_child(r1, "price", 10);
        let old = b.finish();

        let mut b = GraphBuilder::with_root_id("g", 90);
        let root = b.root();
        let r1 = b.complex_child(root, "restaurant");
        b.atom_child(r1, "name", "Janta");
        b.atom_child(r1, "price", 10);
        b.atom_child(r1, "rating", 5);
        let new = b.finish();

        let r = diff(&old, &new, MatchMode::Structural).unwrap();
        let s = stats(&r.changes);
        assert_eq!(s.creates, 1, "{:?}", r.changes);
        assert_eq!(s.adds, 1);
        assert_eq!(s.removes, 0);
        assert_eq!(s.updates, 0);
        let mut db = old.clone();
        r.changes.apply_to(&mut db).unwrap();
        assert!(isomorphic(&db, &new));
    }

    #[test]
    fn value_update_is_one_updnode() {
        let old = guide_figure2();
        let mut new = guide_figure2();
        new.set_value(ids::N1, Value::Int(20)).unwrap();
        let r = diff_verified(&old, &new);
        assert_eq!(
            r.changes.ops(),
            &[ChangeOp::UpdNode(ids::N1, Value::Int(20))]
        );
    }

    #[test]
    fn arc_removal_leading_to_deletion() {
        let old = guide_figure2();
        let mut new = guide_figure2();
        // Drop Janta's cuisine arc; the atom becomes unreachable in `new`
        // only after GC, so build new properly:
        let cuisine = new
            .children_labeled(ids::N6, oem::Label::new("cuisine"))
            .next()
            .unwrap();
        new.delete_arc(ArcTriple::new(ids::N6, "cuisine", cuisine))
            .unwrap();
        new.collect_garbage();
        let r = diff_verified(&old, &new);
        let s = stats(&r.changes);
        assert_eq!(s.removes, 1);
        assert_eq!(s.creates + s.adds + s.updates, 0);
    }

    #[test]
    fn retyping_complex_to_atomic_diffs_validly() {
        let old = guide_figure2();
        let mut new = guide_figure2();
        // Bangkok's complex address collapses to a plain string.
        let addr = new
            .children_labeled(ids::BANGKOK, oem::Label::new("address"))
            .next()
            .unwrap();
        for (l, c) in new.children(addr).to_vec() {
            new.delete_arc(ArcTriple::new(addr, l, c)).unwrap();
        }
        new.set_value(addr, Value::str("417 Lytton")).unwrap();
        new.collect_garbage();
        let r = diff_verified(&old, &new);
        let s = stats(&r.changes);
        assert_eq!(s.updates, 1);
        assert_eq!(s.removes, 2);
    }

    #[test]
    fn atomic_to_complex_diffs_validly() {
        let old = guide_figure2();
        let mut new = guide_figure2();
        // Janta's plain address becomes a street/city object.
        let addr = new
            .children_labeled(ids::N6, oem::Label::new("address"))
            .next()
            .unwrap();
        new.set_value(addr, Value::Complex).unwrap();
        let street = new.create_node(Value::str("120 Lytton"));
        new.insert_arc(ArcTriple::new(addr, "street", street)).unwrap();
        let r = diff_verified(&old, &new);
        let s = stats(&r.changes);
        assert_eq!(s.updates, 1);
        assert_eq!(s.creates, 1);
        assert_eq!(s.adds, 1);
    }

    #[test]
    fn id_collision_allocates_fresh_ids() {
        // The new snapshot reuses an id that the old database already
        // spends on something else entirely.
        let mut b = GraphBuilder::with_root_id("g", 1);
        let root = b.root();
        b.atom_child(root, "x", 1); // takes id 2
        let old = b.finish();

        let mut b = GraphBuilder::with_root_id("g", 1);
        let root = b.root();
        b.atom_child(root, "x", 1); // id 2 again (matched)
        b.atom_child(root, "y", 99); // id 3 — fresh for old? old never used 3
        let new = b.finish();

        let r = diff(&old, &new, MatchMode::ById).unwrap();
        let mut db = old.clone();
        r.changes.apply_to(&mut db).unwrap();
        assert!(isomorphic(&db, &new));
    }

    #[test]
    fn moved_subtree_diffs_as_arc_rewiring() {
        // The parking object moves from Janta to Hakata-like new parent:
        // id-mode diff should produce only arc ops, no node churn.
        let old = guide_figure2();
        let mut new = guide_figure2();
        new.delete_arc(ArcTriple::new(ids::N6, "parking", ids::N7)).unwrap();
        let addr = new
            .children_labeled(ids::BANGKOK, oem::Label::new("address"))
            .next()
            .unwrap();
        new.insert_arc(ArcTriple::new(addr, "parking", ids::N7)).unwrap();
        let r = diff_verified(&old, &new);
        let s = stats(&r.changes);
        assert_eq!((s.creates, s.updates, s.adds, s.removes), (0, 0, 1, 1));
    }

    #[test]
    fn value_type_changes_are_single_updates() {
        // Janta's "moderate" price becomes the integer 25.
        let old = guide_figure2();
        let mut new = guide_figure2();
        let p = new
            .children_labeled(ids::N6, oem::Label::new("price"))
            .next()
            .unwrap();
        new.set_value(p, Value::Int(25)).unwrap();
        let r = diff_verified(&old, &new);
        assert_eq!(r.changes.ops(), &[ChangeOp::UpdNode(p, Value::Int(25))]);
    }

    #[test]
    fn empty_to_populated_is_all_creates() {
        let old = oem::OemDatabase::new("guide");
        let new = guide_figure2();
        // Different root ids: the diff still works through root pairing.
        let r = diff(&old, &new, MatchMode::ById).unwrap();
        let mut db = old.clone();
        r.changes.apply_to(&mut db).unwrap();
        assert!(isomorphic(&db, &new));
        let s = stats(&r.changes);
        assert_eq!(s.removes, 0);
        assert_eq!(s.updates, 0);
        assert_eq!(s.creates, new.node_count() - 1); // all but the root
    }

    #[test]
    fn structural_diff_of_reordered_siblings_is_cheap() {
        // Same children, different insertion order: the content is
        // identical (arcs are a set), so the diff must be empty.
        let mut b = GraphBuilder::new("g");
        let root = b.root();
        for i in [1i64, 2, 3] {
            b.atom_child(root, "x", i);
        }
        let old = b.finish();
        let mut b = GraphBuilder::with_root_id("g", 10);
        let root = b.root();
        for i in [3i64, 1, 2] {
            b.atom_child(root, "x", i);
        }
        let new = b.finish();
        let r = diff(&old, &new, MatchMode::Structural).unwrap();
        assert!(r.is_empty(), "{:?}", r.changes);
    }

    #[test]
    fn allocated_ids_skip_ids_kept_by_other_new_nodes() {
        // Old: root n1 + atom n2 (next alloc would be 3). New: a matched
        // n2, a new node that deliberately *takes* id 3 (fresh for old,
        // kept), and a new node whose id collides with old's n2 parent
        // structure — its replacement id must not collide with the kept 3.
        let mut b = GraphBuilder::with_root_id("g", 1);
        let r = b.root();
        b.atom_child(r, "a", 1); // id 2
        let old = b.finish();

        let mut b = GraphBuilder::with_root_id("g", 1);
        let r = b.root();
        b.atom_child(r, "a", 1); // id 2, matches
        let keeps_three = b.atom_with_id(3, 33);
        b.arc(r, "b", keeps_three);
        // Unmatched new node whose id (2) is taken in old: needs an
        // allocated id, and the naive allocator would hand out 3.
        let mut clash = GraphBuilder::with_root_id("h", 50);
        let cr = clash.root();
        let c2 = clash.atom_with_id(2, 44);
        clash.arc(cr, "x", c2);
        let clash_db = clash.finish();
        // Merge the clash into `new` manually: create value-44 node under
        // a fresh label so it stays unmatched (different value than old 2).
        let _ = clash_db;
        let c = b.atom(44);
        b.arc(r, "c", c);
        let mut new = b.finish();
        // Force the unmatched node to carry id 2's semantics by id: we
        // need an unmatched node whose own id is NOT fresh for old. The
        // atom `c` got an auto id (4) — rebuild it as id 2 is impossible
        // (2 exists here). Instead simulate via old retiring id 4:
        let mut old = old;
        let tmp = old.create_node(Value::Int(0));
        old.insert_arc(ArcTriple::new(old.root(), "tmp", tmp)).unwrap();
        old.delete_arc(ArcTriple::new(old.root(), "tmp", tmp)).unwrap();
        old.collect_garbage(); // retires id 3? no — tmp got id 3; retired.
        // Now old has retired id 3; `new`'s kept id 3 is NOT fresh for old
        // → needs alloc; old.next is 4 which equals new's auto atom id 4
        // (also unmatched, kept because fresh) → naive alloc collides.
        new.set_name("g");
        let r = diff(&old, &new, MatchMode::ById).unwrap();
        let mut db = old.clone();
        r.changes.apply_to(&mut db).unwrap();
        assert!(isomorphic(&db, &new));
    }

    #[test]
    fn cyclic_structures_diff() {
        let old = guide_figure2();
        let mut new = guide_figure2();
        // Re-point the cycle: nearby-eats moves from Bangkok to Janta.
        new.delete_arc(ArcTriple::new(ids::N7, "nearby-eats", ids::BANGKOK))
            .unwrap();
        new.insert_arc(ArcTriple::new(ids::N7, "nearby-eats", ids::N6))
            .unwrap();
        let r = diff_verified(&old, &new);
        let s = stats(&r.changes);
        assert_eq!(s.adds, 1);
        assert_eq!(s.removes, 1);
    }
}
