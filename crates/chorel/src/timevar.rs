//! QSS time variables `t[0]`, `t[-1]`, … (Section 6).
//!
//! A filter query may refer to the current polling time `t[0]` and past
//! polling times `t[-1]`, `t[-2]`, …. "If the current polling time is tk,
//! we define t[-i] to be tk−i if i < k, and negative infinity otherwise."
//! The Chorel Engine's preprocessor replaces them with literal timestamps
//! before execution.

use lorel::ast::{Expr, Query};
use lorel::{LorelError, Result};
use oem::{Timestamp, Value};

/// Replace every `t[i]` in `query` with a literal timestamp, given the
/// polling times so far in chronological order (`times.last()` is the
/// current polling time `t[0]`). Out-of-range history indexes become
/// negative infinity; positive indexes are rejected.
pub fn resolve_poll_times(query: &Query, times: &[Timestamp]) -> Result<Query> {
    let mut q = query.clone();
    for item in &mut q.select {
        item.expr = subst(&item.expr, times)?;
    }
    if let Some(w) = &q.where_clause {
        q.where_clause = Some(subst(w, times)?);
    }
    Ok(q)
}

fn poll_time(i: i64, times: &[Timestamp]) -> Result<Timestamp> {
    if i > 0 {
        return Err(LorelError::UnresolvedPollTime(i));
    }
    let back = (-i) as usize;
    if back >= times.len() {
        Ok(Timestamp::NEG_INFINITY)
    } else {
        Ok(times[times.len() - 1 - back])
    }
}

fn subst(expr: &Expr, times: &[Timestamp]) -> Result<Expr> {
    Ok(match expr {
        Expr::PollTime(i) => Expr::Literal(Value::Time(poll_time(*i, times)?)),
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(subst(lhs, times)?),
            rhs: Box::new(subst(rhs, times)?),
        },
        Expr::Like { expr, pattern } => Expr::Like {
            expr: Box::new(subst(expr, times)?),
            pattern: Box::new(subst(pattern, times)?),
        },
        Expr::And(a, b) => Expr::And(Box::new(subst(a, times)?), Box::new(subst(b, times)?)),
        Expr::Or(a, b) => Expr::Or(Box::new(subst(a, times)?), Box::new(subst(b, times)?)),
        Expr::Not(e) => Expr::Not(Box::new(subst(e, times)?)),
        Expr::Exists { var, path, pred } => Expr::Exists {
            var: var.clone(),
            path: path.clone(),
            pred: Box::new(subst(pred, times)?),
        },
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorel::parse_query;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn t_minus_one_is_the_previous_poll() {
        let q = parse_query("select g.x<cre at T> where T > t[-1]").unwrap();
        let times = [ts("30Dec96"), ts("31Dec96"), ts("1Jan97")];
        let out = resolve_poll_times(&q, &times).unwrap();
        assert!(out.to_string().contains("T > 31Dec96"), "{out}");
    }

    #[test]
    fn t_zero_is_the_current_poll() {
        let q = parse_query("select g.x<cre at T> where T <= t[0]").unwrap();
        let out = resolve_poll_times(&q, &[ts("30Dec96")]).unwrap();
        assert!(out.to_string().contains("T <= 30Dec96"), "{out}");
    }

    #[test]
    fn out_of_range_history_is_negative_infinity() {
        let q = parse_query("select g.x<cre at T> where T > t[-1]").unwrap();
        let out = resolve_poll_times(&q, &[ts("30Dec96")]).unwrap();
        assert!(out.to_string().contains("T > -inf"), "{out}");
    }

    #[test]
    fn future_indexes_are_rejected() {
        let q = parse_query("select g.x<cre at T> where T > t[1]").unwrap();
        assert!(resolve_poll_times(&q, &[ts("30Dec96")]).is_err());
    }
}
