//! A [`DataSource`] over the Section 5.1 OEM encoding of a DOEM database.
//!
//! Mostly a passthrough to the encoded [`oem::OemDatabase`]; the one
//! refinement is that wildcard steps (`#`, `%`) skip `&`-reserved arcs, so
//! wildcards range over the modeled graph rather than the encoding's
//! bookkeeping structure (`&val`, `&upd`, `&l-history`, …).

use lorel::DataSource;
use oem::{Label, NodeId, OemDatabase, Value};

/// The encoded-database view used by the translation strategy.
#[derive(Clone, Debug)]
pub struct EncodedSource {
    oem: OemDatabase,
}

impl EncodedSource {
    /// Wrap an encoded database (as produced by [`doem::encode_doem`]).
    pub fn new(oem: OemDatabase) -> EncodedSource {
        EncodedSource { oem }
    }

    /// The underlying encoded database.
    pub fn oem(&self) -> &OemDatabase {
        &self.oem
    }
}

impl DataSource for EncodedSource {
    fn name(&self) -> &str {
        self.oem.name()
    }

    fn root(&self) -> NodeId {
        self.oem.root()
    }

    fn value(&self, n: NodeId) -> Option<Value> {
        self.oem.value(n).ok().cloned()
    }

    fn children(&self, n: NodeId) -> Vec<(Label, NodeId)> {
        self.oem.children(n).to_vec()
    }

    fn wildcard_children(&self, n: NodeId) -> Vec<(Label, NodeId)> {
        self.oem
            .children(n)
            .iter()
            .copied()
            .filter(|(l, _)| !l.is_reserved())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doem::{doem_figure4, encode_doem};
    use oem::guide::ids;

    #[test]
    fn wildcards_skip_reserved_arcs() {
        let enc = encode_doem(&doem_figure4());
        let src = EncodedSource::new(enc.oem);
        let all = src.children(ids::N4);
        let wild = src.wildcard_children(ids::N4);
        assert!(all.len() > wild.len());
        assert!(wild.iter().all(|(l, _)| !l.is_reserved()));
        // The three current restaurants remain visible to wildcards.
        assert_eq!(wild.len(), 3);
    }
}
