//! The direct Chorel execution strategy: evaluate annotation expressions
//! natively against the DOEM database (the "extend the kernel" approach
//! the paper sketches at the start of Section 5).
//!
//! [`DirectSource`] adapts a [`doem::DoemDatabase`] to the query engine's
//! [`lorel::DataSource`]:
//!
//! * plain traversal sees the *current snapshot* (so an annotation-free
//!   Chorel query over a DOEM database means the same query over its
//!   current snapshot, as Section 4.2.1 requires);
//! * the annotation functions `creFun`/`updFun`/`addFun`/`remFun` read the
//!   annotation maps — including arcs that are no longer current;
//! * the virtual-annotation hooks answer from the reconstructed history
//!   (Section 4.2.2).

use doem::DoemDatabase;
use lorel::DataSource;
use oem::{ArcTriple, Label, NodeId, Timestamp, Value};

/// A [`DataSource`] view over a DOEM database.
#[derive(Clone, Copy, Debug)]
pub struct DirectSource<'a> {
    d: &'a DoemDatabase,
}

impl<'a> DirectSource<'a> {
    /// Wrap a DOEM database.
    pub fn new(d: &'a DoemDatabase) -> DirectSource<'a> {
        DirectSource { d }
    }

    /// The wrapped database.
    pub fn database(&self) -> &DoemDatabase {
        self.d
    }
}

impl DataSource for DirectSource<'_> {
    fn name(&self) -> &str {
        self.d.name()
    }

    fn root(&self) -> NodeId {
        self.d.root()
    }

    fn value(&self, n: NodeId) -> Option<Value> {
        self.d.graph().value(n).ok().cloned()
    }

    fn children(&self, n: NodeId) -> Vec<(Label, NodeId)> {
        self.d
            .graph()
            .children(n)
            .iter()
            .copied()
            .filter(|&(l, c)| self.d.arc_is_current(ArcTriple::new(n, l, c)))
            .collect()
    }

    fn cre_fun(&self, n: NodeId) -> Vec<Timestamp> {
        self.d.created_at(n).into_iter().collect()
    }

    fn upd_fun(&self, n: NodeId) -> Vec<(Timestamp, Value, Value)> {
        self.d
            .updates_of(n)
            .map(|(t, old)| {
                let new = self
                    .d
                    .new_value_of_update(n, t)
                    .expect("every upd has an implicit new value");
                (t, old.clone(), new)
            })
            .collect()
    }

    fn add_fun(&self, n: NodeId, l: Label) -> Vec<(Timestamp, NodeId)> {
        let mut out = Vec::new();
        for &(label, c) in self.d.graph().children(n) {
            if label != l {
                continue;
            }
            let arc = ArcTriple::new(n, label, c);
            for ann in self.d.arc_annotations(arc) {
                if let doem::ArcAnnotation::Add(t) = ann {
                    out.push((*t, c));
                }
            }
        }
        out
    }

    fn rem_fun(&self, n: NodeId, l: Label) -> Vec<(Timestamp, NodeId)> {
        let mut out = Vec::new();
        for &(label, c) in self.d.graph().children(n) {
            if label != l {
                continue;
            }
            let arc = ArcTriple::new(n, label, c);
            for ann in self.d.arc_annotations(arc) {
                if let doem::ArcAnnotation::Rem(t) = ann {
                    out.push((*t, c));
                }
            }
        }
        out
    }

    fn add_fun_any(&self, n: NodeId) -> Vec<(Label, Timestamp, NodeId)> {
        let mut out = Vec::new();
        for &(label, c) in self.d.graph().children(n) {
            for ann in self.d.arc_annotations(ArcTriple::new(n, label, c)) {
                if let doem::ArcAnnotation::Add(t) = ann {
                    out.push((label, *t, c));
                }
            }
        }
        out
    }

    fn rem_fun_any(&self, n: NodeId) -> Vec<(Label, Timestamp, NodeId)> {
        let mut out = Vec::new();
        for &(label, c) in self.d.graph().children(n) {
            for ann in self.d.arc_annotations(ArcTriple::new(n, label, c)) {
                if let doem::ArcAnnotation::Rem(t) = ann {
                    out.push((label, *t, c));
                }
            }
        }
        out
    }

    fn children_at(&self, n: NodeId, t: Timestamp) -> Vec<(Label, NodeId)> {
        self.d
            .graph()
            .children(n)
            .iter()
            .copied()
            .filter(|&(label, c)| self.d.arc_existed_at(ArcTriple::new(n, label, c), t))
            .collect()
    }

    fn children_labeled_at(&self, n: NodeId, l: Label, t: Timestamp) -> Vec<NodeId> {
        self.d
            .graph()
            .children(n)
            .iter()
            .copied()
            .filter(|&(label, c)| {
                label == l && self.d.arc_existed_at(ArcTriple::new(n, label, c), t)
            })
            .map(|(_, c)| c)
            .collect()
    }

    fn value_at(&self, n: NodeId, t: Timestamp) -> Option<Value> {
        self.d.value_at(n, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doem::doem_figure4;
    use oem::guide::ids;

    #[test]
    fn plain_traversal_sees_the_current_snapshot() {
        let d = doem_figure4();
        let s = DirectSource::new(&d);
        // Janta's removed parking arc is invisible to plain traversal…
        assert!(s.children_labeled(ids::N6, Label::new("parking")).is_empty());
        // …but Bangkok's survives.
        assert_eq!(
            s.children_labeled(ids::BANGKOK, Label::new("parking")),
            vec![ids::N7]
        );
    }

    #[test]
    fn annotation_functions_read_the_history() {
        let d = doem_figure4();
        let s = DirectSource::new(&d);
        let t1: Timestamp = "1Jan97".parse().unwrap();
        let t3: Timestamp = "8Jan97".parse().unwrap();
        assert_eq!(s.cre_fun(ids::N2), vec![t1]);
        assert_eq!(
            s.upd_fun(ids::N1),
            vec![(t1, Value::Int(10), Value::Int(20))]
        );
        assert_eq!(
            s.add_fun(ids::N4, Label::new("restaurant")),
            vec![(t1, ids::N2)]
        );
        // remFun finds the removed arc even though it is not current.
        assert_eq!(
            s.rem_fun(ids::N6, Label::new("parking")),
            vec![(t3, ids::N7)]
        );
    }

    #[test]
    fn virtual_hooks_answer_historically() {
        let d = doem_figure4();
        let s = DirectSource::new(&d);
        let before: Timestamp = "31Dec96".parse().unwrap();
        assert_eq!(s.value_at(ids::N1, before), Some(Value::Int(10)));
        assert_eq!(
            s.children_labeled_at(ids::N6, Label::new("parking"), before),
            vec![ids::N7]
        );
        assert!(s
            .children_labeled_at(ids::N6, Label::new("parking"), "9Jan97".parse().unwrap())
            .is_empty());
    }
}
