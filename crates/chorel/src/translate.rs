//! The translation-based Chorel execution strategy (Section 5.2).
//!
//! A Chorel query over a (conceptual) DOEM database becomes a plain Lorel
//! query over the database's Section 5.1 OEM encoding:
//!
//! * `(T, OV, NV) in updFun(P)` → `P.&upd U, U.&time T, U.&ov OV, U.&nv NV`;
//! * `(T, C) in addFun(P, l)` → `P.&l-history H, H.&add T, H.&target C`
//!   (and symmetrically for `remFun`);
//! * `T in creFun(P)` → `P.&cre T`;
//! * every *value access* of an object variable `X` becomes `X.&val`
//!   (complex encoding objects carry a `&val` self-arc, so the rewrite is
//!   safe without knowing whether `X` is atomic).
//!
//! The translator works on the planned form: it runs the same Section 4.2.1
//! normalization the engine uses and then reconstructs a pure-Lorel query,
//! expanding annotated steps into `&`-encoded chains — `from` chains for
//! outer variables, nested `exists` chains for where-variables (compare
//! the paper's Example 5.1).
//!
//! Virtual annotations (`<at τ>`, Section 4.2.2) have no pure-Lorel
//! equivalent over the encoding and are rejected here; the direct engine
//! supports them.

use lorel::ast::{
    ArcAnnotExpr, Expr, FromItem, LabelPattern, NodeAnnotExpr, PathExpr, PathStep, Query,
    SelectItem,
};
use lorel::{LorelError, Operand, Plan, Pred, Result, VarSource};

/// Translate a Chorel query into pure Lorel over the Section 5.1 encoding
/// of a database named `db_name`.
pub fn translate(query: &Query, db_name: &str) -> Result<Query> {
    let plan = lorel::plan(query, db_name)?;
    Translator {
        plan: &plan,
        db_name,
    }
    .run()
}

struct Translator<'a> {
    plan: &'a Plan,
    db_name: &'a str,
}

/// The translated range chain for one planned step variable.
struct Expansion {
    /// `(range path, bound variable)` pairs, in dependency order.
    links: Vec<(PathExpr, String)>,
}

impl<'a> Translator<'a> {
    fn run(self) -> Result<Query> {
        // Outer variables become from-items.
        let mut from = Vec::new();
        for &slot in &self.plan.outer_order {
            if matches!(
                self.plan.vars[slot].source,
                VarSource::Companion { .. } | VarSource::Root
            ) {
                continue;
            }
            for (path, var) in self.expand_step(slot)?.links {
                from.push(FromItem {
                    path,
                    var: Some(var),
                });
            }
        }

        // Select columns.
        let select = self
            .plan
            .select
            .iter()
            .map(|col| {
                let expr = match &col.value {
                    Operand::Slot(s) => Expr::Path(PathExpr {
                        head: self.var_name(*s),
                        steps: vec![],
                    }),
                    Operand::Const(v) => Expr::Literal(v.clone()),
                };
                SelectItem {
                    expr,
                    label: Some(col.label.clone()),
                }
            })
            .collect();

        let where_clause = match &self.plan.where_pred {
            None => None,
            Some(p) => Some(self.translate_pred(p)?),
        };

        Ok(Query {
            select,
            from,
            where_clause,
        })
    }

    fn var_name(&self, slot: usize) -> String {
        self.plan.vars[slot].name.clone()
    }

    fn base_name(&self, base: usize) -> String {
        match &self.plan.vars[base].source {
            VarSource::Root => self.db_name.to_string(),
            _ => self.var_name(base),
        }
    }

    /// Companion variable name for a role, or a synthesized one.
    fn companion_name(&self, owner: usize, role: lorel::CompanionRole) -> String {
        for (i, v) in self.plan.vars.iter().enumerate() {
            if let VarSource::Companion { of, role: r } = &v.source {
                if *of == owner && *r == role {
                    return self.var_name(i);
                }
            }
        }
        let tag = match role {
            lorel::CompanionRole::ArcTime => "at",
            lorel::CompanionRole::NodeTime => "nt",
            lorel::CompanionRole::OldValue => "ov",
            lorel::CompanionRole::NewValue => "nv",
        };
        format!("_{tag}{owner}")
    }

    /// Expand one planned step variable into its encoded range chain.
    fn expand_step(&self, slot: usize) -> Result<Expansion> {
        let VarSource::Step { base, step } = &self.plan.vars[slot].source else {
            return Err(LorelError::BadSelectItem(format!(
                "variable {} is not a step",
                self.var_name(slot)
            )));
        };
        let base_name = self.base_name(*base);
        let v = self.var_name(slot);
        let mut links: Vec<(PathExpr, String)> = Vec::new();

        let one = |head: &str, step_label: &str| PathExpr {
            head: head.to_string(),
            steps: vec![PathStep::plain(step_label)],
        };

        match &step.arc_annot {
            None => {
                // Plain arc traversal over the encoding's direct labels
                // (only current arcs are encoded directly).
                let path = PathExpr {
                    head: base_name,
                    steps: vec![PathStep {
                        arc_annot: None,
                        label: step.label.clone(),
                        star: step.star,
                        node_annot: None,
                    }],
                };
                links.push((path, v.clone()));
            }
            Some(ArcAnnotExpr::Add { .. }) | Some(ArcAnnotExpr::Rem { .. }) => {
                // An exact label ranges over its one `&l-history` object;
                // a label alternation ranges over the alternation of the
                // history labels. Wildcards have no bounded history set:
                // they stay direct-engine only.
                let history_pattern = match &step.label {
                    LabelPattern::Label(l) => LabelPattern::Label(format!("&{l}-history")),
                    LabelPattern::Alternation(ls) => LabelPattern::Alternation(
                        ls.iter().map(|l| format!("&{l}-history")).collect(),
                    ),
                    _ => {
                        return Err(LorelError::BadSelectItem(
                            "annotated wildcards are unsupported in the translation \
                             strategy; use the direct engine"
                                .to_string(),
                        ))
                    }
                };
                let h = format!("_h{slot}");
                let t = self.companion_name(slot, lorel::CompanionRole::ArcTime);
                let ann_label = if matches!(step.arc_annot, Some(ArcAnnotExpr::Add { .. })) {
                    "&add"
                } else {
                    "&rem"
                };
                links.push((
                    PathExpr {
                        head: base_name,
                        steps: vec![PathStep {
                            arc_annot: None,
                            label: history_pattern,
                            star: false,
                            node_annot: None,
                        }],
                    },
                    h.clone(),
                ));
                links.push((one(&h, ann_label), t));
                links.push((one(&h, "&target"), v.clone()));
            }
            Some(ArcAnnotExpr::AtTime(_)) => {
                return Err(LorelError::BadSelectItem(
                    "virtual annotations have no Lorel translation; use the direct engine"
                        .to_string(),
                ))
            }
        }

        match &step.node_annot {
            None => {}
            Some(NodeAnnotExpr::Cre { .. }) => {
                let t = self.companion_name(slot, lorel::CompanionRole::NodeTime);
                links.push((one(&v, "&cre"), t));
            }
            Some(NodeAnnotExpr::Upd { at, from, to }) => {
                let u = format!("_u{slot}");
                links.push((one(&v, "&upd"), u.clone()));
                if at.is_some() {
                    links.push((
                        one(&u, "&time"),
                        self.companion_name(slot, lorel::CompanionRole::NodeTime),
                    ));
                }
                if from.is_some() {
                    links.push((
                        one(&u, "&ov"),
                        self.companion_name(slot, lorel::CompanionRole::OldValue),
                    ));
                }
                if to.is_some() {
                    links.push((
                        one(&u, "&nv"),
                        self.companion_name(slot, lorel::CompanionRole::NewValue),
                    ));
                }
            }
            Some(NodeAnnotExpr::AtTime(_)) => {
                return Err(LorelError::BadSelectItem(
                    "virtual annotations have no Lorel translation; use the direct engine"
                        .to_string(),
                ))
            }
        }

        Ok(Expansion { links })
    }

    /// A value access of a slot: object variables gain `.&val` (the paper's
    /// final rewriting step); companion variables already denote atoms.
    fn value_access(&self, slot: usize) -> Expr {
        match &self.plan.vars[slot].source {
            VarSource::Companion { .. } => Expr::Path(PathExpr {
                head: self.var_name(slot),
                steps: vec![],
            }),
            _ => Expr::Path(PathExpr {
                head: self.var_name(slot),
                steps: vec![PathStep::plain("&val")],
            }),
        }
    }

    fn translate_operand(&self, op: &Operand) -> Expr {
        match op {
            Operand::Const(v) => Expr::Literal(v.clone()),
            Operand::Slot(s) => self.value_access(*s),
        }
    }

    fn translate_pred(&self, pred: &Pred) -> Result<Expr> {
        Ok(match pred {
            Pred::Const(b) => Expr::Literal(oem::Value::Bool(*b)),
            Pred::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(self.translate_operand(lhs)),
                rhs: Box::new(self.translate_operand(rhs)),
            },
            Pred::Like { expr, pattern } => Expr::Like {
                expr: Box::new(self.translate_operand(expr)),
                pattern: Box::new(self.translate_operand(pattern)),
            },
            Pred::And(a, b) => Expr::And(
                Box::new(self.translate_pred(a)?),
                Box::new(self.translate_pred(b)?),
            ),
            Pred::Or(a, b) => Expr::Or(
                Box::new(self.translate_pred(a)?),
                Box::new(self.translate_pred(b)?),
            ),
            Pred::Not(e) => Expr::Not(Box::new(self.translate_pred(e)?)),
            Pred::ExistsSlot(s) => Expr::Path(PathExpr {
                head: self.var_name(*s),
                steps: vec![],
            }),
            Pred::Exists { slots, pred } => {
                // Expand each quantified step variable into nested exists
                // over its encoded chain, with bare-path existence
                // conjuncts so that required annotation atoms must bind.
                let mut body = self.translate_pred(pred)?;
                // Conjoin existence of every expansion variable.
                let mut chains: Vec<(PathExpr, String)> = Vec::new();
                for &slot in slots {
                    if matches!(
                        self.plan.vars[slot].source,
                        VarSource::Companion { .. } | VarSource::Root
                    ) {
                        continue;
                    }
                    chains.extend(self.expand_step(slot)?.links);
                }
                for (_, var) in &chains {
                    body = Expr::And(
                        Box::new(Expr::Path(PathExpr {
                            head: var.clone(),
                            steps: vec![],
                        })),
                        Box::new(body),
                    );
                }
                // Innermost-out nesting.
                for (path, var) in chains.into_iter().rev() {
                    body = Expr::Exists {
                        var,
                        path,
                        pred: Box::new(body),
                    };
                }
                body
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorel::parse_query;

    fn tr(src: &str) -> String {
        translate(&parse_query(src).unwrap(), "guide")
            .unwrap()
            .to_string()
    }

    #[test]
    fn example_5_1_shape() {
        // Example 4.5 → the paper's Example 5.1 translation.
        let out = tr(
            "select N from guide.restaurant R, R.name N \
             where R.<add at T>price = \"moderate\" and T >= 1Jan97",
        );
        assert!(out.contains("&price-history"), "{out}");
        assert!(out.contains("&add"), "{out}");
        assert!(out.contains("&target"), "{out}");
        assert!(out.contains(".&val = \"moderate\""), "{out}");
        assert!(out.contains("exists"), "{out}");
        // The translated text is itself parseable Lorel.
        parse_query(&out).unwrap();
    }

    #[test]
    fn upd_translation_exposes_time_ov_nv() {
        let out = tr(
            "select N, T, NV \
             from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N \
             where T >= 1Jan97 and NV > 15",
        );
        assert!(out.contains("&upd"), "{out}");
        assert!(out.contains("&time"), "{out}");
        assert!(out.contains("&nv"), "{out}");
        assert!(!out.contains("&ov"), "unrequested old value: {out}");
        parse_query(&out).unwrap();
    }

    #[test]
    fn cre_translation() {
        let out = tr("select guide.restaurant<cre at T> where T < 4Jan97");
        assert!(out.contains("&cre"), "{out}");
        parse_query(&out).unwrap();
    }

    #[test]
    fn plain_queries_only_gain_val_accesses() {
        let out = tr("select guide.restaurant where guide.restaurant.price < 20.5");
        assert!(out.contains(".&val < 20.5"), "{out}");
        assert!(!out.contains("history"), "{out}");
        parse_query(&out).unwrap();
    }

    #[test]
    fn virtual_annotations_are_rejected() {
        let q = parse_query("select guide.restaurant.price<at 2Jan97>").unwrap();
        assert!(translate(&q, "guide").is_err());
    }
}
