//! Incremental (delta) evaluation of Chorel queries over DOEM.
//!
//! This is the Chorel face of `lorel`'s semi-naive machinery
//! ([`lorel::delta`]): given a DOEM database that a [`ChangeSet`] was just
//! applied to, maintain a prior result instead of re-evaluating the whole
//! query. Two entry points, for the two consumers:
//!
//! * [`maintain_rows`] — union the prior rows with the delta variants
//!   (serve's generation-keyed result cache maintains entries through the
//!   commit pipeline's publish stage with this);
//! * [`filter_anchor`] + [`anchored_eval`] — the standing-subscription
//!   fast path: a filter whose `where` clause carries a top-level
//!   `T ≥ τ` conjunct on an annotation timestamp is evaluated *exactly*
//!   by restricting that one constraint to annotations since `τ`, no
//!   monotonicity requirement and no prior rows needed.
//!
//! Both paths are [`Strategy::Direct`](crate::Strategy::Direct)-only: restriction sets are phrased
//! over the DOEM graph and do not map onto the Section 5.1 encoding; a
//! translated evaluator falls back to full evaluation. Correctness of the
//! union identity is property-tested against full re-evaluation through
//! both strategies (`tests/properties.rs::incremental_agrees_with_full`).
//!
//! # Example
//!
//! ```
//! use chorel::delta::maintain_rows;
//! use chorel::{run_chorel, Strategy};
//! use doem::{apply_set, doem_figure4};
//! use oem::{ChangeOp, ChangeSet, Value};
//!
//! let mut d = doem_figure4();
//! let query = lorel::parse_query("select guide.<add>restaurant").unwrap();
//! let prior = run_chorel(&d, "select guide.<add>restaurant", Strategy::Direct).unwrap();
//!
//! // A new restaurant arrives as a change set …
//! let mut replica = d.graph().clone();
//! let (r, n) = (replica.alloc_id(), replica.alloc_id());
//! let set = ChangeSet::from_ops([
//!     ChangeOp::CreNode(r, Value::Complex),
//!     ChangeOp::CreNode(n, Value::str("Thai Spice")),
//!     ChangeOp::add_arc(replica.root(), "restaurant", r),
//!     ChangeOp::add_arc(r, "name", n),
//! ])
//! .unwrap();
//! let at = "9Jan97".parse().unwrap();
//! apply_set(&mut d, &mut replica, &set, at).unwrap();
//!
//! // … and the prior rows are maintained in O(delta), not O(db).
//! let rows = maintain_rows(&d, &query, &set, at, &prior.rows).unwrap().unwrap();
//! assert_eq!(rows.rows.len(), 2); // Hakata + Thai Spice
//! ```

use crate::engines::canonical_row_strings;
use crate::DirectSource;
use doem::DoemDatabase;
use lorel::ast::Query;
use lorel::{
    anchored_execute, delta_maintain, find_anchor, package, plan, Anchor, DeltaSpec, QueryResult,
    Result, Row, Rows,
};
use oem::{ChangeSet, Timestamp};

/// Maintain `prior` through `change` (applied to `d` at `at`): the prior
/// rows unioned with the semi-naive delta variants, deduplicated. Returns
/// `None` when the query × delta is outside the monotonic fragment and
/// the caller must re-evaluate fully (see [`lorel::DeltaUnsupported`]).
pub fn maintain_rows(
    d: &DoemDatabase,
    query: &Query,
    change: &ChangeSet,
    at: Timestamp,
    prior: &[Row],
) -> Result<Option<Rows>> {
    let p = plan(query, d.name())?;
    let spec = DeltaSpec::new(change, at);
    let prior = Rows {
        rows: prior.to_vec(),
    };
    delta_maintain(&DirectSource::new(d), &p, &spec, &prior)
}

/// Package raw engine rows into a [`QueryResult`] against `d`, the same
/// way full evaluation would (the result database deep-copies the bound
/// objects, preserving ids).
pub fn package_rows(d: &DoemDatabase, rows: &Rows) -> QueryResult {
    let src = DirectSource::new(d);
    package(&src, rows, &format!("{}-result", d.name()))
}

/// Canonical wire rows for raw engine rows: package then canonicalize —
/// what a cache must store to answer queries byte-identically to a fresh
/// evaluation.
pub fn canonical_strings_for_rows(d: &DoemDatabase, rows: &Rows) -> Vec<String> {
    canonical_row_strings(d, &package_rows(d, rows))
}

/// Find the timestamp anchor of a (resolved) filter query, if its `where`
/// clause carries one as a top-level conjunct — see [`lorel::find_anchor`]
/// for the exactness argument.
pub fn filter_anchor(query: &Query, db_name: &str) -> Result<Option<Anchor>> {
    Ok(find_anchor(&plan(query, db_name)?))
}

/// Evaluate `query` with the anchored constraint restricted to
/// annotations since the anchor — exact, and proportional to the
/// annotations in the anchored window rather than the database.
pub fn anchored_eval(d: &DoemDatabase, query: &Query, anchor: &Anchor) -> Result<QueryResult> {
    let p = plan(query, d.name())?;
    let rows = anchored_execute(&DirectSource::new(d), &p, anchor)?;
    Ok(package_rows(d, &rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_chorel_parsed, Strategy};
    use doem::{apply_set, doem_figure4};
    use oem::{ChangeOp, Value};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn maintained_rows_match_full_reevaluation() {
        let mut d = doem_figure4();
        let query = lorel::parse_query(
            "select N, T from guide.<add at T>restaurant R, R.name N",
        )
        .unwrap();
        let prior = run_chorel_parsed(&d, &query, Strategy::Direct).unwrap();

        let mut replica = d.graph().clone();
        let (r, n) = (replica.alloc_id(), replica.alloc_id());
        let set = ChangeSet::from_ops([
            ChangeOp::CreNode(r, Value::Complex),
            ChangeOp::CreNode(n, Value::str("Thai Spice")),
            ChangeOp::add_arc(replica.root(), "restaurant", r),
            ChangeOp::add_arc(r, "name", n),
        ])
        .unwrap();
        apply_set(&mut d, &mut replica, &set, ts("9Jan97")).unwrap();

        let maintained = maintain_rows(&d, &query, &set, ts("9Jan97"), &prior.rows)
            .unwrap()
            .expect("monotonic fragment");
        let full = run_chorel_parsed(&d, &query, Strategy::Direct).unwrap();
        assert_eq!(
            canonical_strings_for_rows(&d, &maintained),
            canonical_row_strings(&d, &full),
        );
    }

    #[test]
    fn anchored_eval_is_exact_on_figure4() {
        let d = doem_figure4();
        let query = lorel::parse_query(
            "select R, T from guide.<add at T>restaurant R where T >= 1Jan97",
        )
        .unwrap();
        let anchor = filter_anchor(&query, d.name()).unwrap().expect("anchor");
        assert_eq!(anchor.at, ts("1Jan97"));
        assert!(!anchor.strict);
        let fast = anchored_eval(&d, &query, &anchor).unwrap();
        let full = run_chorel_parsed(&d, &query, Strategy::Direct).unwrap();
        assert_eq!(
            canonical_row_strings(&d, &fast),
            canonical_row_strings(&d, &full),
        );
    }
}
