//! Running Chorel queries: the two execution strategies of Section 5, and
//! cross-checking utilities used heavily by the test suites.

use crate::{translate, DirectSource, EncodedSource};
use doem::{encode_doem, DoemDatabase};
use lorel::ast::Query;
use lorel::{run_parsed, Binding, QueryResult, Result};
use oem::{NodeId, Value};

/// Which execution strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluate annotation expressions natively over the DOEM database.
    Direct,
    /// Encode the database in OEM (Section 5.1), translate the query to
    /// pure Lorel (Section 5.2), and run the plain Lorel engine.
    Translated,
}

/// Parse and run a Chorel query against a DOEM database with the chosen
/// strategy.
pub fn run_chorel(d: &DoemDatabase, text: &str, strategy: Strategy) -> Result<QueryResult> {
    let query = lorel::parse_query(text)?;
    run_chorel_parsed(d, &query, strategy)
}

/// Run an already parsed Chorel query.
pub fn run_chorel_parsed(
    d: &DoemDatabase,
    query: &Query,
    strategy: Strategy,
) -> Result<QueryResult> {
    match strategy {
        Strategy::Direct => run_parsed(&DirectSource::new(d), query),
        Strategy::Translated => {
            let lorel_query = translate(query, d.name())?;
            let encoded = EncodedSource::new(encode_doem(d).oem);
            run_parsed(&encoded, &lorel_query)
        }
    }
}

/// A strategy-independent canonical form of a binding, for comparing the
/// two engines' results:
///
/// * nodes of the DOEM graph compare by id (the encoding preserves ids);
/// * encoding-auxiliary atoms (timestamps, old/new values) and direct
///   value bindings compare by value.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CanonBinding {
    /// A graph object.
    Id(NodeId),
    /// A computed value.
    V(Value),
    /// Missing.
    None,
}

/// Canonicalize one result for comparison across strategies. Rows are
/// sorted and deduplicated: under the encoding, two annotations with equal
/// payloads are *distinct atoms* (so the translated engine's set semantics
/// keeps both), while the direct engine binds equal values (one row) — the
/// canonical form erases exactly that representation difference.
pub fn canonical_rows(
    d: &DoemDatabase,
    result: &QueryResult,
) -> Vec<Vec<(String, CanonBinding)>> {
    let mut rows: Vec<Vec<(String, CanonBinding)>> = result
        .rows
        .iter()
        .map(|row| {
            row.cols
                .iter()
                .map(|(label, b)| {
                    let cb = match b {
                        Binding::Missing => CanonBinding::None,
                        Binding::Val(v) => CanonBinding::V(v.clone()),
                        Binding::Node(n) => {
                            if d.graph().contains_node(*n) {
                                CanonBinding::Id(*n)
                            } else {
                                // Encoding-auxiliary atom: compare by value.
                                match result.db.value(*n) {
                                    Ok(v) => CanonBinding::V(v.clone()),
                                    Err(_) => CanonBinding::None,
                                }
                            }
                        }
                    };
                    (label.clone(), cb)
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows.dedup();
    rows
}

/// Render canonical rows as stable text lines, one row per line, columns
/// tab-separated as `label=binding`. This is the wire format of the serve
/// crate's `ROW` responses, shared here so clients and tests can compare
/// server output against a locally evaluated query byte for byte.
pub fn canonical_row_strings(d: &DoemDatabase, result: &QueryResult) -> Vec<String> {
    canonical_rows(d, result)
        .iter()
        .map(|row| {
            row.iter()
                .map(|(label, b)| match b {
                    CanonBinding::Id(n) => format!("{label}=&{n}"),
                    CanonBinding::V(v) => format!("{label}={v}"),
                    CanonBinding::None => format!("{label}=⊥"),
                })
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect()
}

/// Run both strategies and assert they agree; returns the direct result.
///
/// This is the workhorse of the equivalence test suite (and of the X1
/// benchmark's correctness precondition).
pub fn run_both_checked(d: &DoemDatabase, text: &str) -> Result<QueryResult> {
    let direct = run_chorel(d, text, Strategy::Direct)?;
    let translated = run_chorel(d, text, Strategy::Translated)?;
    let a = canonical_rows(d, &direct);
    let b = canonical_rows(d, &translated);
    if a != b {
        return Err(lorel::LorelError::LimitExceeded(format!(
            "strategy mismatch for {text:?}:\n direct:     {a:?}\n translated: {b:?}"
        )));
    }
    Ok(direct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doem::doem_figure4;
    use oem::guide::ids;
    use oem::Timestamp;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn example_4_2_new_restaurants() {
        // `select guide.<add>restaurant` returns Hakata only — via both
        // strategies.
        let d = doem_figure4();
        let r = run_both_checked(&d, "select guide.<add>restaurant").unwrap();
        assert_eq!(r.nodes_in_column(0), vec![ids::N2]);
    }

    #[test]
    fn example_4_3_added_before_jan_4() {
        let d = doem_figure4();
        let r = run_both_checked(
            &d,
            "select guide.<add at T>restaurant where T < 4Jan97",
        )
        .unwrap();
        assert_eq!(r.nodes_in_column(0), vec![ids::N2]);
        // And nothing qualifies strictly before 1Jan97.
        let r = run_both_checked(
            &d,
            "select guide.<add at T>restaurant where T < 1Jan97",
        )
        .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn example_4_4_price_updates() {
        let d = doem_figure4();
        let r = run_both_checked(
            &d,
            "select N, T, NV \
             from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N \
             where T >= 1Jan97 and NV > 15",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        let row = &r.rows[0];
        assert_eq!(row.cols[0].0, "name");
        assert_eq!(row.cols[1].0, "update-time");
        assert_eq!(row.cols[2].0, "new-value");
        // The single answer: Bangkok Cuisine, 1Jan97, 20.
        assert_eq!(row.cols[0].1, Binding::Node(oem::NodeId::from_raw(9)));
        assert_eq!(row.cols[1].1, Binding::Val(Value::Time(ts("1Jan97"))));
        assert_eq!(row.cols[2].1, Binding::Val(Value::Int(20)));
    }

    #[test]
    fn example_4_5_no_moderate_price_was_added() {
        let d = doem_figure4();
        let r = run_both_checked(
            &d,
            "select N from guide.restaurant R, R.name N \
             where R.<add at T>price = \"moderate\" and T >= 1Jan97",
        )
        .unwrap();
        // Janta's "moderate" price was in the original snapshot, not
        // added during the history: empty result.
        assert!(r.is_empty());
    }

    #[test]
    fn example_4_5_positive_variant() {
        // The comment "need info" WAS added (to Hakata, 5Jan97).
        let d = doem_figure4();
        let r = run_both_checked(
            &d,
            "select N from guide.restaurant R, R.name N \
             where R.<add at T>comment = \"need info\" and T >= 1Jan97",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.nodes_in_column(0), vec![ids::N3]); // "Hakata"
    }

    #[test]
    fn removed_arcs_are_queryable() {
        let d = doem_figure4();
        let r = run_both_checked(
            &d,
            "select R.name from guide.restaurant R \
             where R.<rem at T>parking and T >= 8Jan97",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        let db = d.graph();
        let Binding::Node(n) = r.rows[0].cols[0].1 else {
            panic!()
        };
        assert_eq!(db.value(n).unwrap(), &Value::str("Janta"));
    }

    #[test]
    fn plain_queries_see_the_current_snapshot_in_both_engines() {
        let d = doem_figure4();
        let r = run_both_checked(
            &d,
            "select guide.restaurant where guide.restaurant.price < 20.5",
        )
        .unwrap();
        assert_eq!(r.nodes_in_column(0), vec![ids::BANGKOK]);
        // Janta's parking is removed: current snapshot has no such path.
        let r = run_both_checked(
            &d,
            "select R from guide.restaurant R where R.parking.name = \"Lytton lot 2\"",
        )
        .unwrap();
        assert_eq!(r.nodes_in_column(0), vec![ids::BANGKOK]);
    }

    #[test]
    fn wildcards_agree_between_engines() {
        let d = doem_figure4();
        let r = run_both_checked(
            &d,
            "select guide.restaurant where guide.restaurant.# like \"%Lytton%\"",
        )
        .unwrap();
        // Bangkok (address.street "Lytton" + parking name) and Janta
        // (address "120 Lytton"); Janta's parking arc is removed but its
        // address still matches.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn cre_time_selection_and_filtering() {
        let d = doem_figure4();
        let r = run_both_checked(
            &d,
            "select R, T from guide.restaurant R, R.comment<cre at T>",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0].cols[1].1, Binding::Val(Value::Time(ts("5Jan97"))));
    }

    #[test]
    fn upd_from_old_value() {
        let d = doem_figure4();
        let r = run_both_checked(
            &d,
            "select OV from guide.restaurant.price<upd from OV>",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0].cols[0].0, "old-value");
        assert_eq!(r.rows[0].cols[0].1, Binding::Val(Value::Int(10)));
    }

    #[test]
    fn annotated_percent_wildcard_direct_engine() {
        // Section 7 extension: annotation expressions on `%`.
        let d = doem_figure4();
        // Every arc added anywhere below a restaurant object:
        let r = run_chorel(
            &d,
            "select X, T from guide.restaurant.<add at T>% X",
            Strategy::Direct,
        )
        .unwrap();
        // Hakata's name (1Jan97) and comment (5Jan97) arcs.
        assert_eq!(r.len(), 2);
        // Every arc removed anywhere one step below the root's children:
        let r = run_chorel(
            &d,
            "select X from guide.restaurant.<rem>% X",
            Strategy::Direct,
        )
        .unwrap();
        assert_eq!(r.nodes_in_column(0), vec![ids::N7]);
        // Node annotations on `%` run through BOTH engines.
        let r = run_both_checked(&d, "select guide.restaurant.%<cre at T> where T > 2Jan97")
            .unwrap();
        assert_eq!(r.nodes_in_column(0), vec![ids::N5]); // "need info"
        // Virtual `<at τ>%`: children as of a historical time.
        let r = run_chorel(
            &d,
            "select R from guide.restaurant R where R.<at 5Jan97>parking",
            Strategy::Direct,
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        // Arc annotations on `%` are direct-engine only.
        assert!(run_chorel(
            &d,
            "select guide.restaurant.<add>%",
            Strategy::Translated
        )
        .is_err());
    }

    #[test]
    fn regex_paths_agree_between_engines() {
        let d = doem_figure4();
        // Alternation over current arcs.
        let r = run_both_checked(&d, "select guide.restaurant.(price|cuisine)").unwrap();
        assert_eq!(r.len(), 3);
        // Alternation with an arc annotation: either kind of added arc.
        let r = run_both_checked(
            &d,
            "select X, T from guide.restaurant.<add at T>(name|comment) X",
        )
        .unwrap();
        assert_eq!(r.len(), 2); // Hakata's name (1Jan97) and comment (5Jan97)
        // Kleene closure through the parking cycle.
        let r = run_both_checked(
            &d,
            "select R.(parking|nearby-eats)*.name from guide.restaurant R              where R.name = \"Bangkok Cuisine\"",
        )
        .unwrap();
        assert_eq!(r.len(), 2); // Bangkok's own name + the lot's name
    }

    #[test]
    fn virtual_annotations_work_directly_and_fail_translated() {
        let d = doem_figure4();
        // Historical value of Bangkok's price before the update.
        let r = run_chorel(
            &d,
            "select guide.restaurant.price<at 31Dec96>",
            Strategy::Direct,
        )
        .unwrap();
        // Bangkok's price was 10 then; Janta's was already "moderate".
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0].cols[0].1, Binding::Val(Value::Int(10)));
        assert_eq!(r.rows[1].cols[0].1, Binding::Val(Value::str("moderate")));
        assert!(run_chorel(
            &d,
            "select guide.restaurant.price<at 31Dec96>",
            Strategy::Translated
        )
        .is_err());

        // Historical edge traversal: Janta still had parking on 5Jan97.
        let r = run_chorel(
            &d,
            "select R from guide.restaurant R where R.<at 5Jan97>parking",
            Strategy::Direct,
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        let r = run_chorel(
            &d,
            "select R from guide.restaurant R where R.<at 9Jan97>parking",
            Strategy::Direct,
        )
        .unwrap();
        assert_eq!(r.nodes_in_column(0), vec![ids::BANGKOK]);
    }
}
