//! # Chorel — querying changes in semistructured data
//!
//! The Chorel-specific machinery of *"Representing and Querying Changes in
//! Semistructured Data"* (ICDE 1998), built on the `lorel` engine and the
//! `doem` representation:
//!
//! * [`DirectSource`] — evaluate annotation expressions natively over a
//!   DOEM database (the "extend the kernel" strategy);
//! * [`translate`] + [`EncodedSource`] — the paper's implemented strategy
//!   (Section 5): encode DOEM in OEM, rewrite the Chorel query through
//!   `creFun`/`updFun`/`addFun`/`remFun` into pure Lorel, run unchanged
//!   Lorel;
//! * [`run_chorel`] / [`run_both_checked`] — one-call execution with
//!   either strategy, plus the cross-checking harness that asserts both
//!   strategies agree (property-tested in the integration suite);
//! * [`resolve_poll_times`] — the QSS preprocessor for `t[0]`, `t[-1]`, ….
//!
//! ```
//! use chorel::{run_chorel, Strategy};
//! use doem::doem_figure4;
//!
//! // Example 4.2 of the paper: newly added restaurant entries only.
//! let d = doem_figure4();
//! let r = run_chorel(&d, "select guide.<add>restaurant", Strategy::Direct).unwrap();
//! assert_eq!(r.len(), 1); // Hakata
//! ```

#![warn(missing_docs)]

pub mod delta;
mod direct;
mod encoded;
mod engines;
mod timevar;
mod translate;

pub use direct::DirectSource;
pub use encoded::EncodedSource;
pub use engines::{
    canonical_row_strings, canonical_rows, run_chorel, run_chorel_parsed, run_both_checked,
    CanonBinding, Strategy,
};
pub use timevar::resolve_poll_times;
pub use translate::translate;
