//! Notifications delivered to Query Subscription Clients.

use lorel::QueryResult;
use oem::Timestamp;

/// A non-empty filter-query result pushed to subscribers.
#[derive(Clone, Debug)]
pub struct Notification {
    /// The subscription that fired.
    pub subscription: String,
    /// The polling time that produced it.
    pub at: Timestamp,
    /// The filter query's result (rows + packaged OEM database).
    pub result: QueryResult,
}

impl Notification {
    /// Number of result rows.
    pub fn rows(&self) -> usize {
        self.result.len()
    }
}

/// One record per poll, whether or not it produced a notification —
/// the experiment harness reads these to reproduce the paper's
/// Example 6.1 trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PollRecord {
    /// The subscription polled.
    pub subscription: String,
    /// When.
    pub at: Timestamp,
    /// Size of the inferred change set.
    pub changes: usize,
    /// Rows the filter query returned.
    pub filter_rows: usize,
}
