//! # QSS — the Query Subscription Service
//!
//! The application of Section 6 of *"Representing and Querying Changes in
//! Semistructured Data"* (ICDE 1998): users *subscribe* to changes in
//! autonomous semistructured sources. A subscription is `⟨f, Ql, Qc⟩` — a
//! frequency specification, a polling Lorel query, and a Chorel filter
//! query. At each polling time the server queries the source, infers the
//! change set against the previous result with OEMdiff, folds it into a
//! per-subscription DOEM database, evaluates the filter query (with the
//! `t[i]` time variables resolved), and notifies clients of non-empty
//! results.
//!
//! Sources are simulated in-process (the paper's live Web/library sources
//! are unreachable three decades later — see DESIGN.md); everything
//! downstream of the wrapper boundary is the paper's architecture.
//!
//! ```
//! use qss::{QssServer, ScriptedSource, Subscription};
//! use lorel::QueryRegistry;
//!
//! let mut reg = QueryRegistry::new();
//! reg.load(
//!     "define polling query Restaurants as select guide.restaurant \
//!      define filter query NewRestaurants as \
//!      select Restaurants.restaurant<cre at T> where T > t[-1]",
//! ).unwrap();
//! let sub = Subscription::from_registry(
//!     "S", "every night at 11:30pm".parse().unwrap(),
//!     &reg, "Restaurants", "NewRestaurants").unwrap();
//!
//! let mut server = QssServer::new(ScriptedSource::paper_guide());
//! server.subscribe(sub, "30Dec96 10:00am".parse().unwrap());
//! server.run_until("1Jan97 11:30pm".parse().unwrap()).unwrap();
//! // t1: initial results; t2: silent; t3: Hakata (Example 6.1).
//! assert_eq!(server.notifications().len(), 2);
//! ```

#![warn(missing_docs)]

mod freq;
mod notify;
mod persist;
mod script;
mod server;
mod source;
mod subscription;
mod trigger;

pub use freq::{FrequencySpec, ParseFrequencyError};
pub use notify::{Notification, PollRecord};
pub use persist::state_db_name;
pub use script::SubscriptionScript;
pub use server::{latest_result, PreviousResult, QssServer, QssStats};
pub use source::{
    library_source, mutate_guide, synthetic_guide, EvolvingSource, ScrambledSource,
    ScriptedSource, Source,
};
pub use subscription::Subscription;
pub use trigger::{Trigger, TriggerAction, TriggerEvent, TriggerFiring};
