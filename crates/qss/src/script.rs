//! Subscription scripts: the whole of a QSS configuration as text.
//!
//! Combines the paper's `define polling query` / `define filter query`
//! statements (Section 6) with subscription declarations and the ECA
//! trigger syntax (Section 7 extension):
//!
//! ```text
//! define polling query Restaurants as select guide.restaurant
//! define filter query NewRestaurants as
//!     select Restaurants.restaurant<cre at T> where T > t[-1]
//!
//! subscribe S every night at 11:30pm poll Restaurants filter NewRestaurants
//! create trigger price-hike on S updated price when NV > OV do notify
//! ```
//!
//! `subscribe` lines reference previously defined queries; `create trigger
//! … on SUBSCRIPTION …` lines attach to a previously declared
//! subscription.

use crate::{FrequencySpec, Subscription, Trigger};
use lorel::{LorelError, QueryRegistry, Result};

/// A parsed subscription script: subscriptions with their triggers.
#[derive(Clone, Debug, Default)]
pub struct SubscriptionScript {
    /// Declared subscriptions in order.
    pub subscriptions: Vec<Subscription>,
    /// `(subscription id, trigger)` pairs in order.
    pub triggers: Vec<(String, Trigger)>,
}

impl SubscriptionScript {
    /// Parse a whole script. `define` statements may span lines (they end
    /// where the next `define`/`subscribe`/`create trigger` begins);
    /// `subscribe` and `create trigger` statements are one line each.
    pub fn parse(src: &str) -> Result<SubscriptionScript> {
        let mut registry = QueryRegistry::new();
        let mut out = SubscriptionScript::default();
        let mut define_buffer = String::new();

        let flush =
            |buffer: &mut String, registry: &mut QueryRegistry| -> Result<()> {
                if !buffer.trim().is_empty() {
                    registry.load(buffer)?;
                    buffer.clear();
                }
                Ok(())
            };

        for raw in src.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
                continue;
            }
            if line.starts_with("subscribe ") {
                flush(&mut define_buffer, &mut registry)?;
                out.subscriptions.push(parse_subscribe(line, &registry)?);
            } else if line.starts_with("create trigger ") {
                flush(&mut define_buffer, &mut registry)?;
                let (sub_id, trigger) = parse_scoped_trigger(line)?;
                if !out.subscriptions.iter().any(|s| s.id == sub_id) {
                    return Err(LorelError::UnknownQuery(format!(
                        "trigger references undeclared subscription {sub_id:?}"
                    )));
                }
                out.triggers.push((sub_id, trigger));
            } else {
                if line.starts_with("define ") {
                    flush(&mut define_buffer, &mut registry)?;
                }
                define_buffer.push_str(raw);
                define_buffer.push('\n');
            }
        }
        flush(&mut define_buffer, &mut registry)?;
        Ok(out)
    }

    /// Install everything into a server, with subscriptions created at
    /// `created_at`.
    pub fn install<S: crate::Source>(
        &self,
        server: &mut crate::QssServer<S>,
        created_at: oem::Timestamp,
    ) {
        for sub in &self.subscriptions {
            server.subscribe(sub.clone(), created_at);
        }
        for (sub_id, trigger) in &self.triggers {
            server.add_trigger(sub_id, trigger.clone());
        }
    }
}

/// `subscribe ID every … poll POLLING filter FILTER [structural]`
fn parse_subscribe(line: &str, registry: &QueryRegistry) -> Result<Subscription> {
    let err = |msg: &str| LorelError::Syntax {
        line: 1,
        col: 1,
        msg: msg.to_string(),
    };
    let rest = line.strip_prefix("subscribe ").expect("checked by caller");
    let (id, rest) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| err("expected a subscription id"))?;
    let poll_pos = rest
        .find(" poll ")
        .ok_or_else(|| err("expected `poll <query>`"))?;
    let freq_text = &rest[..poll_pos];
    let rest = &rest[poll_pos + 6..];
    let (polling_name, rest) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| err("expected `filter <query>` after the polling query"))?;
    let rest = rest
        .trim_start()
        .strip_prefix("filter ")
        .ok_or_else(|| err("expected `filter <query>`"))?;
    let (filter_name, tail) = match rest.split_once(char::is_whitespace) {
        Some((f, t)) => (f, t.trim()),
        None => (rest.trim(), ""),
    };
    let frequency: FrequencySpec = freq_text
        .trim()
        .parse()
        .map_err(|e: crate::ParseFrequencyError| err(&e.to_string()))?;
    let sub = Subscription::from_registry(id, frequency, registry, polling_name, filter_name)?;
    Ok(match tail {
        "" => sub,
        "structural" => sub.with_structural_matching(),
        other => return Err(err(&format!("unexpected trailing {other:?}"))),
    })
}

/// `create trigger NAME on SUBSCRIPTION EVENT LABEL [when …] [do …]`
fn parse_scoped_trigger(line: &str) -> Result<(String, Trigger)> {
    let err = |msg: &str| LorelError::Syntax {
        line: 1,
        col: 1,
        msg: msg.to_string(),
    };
    // Pull the subscription id out of `on <sub> <event…>` and re-use the
    // plain trigger parser on the rest.
    let rest = line
        .strip_prefix("create trigger ")
        .expect("checked by caller");
    let (name, rest) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| err("expected a trigger name"))?;
    let rest = rest
        .trim_start()
        .strip_prefix("on ")
        .ok_or_else(|| err("expected `on <subscription>`"))?;
    let (sub_id, event_part) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| err("expected an event after the subscription id"))?;
    let rebuilt = format!("create trigger {name} on {event_part}");
    Ok((sub_id.to_string(), Trigger::parse(&rebuilt)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QssServer, ScriptedSource};
    use oem::Timestamp;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    const SCRIPT: &str = "\
        # Example 6.1 as a script, plus a trigger.\n\
        define polling query Restaurants as select guide.restaurant\n\
        define filter query NewRestaurants as\n\
            select Restaurants.restaurant<cre at T> where T > t[-1]\n\
        \n\
        subscribe S every night at 11:30pm poll Restaurants filter NewRestaurants\n\
        create trigger price-hike on S updated price when NV > OV do record\n";

    #[test]
    fn script_parses_and_installs() {
        let script = SubscriptionScript::parse(SCRIPT).unwrap();
        assert_eq!(script.subscriptions.len(), 1);
        assert_eq!(script.triggers.len(), 1);

        let mut server = QssServer::new(ScriptedSource::paper_guide());
        script.install(&mut server, ts("30Dec96 10:00am"));
        server.run_until(ts("9Jan97 11:30pm")).unwrap();
        // The Example 6.1 notifications plus the recorded trigger firing.
        assert_eq!(server.notifications().len(), 2);
        assert_eq!(server.trigger_log().len(), 1);
        assert_eq!(server.trigger_log()[0].trigger, "price-hike");
    }

    #[test]
    fn structural_flag_and_errors() {
        let script = SubscriptionScript::parse(
            "define polling query P as select g.x \
             \ndefine filter query F as select P.x \
             \nsubscribe Z every hour poll P filter F structural",
        )
        .unwrap();
        assert_eq!(
            script.subscriptions[0].match_mode,
            oemdiff::MatchMode::Structural
        );

        for bad in [
            "subscribe S every night at 11:30pm poll P filter F", // P undefined
            "define polling query P as select g.x\nsubscribe S sometimes poll P filter P",
            "define polling query P as select g.x\nsubscribe S every hour poll P",
            "define polling query P as select g.x\n\
             subscribe S every hour poll P filter P\n\
             create trigger t on OTHER updated x",
        ] {
            assert!(SubscriptionScript::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// The script parser must reject garbage with an error, never panic.
        #[test]
        fn script_parse_never_panics(src in "\\PC{0,120}") {
            let _ = SubscriptionScript::parse(&src);
        }

        /// Statement-shaped soup (define/subscribe/create trigger openers
        /// with broken bodies) exercises the multi-line buffering.
        #[test]
        fn script_parse_never_panics_on_statementish_input(
            src in "(define |subscribe |create trigger |poll |filter |freq |as |\n|[a-z]{1,8}| ){0,20}"
        ) {
            let _ = SubscriptionScript::parse(&src);
        }
    }
}
