//! Frequency specifications (Section 6).
//!
//! "The first component is a frequency specification f that specifies how
//! often QSS should check the information source … Examples … are 'every
//! Friday at 5:00pm' and 'every 10 minutes'." A specification implies the
//! sequence of polling times `(t1, t2, t3, …)`.

use oem::Timestamp;
use std::fmt;
use std::str::FromStr;

/// A parsed frequency specification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrequencySpec {
    /// `every N minutes` / `every N hours` / `every N days` (interval in
    /// minutes).
    EveryMinutes(i64),
    /// `every day|night at H:MMam/pm` — daily at a fixed time of day
    /// (minutes after midnight).
    DailyAt(i64),
    /// `every <weekday> at H:MMam/pm` — weekly; weekday 0 = Monday.
    WeeklyAt {
        /// 0 = Monday … 6 = Sunday.
        weekday: u32,
        /// Minutes after midnight.
        minute_of_day: i64,
    },
}

impl FrequencySpec {
    /// The first polling time strictly after `now`.
    pub fn next_after(&self, now: Timestamp) -> Timestamp {
        match *self {
            FrequencySpec::EveryMinutes(n) => now.plus_minutes(n),
            FrequencySpec::DailyAt(m) => {
                let today = now.midnight().plus_minutes(m);
                if today > now {
                    today
                } else {
                    today.plus_days(1)
                }
            }
            FrequencySpec::WeeklyAt {
                weekday,
                minute_of_day,
            } => {
                let mut candidate = now.midnight().plus_minutes(minute_of_day);
                // Walk forward to the requested weekday, strictly after now.
                for _ in 0..8 {
                    if candidate.weekday() == weekday && candidate > now {
                        return candidate;
                    }
                    candidate = candidate.plus_days(1);
                }
                unreachable!("a weekday occurs within 8 days")
            }
        }
    }

    /// The polling times within `(after, until]`, in order.
    pub fn times_between(&self, after: Timestamp, until: Timestamp) -> Vec<Timestamp> {
        let mut out = Vec::new();
        let mut t = self.next_after(after);
        while t <= until {
            out.push(t);
            t = self.next_after(t);
        }
        out
    }
}

impl fmt::Display for FrequencySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FrequencySpec::EveryMinutes(n) => write!(f, "every {n} minutes"),
            FrequencySpec::DailyAt(m) => {
                write!(f, "every day at {}", fmt_minute_of_day(m))
            }
            FrequencySpec::WeeklyAt {
                weekday,
                minute_of_day,
            } => write!(
                f,
                "every {} at {}",
                WEEKDAYS[weekday as usize],
                fmt_minute_of_day(minute_of_day)
            ),
        }
    }
}

const WEEKDAYS: [&str; 7] = [
    "monday",
    "tuesday",
    "wednesday",
    "thursday",
    "friday",
    "saturday",
    "sunday",
];

fn fmt_minute_of_day(m: i64) -> String {
    let (h, mm) = (m / 60, m % 60);
    let (h12, ap) = match h {
        0 => (12, "am"),
        1..=11 => (h, "am"),
        12 => (12, "pm"),
        _ => (h - 12, "pm"),
    };
    format!("{h12}:{mm:02}{ap}")
}

/// Error for unparseable frequency specifications.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFrequencyError(String);

impl fmt::Display for ParseFrequencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized frequency specification: {:?}", self.0)
    }
}

impl std::error::Error for ParseFrequencyError {}

fn parse_time_of_day(s: &str) -> Option<i64> {
    let s = s.trim();
    let (clock, pm) = if let Some(r) = s.strip_suffix("pm") {
        (r, Some(true))
    } else if let Some(r) = s.strip_suffix("am") {
        (r, Some(false))
    } else {
        (s, None)
    };
    let (h, m) = clock.trim().split_once(':')?;
    let h: i64 = h.trim().parse().ok()?;
    let m: i64 = m.trim().parse().ok()?;
    if m >= 60 {
        return None;
    }
    let h = match pm {
        None if h < 24 => h,
        Some(false) if (1..=12).contains(&h) => h % 12,
        Some(true) if (1..=12).contains(&h) => h % 12 + 12,
        _ => return None,
    };
    Some(h * 60 + m)
}

impl FromStr for FrequencySpec {
    type Err = ParseFrequencyError;

    /// Accepts the paper's phrasings: `every 10 minutes`, `every hour`,
    /// `every night at 11:30pm`, `every day at 9:00am`, `every Friday at
    /// 5:00pm`.
    fn from_str(input: &str) -> Result<FrequencySpec, ParseFrequencyError> {
        let err = || ParseFrequencyError(input.to_string());
        let lower = input.trim().to_lowercase();
        let rest = lower.strip_prefix("every").ok_or_else(err)?.trim();
        let words: Vec<&str> = rest.split_whitespace().collect();
        match words.as_slice() {
            [n, unit] => {
                let n: i64 = n.parse().map_err(|_| err())?;
                if n <= 0 {
                    return Err(err());
                }
                let mult = match *unit {
                    "minute" | "minutes" => 1,
                    "hour" | "hours" => 60,
                    "day" | "days" => 24 * 60,
                    _ => return Err(err()),
                };
                Ok(FrequencySpec::EveryMinutes(n * mult))
            }
            ["minute"] => Ok(FrequencySpec::EveryMinutes(1)),
            ["hour"] => Ok(FrequencySpec::EveryMinutes(60)),
            ["day"] => Ok(FrequencySpec::DailyAt(0)),
            [d @ ("day" | "night"), "at", time @ ..] => {
                let _ = d;
                let m = parse_time_of_day(&time.join(" ")).ok_or_else(err)?;
                Ok(FrequencySpec::DailyAt(m))
            }
            [weekday, "at", time @ ..] => {
                let wd = WEEKDAYS
                    .iter()
                    .position(|w| w == weekday)
                    .ok_or_else(err)? as u32;
                let m = parse_time_of_day(&time.join(" ")).ok_or_else(err)?;
                Ok(FrequencySpec::WeeklyAt {
                    weekday: wd,
                    minute_of_day: m,
                })
            }
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn example_6_1_nightly_schedule() {
        // Subscription created Dec 30 1996 at 10:00am, "every night at
        // 11:30pm" → t1=30Dec96, t2=31Dec96, t3=1Jan97, all at 11:30pm.
        let f: FrequencySpec = "every night at 11:30pm".parse().unwrap();
        let created = ts("30Dec96 10:00am");
        let times = f.times_between(created, ts("1Jan97 11:30pm"));
        assert_eq!(
            times,
            vec![
                ts("30Dec96 11:30pm"),
                ts("31Dec96 11:30pm"),
                ts("1Jan97 11:30pm"),
            ]
        );
    }

    #[test]
    fn every_ten_minutes() {
        let f: FrequencySpec = "every 10 minutes".parse().unwrap();
        let t = ts("1Jan97 9:00am");
        assert_eq!(f.next_after(t), ts("1Jan97 9:10am"));
        assert_eq!(f.times_between(t, ts("1Jan97 9:30am")).len(), 3);
    }

    #[test]
    fn every_friday_at_five() {
        let f: FrequencySpec = "every Friday at 5:00pm".parse().unwrap();
        // 1997-01-01 was a Wednesday; the next Friday is Jan 3.
        assert_eq!(f.next_after(ts("1Jan97")), ts("3Jan97 5:00pm"));
        // From Friday 6pm, the next is a week later.
        assert_eq!(f.next_after(ts("3Jan97 6:00pm")), ts("10Jan97 5:00pm"));
        // From Friday 5pm exactly, strictly after → next week.
        assert_eq!(f.next_after(ts("3Jan97 5:00pm")), ts("10Jan97 5:00pm"));
    }

    #[test]
    fn daily_boundary_cases() {
        let f: FrequencySpec = "every day at 9:00am".parse().unwrap();
        assert_eq!(f.next_after(ts("1Jan97 8:59am")), ts("1Jan97 9:00am"));
        assert_eq!(f.next_after(ts("1Jan97 9:00am")), ts("2Jan97 9:00am"));
        let midnight: FrequencySpec = "every day".parse().unwrap();
        assert_eq!(midnight.next_after(ts("1Jan97 12:01am")), ts("2Jan97"));
    }

    #[test]
    fn hours_and_days_units() {
        assert_eq!(
            "every 2 hours".parse::<FrequencySpec>().unwrap(),
            FrequencySpec::EveryMinutes(120)
        );
        assert_eq!(
            "every 3 days".parse::<FrequencySpec>().unwrap(),
            FrequencySpec::EveryMinutes(3 * 24 * 60)
        );
        assert_eq!(
            "every hour".parse::<FrequencySpec>().unwrap(),
            FrequencySpec::EveryMinutes(60)
        );
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "every 10 minutes",
            "every day at 11:30pm",
            "every friday at 5:00pm",
        ] {
            let f: FrequencySpec = s.parse().unwrap();
            assert_eq!(f.to_string().parse::<FrequencySpec>().unwrap(), f);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        for bad in ["", "sometimes", "every", "every -5 minutes", "every blue at 9:00am", "every day at 25:00"] {
            assert!(bad.parse::<FrequencySpec>().is_err(), "accepted {bad:?}");
        }
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// Frequency parsing must reject garbage with an error, never panic.
        #[test]
        fn frequency_from_str_never_panics(src in "\\PC{0,60}") {
            let _ = src.parse::<FrequencySpec>();
        }

        /// Schedule-shaped soup hits the keyword and time-of-day arms.
        #[test]
        fn frequency_from_str_never_panics_on_schedulish_input(
            src in "(every|night|day|at|[0-9]{1,3}|:|am|pm|minutes|hours| ){0,12}"
        ) {
            let _ = src.parse::<FrequencySpec>();
        }
    }
}
