//! The QSS server (Section 6.1, Figure 7).
//!
//! One [`QssServer`] hosts many subscriptions over one source, wiring the
//! paper's five modules together:
//!
//! * **Subscription Manager** — subscription records, polling schedules,
//!   per-subscription DOEM database identity;
//! * **Query Manager** — sends the polling Lorel query to the wrapper and
//!   collects the OEM result;
//! * **OEMdiff** — infers the change set between consecutive results;
//! * **DOEM Manager** — folds the change set into the subscription's DOEM
//!   database (persisting through the Lore store when configured);
//! * **Chorel Engine** — preprocesses `t[i]`, evaluates the filter query,
//!   and pushes non-empty results to clients.
//!
//! Time is simulated: polls run at the timestamps implied by each
//! subscription's frequency specification, against the source's state *at
//! that timestamp* — no wall clock anywhere, so every scenario is
//! deterministic and replayable.
//!
//! Three incremental paths (DESIGN.md §11) bound the per-poll cost by the
//! *changes* rather than the database, which is what lets one server carry
//! very large subscription populations: a [`Source::version`] gate elides
//! the polling query and OEMdiff when the source provably did not change;
//! a filter whose `where` clause anchors an annotation timestamp (the
//! idiomatic `T > t[-1]`) is answered exactly by
//! [`chorel::delta::anchored_eval`] over the annotations in the anchored
//! window; and when the group's change clock proves that window empty, the
//! filter is answered without evaluating anything. [`QssServer::stats`]
//! counts each path.

use crate::{Notification, PollRecord, Source, Subscription, Trigger, TriggerAction, TriggerFiring};
use chorel::{resolve_poll_times, run_chorel_parsed, Strategy};
use crossbeam::channel::{unbounded, Receiver, Sender};
use doem::DoemDatabase;
use lorel::{LorelError, QueryResult};
use lore::LoreStore;
use oem::{OemDatabase, Timestamp};
use oemdiff::diff;
use std::collections::HashMap;

/// Space/time trade-off for the previous polling result (end of
/// Section 6: "the DOEM Manager could store the previous result in
/// addition to the DOEM database, thereby trading space for time").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PreviousResult {
    /// Keep the plain previous result materialized (time-optimal).
    #[default]
    Keep,
    /// Recompute it from the DOEM database's current snapshot each poll
    /// (space-optimal — the paper's default formulation).
    RecomputeFromDoem,
}

struct SubState {
    sub: Subscription,
    poll_times: Vec<Timestamp>,
    /// ECA triggers attached to this subscription (Section 7 extension).
    triggers: Vec<Trigger>,
    /// Index into the server's poll groups (subscriptions with the same
    /// polling query may share one DOEM database — the first space
    /// optimization at the end of Section 6).
    group: usize,
    next_due: Timestamp,
}

/// One shared DOEM state: the accumulated database plus the plain replica
/// of its current snapshot, keyed by the polling query.
struct PollGroup {
    /// `(polling name, polling query text)` — the sharing key.
    key: (String, String),
    doem: DoemDatabase,
    /// Plain replica of the current snapshot (also the validity authority
    /// for appending history). Dropped between polls in
    /// [`PreviousResult::RecomputeFromDoem`] mode.
    replica: Option<OemDatabase>,
    /// The source version observed by this group's last poll, when the
    /// source exposes one ([`Source::version`]). An unchanged version lets
    /// the next poll elide the polling query, OEMdiff, and history append.
    last_version: Option<u64>,
    /// The latest timestamp at which a non-empty change set was folded
    /// into `doem` — the upper bound of every annotation timestamp in it.
    /// `None` means provably no change was ever folded; a restored group
    /// uses [`Timestamp::INFINITY`] (change times unknown, never skip).
    last_change_at: Option<Timestamp>,
}

/// Counters for the incremental evaluation paths (DESIGN.md §11): how much
/// of the per-poll pipeline the server managed to elide.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QssStats {
    /// Polls that skipped the polling query, OEMdiff, and history append
    /// because the source version was unchanged.
    pub polls_elided: u64,
    /// Filter evaluations answered by the anchored O(delta) path
    /// (`chorel::delta::anchored_eval`).
    pub filters_anchored: u64,
    /// Filter evaluations proven empty from the group's change clock
    /// without touching the engine at all.
    pub filters_proven_empty: u64,
    /// Filter evaluations that paid a full evaluation (no usable anchor,
    /// or a non-direct strategy).
    pub filters_full: u64,
}

/// The QSS server.
pub struct QssServer<S: Source> {
    source: S,
    subs: HashMap<String, SubState>,
    groups: Vec<PollGroup>,
    /// When true, subscriptions with identical polling queries share one
    /// DOEM database.
    merge_similar: bool,
    clients: Vec<Sender<Notification>>,
    /// All notifications ever produced (non-empty filter results).
    notifications: Vec<Notification>,
    /// One record per poll, empty or not (diagnostics/experiments).
    polls: Vec<PollRecord>,
    /// Every trigger firing (Section 7 ECA extension).
    trigger_log: Vec<TriggerFiring>,
    strategy: Strategy,
    previous_mode: PreviousResult,
    store: Option<LoreStore>,
    stats: QssStats,
    /// Bumped every time any poll folds a non-empty change set into a
    /// group's DOEM database. Lets embedders (doem-serve's control shard)
    /// distinguish "ticked but nothing changed" from real change.
    change_epoch: u64,
}

impl<S: Source> QssServer<S> {
    /// Create a server over `source`.
    pub fn new(source: S) -> QssServer<S> {
        QssServer {
            source,
            subs: HashMap::new(),
            groups: Vec::new(),
            merge_similar: false,
            clients: Vec::new(),
            notifications: Vec::new(),
            polls: Vec::new(),
            trigger_log: Vec::new(),
            strategy: Strategy::Direct,
            previous_mode: PreviousResult::Keep,
            store: None,
            stats: QssStats::default(),
            change_epoch: 0,
        }
    }

    /// Counters for the incremental paths: elided polls, anchored filter
    /// evaluations, proven-empty skips, and full-evaluation fallbacks.
    pub fn stats(&self) -> QssStats {
        self.stats
    }

    /// Monotonic counter bumped whenever a poll folds a non-empty change
    /// set into any group's DOEM database. Unchanged across polls ⇒ every
    /// DOEM database (and thus every filter answer) is unchanged too.
    pub fn change_epoch(&self) -> u64 {
        self.change_epoch
    }

    /// Share one DOEM database among subscriptions whose polling queries
    /// are identical (the paper's first space-saving idea in Section 6).
    pub fn with_merged_subscriptions(mut self) -> QssServer<S> {
        self.merge_similar = true;
        self
    }

    /// Choose the Chorel execution strategy for filter queries.
    pub fn with_strategy(mut self, strategy: Strategy) -> QssServer<S> {
        self.strategy = strategy;
        self
    }

    /// Choose the previous-result space/time trade-off.
    pub fn with_previous_mode(mut self, mode: PreviousResult) -> QssServer<S> {
        self.previous_mode = mode;
        self
    }

    /// Persist each subscription's DOEM database (as its OEM encoding)
    /// into a Lore store after every poll.
    pub fn with_store(mut self, store: LoreStore) -> QssServer<S> {
        self.store = Some(store);
        self
    }

    /// Attach a client; it receives every future non-empty notification.
    pub fn attach_client(&mut self) -> Receiver<Notification> {
        let (tx, rx) = unbounded();
        self.clients.push(tx);
        rx
    }

    /// Register a subscription created at `created_at`. The first poll
    /// happens at the first frequency-implied time after creation.
    pub fn subscribe(&mut self, sub: Subscription, created_at: Timestamp) {
        let key = (sub.polling_name.clone(), sub.polling.to_string());
        let group = if self.merge_similar {
            self.groups.iter().position(|g| g.key == key)
        } else {
            None
        };
        let group = group.unwrap_or_else(|| {
            // R0 is the empty OEM database (Section 6), named after the
            // polling query so filter paths resolve. Its root uses the
            // shared result-root id so consecutive polling results diff
            // by identity.
            let empty = OemDatabase::with_root_id(
                sub.polling_name.clone(),
                oem::NodeId::from_raw(lorel::RESULT_ROOT_RAW),
            );
            self.groups.push(PollGroup {
                key,
                doem: DoemDatabase::from_snapshot(&empty),
                replica: Some(empty),
                last_version: None,
                last_change_at: None,
            });
            self.groups.len() - 1
        });
        let next_due = sub.frequency.next_after(created_at);
        let state = SubState {
            poll_times: Vec::new(),
            triggers: Vec::new(),
            group,
            next_due,
            sub,
        };
        self.subs.insert(state.sub.id.clone(), state);
    }

    /// Number of distinct DOEM databases currently maintained.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Whether similar polling queries share one DOEM database.
    pub fn merges_similar(&self) -> bool {
        self.merge_similar
    }

    /// Internal view for persistence.
    pub(crate) fn subscription_snapshot(
        &self,
        id: &str,
    ) -> Option<crate::persist::SubscriptionSnapshot<'_>> {
        self.subs.get(id).map(|s| crate::persist::SubscriptionSnapshot {
            sub: &s.sub,
            poll_times: &s.poll_times,
            next_due: s.next_due,
            triggers: &s.triggers,
        })
    }

    /// Install a restored subscription with its accumulated state
    /// (persistence path; see `persist.rs`).
    pub(crate) fn install_restored(
        &mut self,
        sub: Subscription,
        doem: DoemDatabase,
        poll_times: Vec<Timestamp>,
        next_due: Timestamp,
    ) {
        let key = (sub.polling_name.clone(), sub.polling.to_string());
        let group = if self.merge_similar {
            self.groups.iter().position(|g| g.key == key)
        } else {
            None
        };
        let group = group.unwrap_or_else(|| {
            let mut replica = doem::current_snapshot(&doem);
            replica.set_name(sub.polling_name.clone());
            self.groups.push(PollGroup {
                key,
                doem,
                replica: Some(replica),
                last_version: None,
                // Restored history: annotation times are unknown here, so
                // the proven-empty skip must never fire.
                last_change_at: Some(Timestamp::INFINITY),
            });
            self.groups.len() - 1
        });
        let state = SubState {
            poll_times,
            triggers: Vec::new(),
            group,
            next_due,
            sub,
        };
        self.subs.insert(state.sub.id.clone(), state);
    }

    /// Attach an ECA trigger to a subscription. Returns false if the
    /// subscription does not exist.
    pub fn add_trigger(&mut self, subscription: &str, trigger: Trigger) -> bool {
        match self.subs.get_mut(subscription) {
            Some(s) => {
                s.triggers.push(trigger);
                true
            }
            None => false,
        }
    }

    /// Enable or disable a trigger by name. Returns false if not found.
    pub fn set_trigger_enabled(&mut self, subscription: &str, name: &str, enabled: bool) -> bool {
        self.subs
            .get_mut(subscription)
            .and_then(|s| s.triggers.iter_mut().find(|t| t.name == name))
            .map(|t| {
                t.enabled = enabled;
            })
            .is_some()
    }

    /// All trigger firings so far.
    pub fn trigger_log(&self) -> &[TriggerFiring] {
        &self.trigger_log
    }

    /// Remove a subscription.
    pub fn unsubscribe(&mut self, id: &str) {
        self.subs.remove(id);
    }

    /// Ids of active subscriptions, sorted.
    pub fn subscription_ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.subs.keys().cloned().collect();
        v.sort();
        v
    }

    /// The accumulated DOEM database of a subscription (possibly shared
    /// with other subscriptions under `with_merged_subscriptions`).
    pub fn doem_of(&self, id: &str) -> Option<&DoemDatabase> {
        self.subs.get(id).map(|s| &self.groups[s.group].doem)
    }

    /// All notifications so far.
    pub fn notifications(&self) -> &[Notification] {
        &self.notifications
    }

    /// All poll records so far.
    pub fn polls(&self) -> &[PollRecord] {
        &self.polls
    }

    /// Advance simulated time through `horizon`, executing every due poll
    /// of every subscription in global time order.
    pub fn run_until(&mut self, horizon: Timestamp) -> Result<usize, LorelError> {
        let mut executed = 0;
        loop {
            let due = self
                .subs
                .iter()
                .filter(|(_, s)| s.next_due <= horizon)
                .min_by_key(|(id, s)| (s.next_due, (*id).clone()))
                .map(|(id, s)| (id.clone(), s.next_due));
            let Some((id, at)) = due else { break };
            self.poll(&id, at)?;
            executed += 1;
        }
        Ok(executed)
    }

    /// Event-driven polling (the paper's trigger mode): poll `id` at every
    /// source change time in `(after, horizon]`, plus once at `horizon`
    /// so the `t[i]` window closes. Falls back to `run_until` when the
    /// source exposes no trigger mechanism. Returns the executed polls.
    pub fn run_event_driven(
        &mut self,
        id: &str,
        after: Timestamp,
        horizon: Timestamp,
    ) -> Result<usize, LorelError> {
        let Some(mut times) = self.source.change_times(after, horizon) else {
            return self.run_until(horizon);
        };
        if times.last() != Some(&horizon) {
            times.push(horizon);
        }
        let mut executed = 0;
        for t in times {
            self.poll(id, t)?;
            executed += 1;
        }
        Ok(executed)
    }

    /// Execute one poll of subscription `id` at time `at` (also usable for
    /// the paper's explicit-request mode). Advances the schedule.
    pub fn poll(&mut self, id: &str, at: Timestamp) -> Result<Option<Notification>, LorelError> {
        let state = self
            .subs
            .get_mut(id)
            .ok_or_else(|| LorelError::UnknownQuery(id.to_string()))?;

        // --- Version gate (DESIGN.md §11): an unchanged source version
        // proves the snapshot identical to the previous poll's, so the
        // polling query, OEMdiff, and the history append are all elided.
        // The poll time is still recorded and the filter stage still runs,
        // so notification semantics are untouched.
        let group = &mut self.groups[state.group];
        let version = self.source.version();
        let elide = version.is_some() && version == group.last_version;
        let mut n_changes = 0;
        if elide {
            self.stats.polls_elided += 1;
        } else {
            // --- Query Manager: polling query against the wrapper's view ---
            let source_view = self.source.state_at(at);
            let polled = lorel::run_parsed(&source_view, &state.sub.polling)?;
            let mut result_db = polled.db;
            result_db.set_name(state.sub.polling_name.clone());

            // --- OEMdiff: previous result vs new result ---
            let previous = match (&group.replica, self.previous_mode) {
                (Some(r), PreviousResult::Keep) => r.clone(),
                _ => {
                    let mut snap = doem::current_snapshot(&group.doem);
                    snap.set_name(state.sub.polling_name.clone());
                    snap
                }
            };
            let diff_result = diff(&previous, &result_db, state.sub.match_mode)
                .map_err(|e| LorelError::LimitExceeded(format!("diff failed: {e}")))?;
            n_changes = diff_result.changes.len();

            // --- DOEM Manager: fold the change set into the history ---
            if !diff_result.changes.is_empty() {
                let mut replica = previous;
                doem::apply_set(&mut group.doem, &mut replica, &diff_result.changes, at)
                    .map_err(|e| {
                        LorelError::LimitExceeded(format!("history append failed: {e}"))
                    })?;
                group.replica = match self.previous_mode {
                    PreviousResult::Keep => Some(replica),
                    PreviousResult::RecomputeFromDoem => None,
                };
                group.last_change_at = Some(at);
                self.change_epoch += 1;
            } else if self.previous_mode == PreviousResult::Keep {
                group.replica = Some(previous);
            }
            group.last_version = version;
            if let Some(store) = &self.store {
                store
                    .save_doem(&state.sub.id, &group.doem)
                    .map_err(|e| LorelError::LimitExceeded(format!("store failed: {e}")))?;
            }
        }
        state.poll_times.push(at);

        // --- Chorel Engine: t[i] preprocessing + filter query ---
        let filter = resolve_poll_times(&state.sub.filter, &state.poll_times)?;
        let anchor = if self.strategy == Strategy::Direct {
            chorel::delta::filter_anchor(&filter, group.doem.name())?
        } else {
            None
        };
        let result = match anchor {
            Some(anchor) => {
                // Every annotation timestamp in the group's DOEM database
                // is at most `last_change_at`, so an anchor strictly ahead
                // of it proves the answer empty with zero evaluations.
                let quiet = match group.last_change_at {
                    None => true,
                    Some(last) if anchor.strict => last <= anchor.at,
                    Some(last) => last < anchor.at,
                };
                if quiet {
                    self.stats.filters_proven_empty += 1;
                    chorel::delta::package_rows(&group.doem, &lorel::Rows { rows: Vec::new() })
                } else {
                    self.stats.filters_anchored += 1;
                    chorel::delta::anchored_eval(&group.doem, &filter, &anchor)?
                }
            }
            None => {
                self.stats.filters_full += 1;
                run_chorel_parsed(&group.doem, &filter, self.strategy)?
            }
        };

        // --- ECA triggers (Section 7 extension) -------------------------
        let mut fired: Vec<(TriggerFiring, TriggerAction)> = Vec::new();
        for trigger in state.triggers.iter().filter(|t| t.enabled) {
            let compiled = trigger.compile(&state.sub.polling_name)?;
            let compiled = resolve_poll_times(&compiled, &state.poll_times)?;
            let hit = run_chorel_parsed(&group.doem, &compiled, self.strategy)?;
            if !hit.is_empty() {
                fired.push((
                    TriggerFiring {
                        subscription: id.to_string(),
                        trigger: trigger.name.clone(),
                        at,
                        result: hit,
                    },
                    trigger.action,
                ));
            }
        }

        // Schedule the next poll.
        state.next_due = state.sub.frequency.next_after(at);

        let record = PollRecord {
            subscription: id.to_string(),
            at,
            changes: n_changes,
            filter_rows: result.len(),
        };
        self.polls.push(record);

        for (firing, action) in fired {
            if action == TriggerAction::Notify {
                let n = Notification {
                    subscription: format!("{}/{}", firing.subscription, firing.trigger),
                    at,
                    result: firing.result.clone(),
                };
                self.clients.retain(|tx| tx.send(n.clone()).is_ok());
                self.notifications.push(n);
            }
            self.trigger_log.push(firing);
        }

        if result.is_empty() {
            return Ok(None);
        }
        let notification = Notification {
            subscription: id.to_string(),
            at,
            result,
        };
        self.clients
            .retain(|tx| tx.send(notification.clone()).is_ok());
        self.notifications.push(notification.clone());
        Ok(Some(notification))
    }
}

/// Convenience: the result database of the latest notification for a
/// subscription, if any.
pub fn latest_result<'a>(
    notifications: &'a [Notification],
    subscription: &str,
) -> Option<&'a QueryResult> {
    notifications
        .iter()
        .rev()
        .find(|n| n.subscription == subscription)
        .map(|n| &n.result)
}
