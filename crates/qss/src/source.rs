//! Information sources (the paper's Tsimmis wrappers/mediators).
//!
//! QSS never sees a source's internals: it sends a polling query and gets
//! back an OEM result (Section 6, Figure 7). A [`Source`] therefore only
//! exposes its OEM view as of a given time. Real 1997 Web sources are
//! simulated in-process (see DESIGN.md's substitution table):
//!
//! * [`ScriptedSource`] — an initial database plus a fixed change
//!   timeline; replays the paper's Example 2.2 edits for the Guide;
//! * [`EvolvingSource`] — seeded random mutations per step, for tests and
//!   benchmarks;
//! * [`ScrambledSource`] — a wrapper that renumbers object ids on every
//!   snapshot, modeling wrappers that do not preserve identifiers (forces
//!   structural diffing);
//! * [`library_source`] — the library-circulation scenario from the
//!   paper's introduction (popular books, checkouts and returns).

use oem::{
    ArcTriple, ChangeOp, ChangeSet, GraphBuilder, History, NodeId, OemDatabase, Timestamp, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// An autonomous information source, as seen through its wrapper.
pub trait Source: Send {
    /// A short name for diagnostics.
    fn name(&self) -> &str;

    /// The source's OEM view as of time `t`.
    fn state_at(&self, t: Timestamp) -> OemDatabase;

    /// The times in `(after, until]` at which the source changed, when the
    /// source can tell (the paper's third snapshot mode: "snapshots are
    /// obtained as a result of a trigger on the source database firing, if
    /// the source provides such a triggering mechanism"). `None` means the
    /// source offers no trigger mechanism and must be polled blindly.
    fn change_times(&self, _after: Timestamp, _until: Timestamp) -> Option<Vec<Timestamp>> {
        None
    }

    /// A counter that advances whenever the source's content changes, when
    /// the wrapper can expose one (an HTTP `ETag`, a write counter, …).
    /// When two polls observe the same version the server knows the
    /// snapshot is identical and elides the polling query, OEMdiff, and
    /// the history append entirely (DESIGN.md §11). `None` (the default)
    /// means the source cannot tell and every poll pays the full pipeline.
    fn version(&self) -> Option<u64> {
        None
    }
}

impl<S: Source + ?Sized> Source for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn state_at(&self, t: Timestamp) -> OemDatabase {
        (**self).state_at(t)
    }

    fn change_times(&self, after: Timestamp, until: Timestamp) -> Option<Vec<Timestamp>> {
        (**self).change_times(after, until)
    }

    fn version(&self) -> Option<u64> {
        (**self).version()
    }
}

/// A source defined by an initial database and a fixed history.
#[derive(Clone, Debug)]
pub struct ScriptedSource {
    name: String,
    initial: OemDatabase,
    history: History,
}

impl ScriptedSource {
    /// Build from an initial state and a timeline of changes.
    pub fn new(name: impl Into<String>, initial: OemDatabase, history: History) -> ScriptedSource {
        assert!(
            history.is_valid_for(&initial),
            "scripted history must be valid for the initial state"
        );
        ScriptedSource {
            name: name.into(),
            initial,
            history,
        }
    }

    /// The Guide source with the paper's Example 2.2/2.3 timeline.
    pub fn paper_guide() -> ScriptedSource {
        ScriptedSource::new(
            "palo-alto-weekly",
            oem::guide::guide_figure2(),
            oem::guide::history_example_2_3(),
        )
    }
}

impl Source for ScriptedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn state_at(&self, t: Timestamp) -> OemDatabase {
        let mut db = self.initial.clone();
        self.history
            .prefix_through(t)
            .apply_to(&mut db)
            .expect("validated in constructor");
        db
    }

    fn change_times(&self, after: Timestamp, until: Timestamp) -> Option<Vec<Timestamp>> {
        Some(
            self.history
                .timestamps()
                .filter(|&t| t > after && t <= until)
                .collect(),
        )
    }
}

/// A source that mutates pseudo-randomly over time: every `step_minutes` it
/// applies a batch of random updates/insertions/removals to a generated
/// restaurant-guide-shaped database. Deterministic for a given seed.
#[derive(Clone, Debug)]
pub struct EvolvingSource {
    name: String,
    seed: u64,
    start: Timestamp,
    step_minutes: i64,
    initial_restaurants: usize,
    churn_per_step: usize,
}

impl EvolvingSource {
    /// Create a generator-backed source.
    pub fn new(
        name: impl Into<String>,
        seed: u64,
        start: Timestamp,
        step_minutes: i64,
        initial_restaurants: usize,
        churn_per_step: usize,
    ) -> EvolvingSource {
        EvolvingSource {
            name: name.into(),
            seed,
            start,
            step_minutes,
            initial_restaurants,
            churn_per_step,
        }
    }

    fn initial(&self) -> OemDatabase {
        synthetic_guide(self.seed, self.initial_restaurants)
    }

    fn steps_until(&self, t: Timestamp) -> i64 {
        if t <= self.start {
            return 0;
        }
        (t.raw_minutes() - self.start.raw_minutes()) / self.step_minutes
    }
}

impl Source for EvolvingSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn state_at(&self, t: Timestamp) -> OemDatabase {
        let mut db = self.initial();
        let steps = self.steps_until(t);
        for step in 0..steps {
            let mut rng = StdRng::seed_from_u64(self.seed ^ (step as u64).wrapping_mul(0x9E37_79B9));
            mutate_guide(&mut db, &mut rng, self.churn_per_step);
        }
        db
    }
}

/// Generate a synthetic restaurant guide with `n` restaurants.
pub fn synthetic_guide(seed: u64, n: usize) -> OemDatabase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new("guide");
    let root = b.root();
    for i in 0..n {
        let r = b.complex_child(root, "restaurant");
        b.atom_child(r, "name", format!("Restaurant {i}"));
        b.atom_child(r, "price", (rng.gen_range(5..60)) as i64);
        if rng.gen_bool(0.7) {
            b.atom_child(r, "address", format!("{} Lytton", rng.gen_range(1..999)));
        } else {
            let a = b.complex_child(r, "address");
            b.atom_child(a, "street", "Lytton");
            b.atom_child(a, "city", "Palo Alto");
        }
        if rng.gen_bool(0.5) {
            b.atom_child(
                r,
                "cuisine",
                ["Indian", "Thai", "Italian", "Mexican"][rng.gen_range(0..4)],
            );
        }
    }
    b.finish()
}

/// Apply `churn` random edits to a guide-shaped database.
pub fn mutate_guide(db: &mut OemDatabase, rng: &mut StdRng, churn: usize) {
    for _ in 0..churn {
        let restaurants: Vec<NodeId> = db
            .children_labeled(db.root(), oem::Label::new("restaurant"))
            .collect();
        let mut ops: Vec<ChangeOp> = Vec::new();
        match rng.gen_range(0..10) {
            // 40%: price update.
            0..=3 if !restaurants.is_empty() => {
                let r = restaurants[rng.gen_range(0..restaurants.len())];
                if let Some(p) = db.children_labeled(r, oem::Label::new("price")).next() {
                    ops.push(ChangeOp::UpdNode(p, Value::Int(rng.gen_range(5..60))));
                }
            }
            // 30%: new restaurant.
            4..=6 => {
                let r = db.alloc_id();
                let name = db.alloc_id();
                ops.push(ChangeOp::CreNode(r, Value::Complex));
                ops.push(ChangeOp::CreNode(
                    name,
                    Value::str(format!("New place {}", rng.gen::<u16>())),
                ));
                ops.push(ChangeOp::add_arc(db.root(), "restaurant", r));
                ops.push(ChangeOp::add_arc(r, "name", name));
            }
            // 20%: add a comment to an existing restaurant.
            7..=8 if !restaurants.is_empty() => {
                let r = restaurants[rng.gen_range(0..restaurants.len())];
                let c = db.alloc_id();
                ops.push(ChangeOp::CreNode(c, Value::str("needs review")));
                // Avoid duplicate-arc collisions by using a fresh child.
                ops.push(ChangeOp::add_arc(r, "comment", c));
            }
            // 10%: close a restaurant (remove its arc from the root).
            _ if restaurants.len() > 1 => {
                let r = restaurants[rng.gen_range(0..restaurants.len())];
                ops.push(ChangeOp::rem_arc(db.root(), "restaurant", r));
            }
            _ => {}
        }
        if ops.is_empty() {
            continue;
        }
        if let Ok(set) = ChangeSet::from_ops(ops) {
            let _ = set.apply_to(db);
        }
    }
}

/// A wrapper that renumbers every object id on each snapshot — modeling
/// wrappers over sources without stable identifiers (forces the
/// structural matcher in OEMdiff).
pub struct ScrambledSource<S> {
    inner: S,
    salt: u64,
}

impl<S: Source> ScrambledSource<S> {
    /// Wrap a source.
    pub fn new(inner: S, salt: u64) -> ScrambledSource<S> {
        ScrambledSource { inner, salt }
    }
}

impl<S: Source> Source for ScrambledSource<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn state_at(&self, t: Timestamp) -> OemDatabase {
        let db = self.inner.state_at(t);
        // Renumber deterministically but time-dependently.
        let shift = 1000 + (t.raw_minutes().unsigned_abs() % 7919) * 31 + self.salt;
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        for (i, n) in db.node_ids().enumerate() {
            map.insert(n, NodeId::from_raw(shift + i as u64));
        }
        let mut out = OemDatabase::with_root_id(db.name(), map[&db.root()]);
        for n in db.node_ids() {
            if n == db.root() {
                out.set_value(map[&n], db.value(n).expect("own id").clone())
                    .expect("root exists");
            } else {
                out.create_node_with_id(map[&n], db.value(n).expect("own id").clone())
                    .expect("renumbered ids are distinct");
            }
        }
        for a in db.arcs() {
            out.insert_arc(ArcTriple::new(map[&a.parent], a.label, map[&a.child]))
                .expect("arcs map 1-1");
        }
        out
    }
}

/// The library-circulation source from the paper's introduction: books
/// with checkout events; a book is "popular" if it was checked out twice
/// or more in the past month. The timeline covers December 1996: book
/// "Dune" accumulates checkouts and is returned ("available" flips).
pub fn library_source() -> ScriptedSource {
    let mut b = GraphBuilder::new("library");
    let root = b.root();

    let dune = b.complex_child(root, "book");
    b.atom_child(dune, "title", "Dune");
    let dune_avail = b.atom_child(dune, "available", false);
    let dune_checkouts = b.complex_child(dune, "circulation");
    b.atom_child(dune_checkouts, "checkout", "1Dec96".parse::<Timestamp>().unwrap());

    let sicp = b.complex_child(root, "book");
    b.atom_child(sicp, "title", "Structure and Interpretation");
    b.atom_child(sicp, "available", true);
    b.complex_child(sicp, "circulation");

    let db = b.finish();

    // Timeline: Dune checked out again mid-December (now popular), then
    // returned on Jan 2 — at which point a popular book became available.
    let mut h = History::new();
    let mut scratch = db.clone();

    let co2 = scratch.alloc_id();
    h.push(
        "15Dec96".parse().unwrap(),
        ChangeSet::from_ops([
            ChangeOp::CreNode(co2, Value::Time("15Dec96".parse().unwrap())),
            ChangeOp::add_arc(dune_checkouts, "checkout", co2),
        ])
        .unwrap(),
    )
    .unwrap();

    h.push(
        "2Jan97".parse().unwrap(),
        ChangeSet::from_ops([ChangeOp::UpdNode(dune_avail, Value::Bool(true))]).unwrap(),
    )
    .unwrap();

    ScriptedSource::new("library", db, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn scripted_source_replays_the_paper_timeline() {
        let src = ScriptedSource::paper_guide();
        assert!(oem::same_database(
            &src.state_at(ts("31Dec96")),
            &oem::guide::guide_figure2()
        ));
        assert!(oem::same_database(
            &src.state_at(ts("9Jan97")),
            &oem::guide::guide_figure3()
        ));
        // Mid-history state: Hakata exists, parking arc still present.
        let mid = src.state_at(ts("6Jan97"));
        assert!(mid.contains_node(oem::guide::ids::N2));
        assert!(mid.contains_arc(ArcTriple::new(
            oem::guide::ids::N6,
            "parking",
            oem::guide::ids::N7
        )));
    }

    #[test]
    fn evolving_source_is_deterministic_and_monotone_in_time() {
        let src = EvolvingSource::new("gen", 42, ts("1Jan97"), 60, 10, 3);
        let a = src.state_at(ts("1Jan97 5:00am"));
        let b = src.state_at(ts("1Jan97 5:00am"));
        assert!(oem::same_database(&a, &b));
        let later = src.state_at(ts("2Jan97"));
        later.check_invariants().unwrap();
        assert_ne!(later.node_count(), 0);
    }

    #[test]
    fn synthetic_guide_is_valid_and_sized() {
        let db = synthetic_guide(7, 50);
        db.check_invariants().unwrap();
        assert_eq!(
            db.children_labeled(db.root(), oem::Label::new("restaurant"))
                .count(),
            50
        );
    }

    #[test]
    fn scrambled_source_preserves_structure_but_not_ids() {
        let inner = ScriptedSource::paper_guide();
        let scrambled = ScrambledSource::new(ScriptedSource::paper_guide(), 5);
        let t = ts("31Dec96");
        let plain = inner.state_at(t);
        let scr = scrambled.state_at(t);
        assert!(oem::isomorphic(&plain, &scr));
        assert!(!oem::same_database(&plain, &scr));
        scr.check_invariants().unwrap();
    }

    #[test]
    fn library_source_flips_availability() {
        let src = library_source();
        let before = src.state_at(ts("1Jan97"));
        let after = src.state_at(ts("3Jan97"));
        let avail = |db: &OemDatabase| -> Vec<Value> {
            oem::follow_path(
                db,
                db.root(),
                &[oem::Label::new("book"), oem::Label::new("available")],
            )
            .iter()
            .map(|&n| db.value(n).unwrap().clone())
            .collect()
        };
        assert!(avail(&before).contains(&Value::Bool(false)));
        assert!(!avail(&after).contains(&Value::Bool(false)));
        // Dune has two checkouts by mid-December.
        let mid = src.state_at(ts("16Dec96"));
        let checkouts = oem::follow_path(
            &mid,
            mid.root(),
            &[
                oem::Label::new("book"),
                oem::Label::new("circulation"),
                oem::Label::new("checkout"),
            ],
        );
        assert_eq!(checkouts.len(), 2);
    }
}
