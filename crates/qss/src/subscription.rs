//! Subscriptions: `S = ⟨f, Ql, Qc⟩` (Section 6).
//!
//! A subscription bundles a frequency specification, a *polling* Lorel
//! query sent to the wrapper at each polling time, and a *filter* Chorel
//! query evaluated over the accumulated DOEM database. The polling query's
//! name doubles as the DOEM database name, which is how the filter query's
//! path heads resolve (`select Restaurants.restaurant<cre at T> …`).

use crate::FrequencySpec;
use lorel::ast::Query;
use lorel::{LorelError, QueryRegistry};
use oemdiff::MatchMode;

/// A change subscription.
#[derive(Clone, Debug)]
pub struct Subscription {
    /// Unique subscription id (also the client-visible name).
    pub id: String,
    /// How often to poll.
    pub frequency: FrequencySpec,
    /// The polling query's name (names the DOEM database too).
    pub polling_name: String,
    /// The polling Lorel query.
    pub polling: Query,
    /// The filter query's name.
    pub filter_name: String,
    /// The filter Chorel query (may use `t[i]`).
    pub filter: Query,
    /// How OEMdiff matches consecutive polling results.
    pub match_mode: MatchMode,
}

impl Subscription {
    /// Assemble a subscription from named queries in a registry
    /// (mirroring the paper's `define polling query` / `define filter
    /// query` workflow).
    pub fn from_registry(
        id: impl Into<String>,
        frequency: FrequencySpec,
        registry: &QueryRegistry,
        polling_name: &str,
        filter_name: &str,
    ) -> Result<Subscription, LorelError> {
        Ok(Subscription {
            id: id.into(),
            frequency,
            polling_name: polling_name.to_string(),
            polling: registry.get(polling_name)?.clone(),
            filter_name: filter_name.to_string(),
            filter: registry.get(filter_name)?.clone(),
            match_mode: MatchMode::ById,
        })
    }

    /// Builder-style: use structural matching (for sources that do not
    /// preserve object ids across polls).
    pub fn with_structural_matching(mut self) -> Subscription {
        self.match_mode = MatchMode::Structural;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_6_1_subscription_assembles() {
        let mut reg = QueryRegistry::new();
        reg.load(
            "define polling query Restaurants as select guide.restaurant \
             define filter query NewRestaurants as \
             select Restaurants.restaurant<cre at T> where T > t[-1]",
        )
        .unwrap();
        let s = Subscription::from_registry(
            "S",
            "every night at 11:30pm".parse().unwrap(),
            &reg,
            "Restaurants",
            "NewRestaurants",
        )
        .unwrap();
        assert_eq!(s.polling_name, "Restaurants");
        assert_eq!(s.match_mode, MatchMode::ById);
        let s = s.with_structural_matching();
        assert_eq!(s.match_mode, MatchMode::Structural);
    }

    #[test]
    fn unknown_names_error() {
        let reg = QueryRegistry::new();
        assert!(Subscription::from_registry(
            "S",
            "every hour".parse().unwrap(),
            &reg,
            "Nope",
            "AlsoNope"
        )
        .is_err());
    }
}
