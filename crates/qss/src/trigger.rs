//! An event-condition-action trigger language for OEM, based on DOEM and
//! Chorel (the paper's Section 7 roadmap item).
//!
//! A trigger names a *basic-change event* on a label anywhere in the
//! database — object creation, value update, arc addition or removal — an
//! optional Chorel *condition* over the bound variables, and an *action*.
//! Events compile to Chorel queries over the subscription's DOEM database,
//! scoped to the latest polling window with `t[-1]`:
//!
//! | event | compiled range |
//! |-------|----------------|
//! | `created l`  | `DB.#.l<cre at T>` |
//! | `updated l`  | `DB.#.l<upd at T from OV to NV>` |
//! | `added l`    | `DB.#.<add at T>l` |
//! | `removed l`  | `DB.#.<rem at T>l` |
//!
//! The bound variables `X` (the affected object), `T` (the event time),
//! and for updates `OV`/`NV` (old and new values) are available to the
//! condition, exactly like Chorel's annotation variables — because they
//! *are* Chorel's annotation variables.

use lorel::ast::Query;
use lorel::{parse_query, QueryResult, Result};
use oem::Timestamp;
use std::fmt;

/// The event a trigger watches for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TriggerEvent {
    /// An object was created as the target of an `l`-labeled arc.
    Created(String),
    /// The value of an object under an `l`-labeled arc changed.
    Updated(String),
    /// An `l`-labeled arc was added.
    Added(String),
    /// An `l`-labeled arc was removed.
    Removed(String),
}

impl fmt::Display for TriggerEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerEvent::Created(l) => write!(f, "created {l}"),
            TriggerEvent::Updated(l) => write!(f, "updated {l}"),
            TriggerEvent::Added(l) => write!(f, "added {l}"),
            TriggerEvent::Removed(l) => write!(f, "removed {l}"),
        }
    }
}

/// What to do when the event fires and the condition holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerAction {
    /// Push a notification to subscribed clients (like a filter query).
    Notify,
    /// Record the firing in the server's trigger log only.
    Record,
}

/// An ECA trigger attached to a subscription.
#[derive(Clone, Debug)]
pub struct Trigger {
    /// The trigger's name.
    pub name: String,
    /// The watched event.
    pub event: TriggerEvent,
    /// Optional Chorel condition over `X`, `T`, `OV`, `NV`.
    pub condition: Option<String>,
    /// The action.
    pub action: TriggerAction,
    /// Whether the trigger currently fires (triggers can be disabled
    /// without being dropped).
    pub enabled: bool,
}

impl Trigger {
    /// A trigger with no condition that notifies.
    pub fn new(name: impl Into<String>, event: TriggerEvent) -> Trigger {
        Trigger {
            name: name.into(),
            event,
            condition: None,
            action: TriggerAction::Notify,
            enabled: true,
        }
    }

    /// Attach a condition (a Chorel boolean expression over `X`, `T`,
    /// `OV`, `NV`).
    pub fn when(mut self, condition: impl Into<String>) -> Trigger {
        self.condition = Some(condition.into());
        self
    }

    /// Use the record-only action.
    pub fn record_only(mut self) -> Trigger {
        self.action = TriggerAction::Record;
        self
    }

    /// Parse the trigger definition syntax:
    ///
    /// ```text
    /// create trigger NAME on (created|updated|added|removed) LABEL
    ///        [when CONDITION] [do (notify|record)]
    /// ```
    pub fn parse(src: &str) -> Result<Trigger> {
        let err = |msg: &str| lorel::LorelError::Syntax {
            line: 1,
            col: 1,
            msg: msg.to_string(),
        };
        let rest = src.trim();
        let rest = rest
            .strip_prefix("create trigger")
            .ok_or_else(|| err("expected `create trigger`"))?
            .trim_start();
        let (name, rest) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| err("expected a trigger name"))?;
        let rest = rest
            .trim_start()
            .strip_prefix("on")
            .ok_or_else(|| err("expected `on`"))?
            .trim_start();
        let (kind, rest) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| err("expected an event kind"))?;
        let (label, rest) = match rest.trim_start().split_once(char::is_whitespace) {
            Some((l, r)) => (l, r.trim_start()),
            None => (rest.trim(), ""),
        };
        if label.is_empty() {
            return Err(err("expected an event label"));
        }
        let event = match kind {
            "created" => TriggerEvent::Created(label.to_string()),
            "updated" => TriggerEvent::Updated(label.to_string()),
            "added" => TriggerEvent::Added(label.to_string()),
            "removed" => TriggerEvent::Removed(label.to_string()),
            other => return Err(err(&format!("unknown event kind {other:?}"))),
        };
        // Optional `when …` up to a trailing `do …`.
        let (condition, action_text) = match rest.strip_prefix("when ") {
            Some(tail) => match tail.rfind(" do ") {
                Some(i) => (Some(tail[..i].trim().to_string()), tail[i + 4..].trim()),
                None => (Some(tail.trim().to_string()), ""),
            },
            None => (None, rest.strip_prefix("do ").map(str::trim).unwrap_or(rest)),
        };
        let action = match action_text {
            "" | "notify" => TriggerAction::Notify,
            "record" => TriggerAction::Record,
            other => return Err(err(&format!("unknown action {other:?}"))),
        };
        let trigger = Trigger {
            name: name.to_string(),
            event,
            condition,
            action,
            enabled: true,
        };
        // Validate eagerly: the compiled form must parse as Chorel.
        trigger.compile("_probe")?;
        Ok(trigger)
    }

    /// Compile to the Chorel query evaluated against the DOEM database
    /// named `db_name` after each poll. `t[-1]` scopes the event to the
    /// newest polling interval.
    pub fn compile(&self, db_name: &str) -> Result<Query> {
        let (select, range) = match &self.event {
            TriggerEvent::Created(l) => ("X, T", format!("{db_name}.#.{l}<cre at T> X")),
            TriggerEvent::Updated(l) => (
                "X, T, OV, NV",
                format!("{db_name}.#.{l}<upd at T from OV to NV> X"),
            ),
            TriggerEvent::Added(l) => ("X, T", format!("{db_name}.#.<add at T>{l} X")),
            TriggerEvent::Removed(l) => ("X, T", format!("{db_name}.#.<rem at T>{l} X")),
        };
        let mut text = format!("select {select} from {range} where T > t[-1]");
        if let Some(cond) = &self.condition {
            text.push_str(&format!(" and ({cond})"));
        }
        parse_query(&text)
    }
}

impl fmt::Display for Trigger {
    /// Prints the parseable `create trigger` syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "create trigger {} on {}", self.name, self.event)?;
        if let Some(cond) = &self.condition {
            write!(f, " when {cond}")?;
        }
        match self.action {
            TriggerAction::Notify => write!(f, " do notify"),
            TriggerAction::Record => write!(f, " do record"),
        }
    }
}

/// A recorded trigger firing.
#[derive(Clone, Debug)]
pub struct TriggerFiring {
    /// The subscription the trigger belongs to.
    pub subscription: String,
    /// The trigger's name.
    pub trigger: String,
    /// The polling time at which it fired.
    pub at: Timestamp,
    /// The matched events.
    pub result: QueryResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorel::{resolve_poll_times, run_chorel_parsed, Strategy};
    use doem::doem_figure4;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn eval(trigger: &Trigger, window_start: &str) -> QueryResult {
        let d = doem_figure4();
        let q = trigger.compile("guide").unwrap();
        // Simulate a poll window: t[-1] = window_start, t[0] = now.
        let q = resolve_poll_times(&q, &[ts(window_start), ts("9Jan97")]).unwrap();
        run_chorel_parsed(&d, &q, Strategy::Direct).unwrap()
    }

    #[test]
    fn created_trigger_sees_new_restaurants() {
        let t = Trigger::new("new-places", TriggerEvent::Created("restaurant".into()));
        assert_eq!(eval(&t, "31Dec96").len(), 1); // Hakata, created 1Jan97
        assert_eq!(eval(&t, "2Jan97").len(), 0); // window after the event
    }

    #[test]
    fn updated_trigger_binds_old_and_new_values() {
        let t = Trigger::new("price-watch", TriggerEvent::Updated("price".into()))
            .when("NV > OV");
        let r = eval(&t, "31Dec96");
        assert_eq!(r.len(), 1);
        let labels: Vec<&str> = r.rows[0].cols.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["price", "update-time", "old-value", "new-value"]);
        // A condition that rejects: the price went up, not down.
        let t = Trigger::new("discount-watch", TriggerEvent::Updated("price".into()))
            .when("NV < OV");
        assert_eq!(eval(&t, "31Dec96").len(), 0);
    }

    #[test]
    fn removed_trigger_fires_deep_in_the_graph() {
        let t = Trigger::new("parking-lost", TriggerEvent::Removed("parking".into()));
        let r = eval(&t, "7Jan97");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn added_trigger_with_value_condition() {
        let t = Trigger::new("comments", TriggerEvent::Added("comment".into()))
            .when("X = \"need info\"");
        assert_eq!(eval(&t, "4Jan97").len(), 1);
        let t = Trigger::new("comments", TriggerEvent::Added("comment".into()))
            .when("X = \"irrelevant\"");
        assert_eq!(eval(&t, "4Jan97").len(), 0);
    }

    #[test]
    fn compile_is_plain_chorel() {
        let t = Trigger::new("x", TriggerEvent::Updated("price".into())).when("NV > 10");
        let q = t.compile("guide").unwrap();
        let text = q.to_string();
        assert!(text.contains("<upd at T from OV to NV>"), "{text}");
        assert!(text.contains("t[-1]"), "{text}");
    }

    #[test]
    fn parse_trigger_definitions() {
        let t = Trigger::parse(
            "create trigger price-hike on updated price when NV > OV do notify",
        )
        .unwrap();
        assert_eq!(t.name, "price-hike");
        assert_eq!(t.event, TriggerEvent::Updated("price".into()));
        assert_eq!(t.condition.as_deref(), Some("NV > OV"));
        assert_eq!(t.action, TriggerAction::Notify);

        let t = Trigger::parse("create trigger gone on removed parking do record").unwrap();
        assert_eq!(t.action, TriggerAction::Record);
        assert!(t.condition.is_none());

        let t = Trigger::parse("create trigger fresh on created restaurant").unwrap();
        assert_eq!(t.action, TriggerAction::Notify);

        // Parsed triggers behave like built ones.
        assert_eq!(eval(&t, "31Dec96").len(), 1);

        for bad in [
            "make trigger x on created y",
            "create trigger x on exploded y",
            "create trigger x on created",
            "create trigger x on updated price do explode",
            "create trigger x on updated price when ((( do notify",
        ] {
            assert!(Trigger::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn trigger_display_round_trips() {
        for src in [
            "create trigger price-hike on updated price when NV > OV do notify",
            "create trigger gone on removed parking do record",
        ] {
            let t = Trigger::parse(src).unwrap();
            assert_eq!(t.to_string(), src);
            let again = Trigger::parse(&t.to_string()).unwrap();
            assert_eq!(again.name, t.name);
            assert_eq!(again.event, t.event);
            assert_eq!(again.condition, t.condition);
            assert_eq!(again.action, t.action);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            TriggerEvent::Created("restaurant".into()).to_string(),
            "created restaurant"
        );
        assert_eq!(TriggerEvent::Removed("parking".into()).to_string(), "removed parking");
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// The trigger parser must reject garbage with an error, never panic.
        #[test]
        fn trigger_parse_never_panics(src in "\\PC{0,80}") {
            let _ = Trigger::parse(&src);
        }

        /// Trigger-shaped soup reaches the event/condition/action arms.
        #[test]
        fn trigger_parse_never_panics_on_triggerish_input(
            src in "(create trigger |on |created |updated |when |do |notify|record|[a-z]{1,6}| ){0,12}"
        ) {
            let _ = Trigger::parse(&src);
        }
    }
}
