//! Server-state persistence: a QSS server survives restarts.
//!
//! The subscription metadata itself is stored *as an OEM database* — the
//! model is its own configuration store:
//!
//! ```text
//! qss-state {
//!   subscription {
//!     id "S",
//!     frequency "every day at 11:30pm",
//!     polling-name "Restaurants",
//!     polling "select guide.restaurant",
//!     filter-name "NewRestaurants",
//!     filter "select Restaurants.restaurant<cre at T> …",
//!     match-mode "by-id",
//!     next-due @1Jan97 11:30pm,
//!     poll-time @30Dec96 11:30pm,
//!     poll-time @31Dec96 11:30pm,
//!     trigger "create trigger price-hike on updated price …"
//!   }
//! }
//! ```
//!
//! Each subscription's accumulated DOEM database is stored separately under
//! its id (via the Section 5.1 encoding, as the DOEM Manager always does).

use crate::{FrequencySpec, QssServer, Source, Subscription, Trigger};
use lore::{LoreError, LoreStore};
use oem::{GraphBuilder, Label, Timestamp, Value};

const STATE_DB: &str = "qss-state";

fn invalid(msg: impl Into<String>) -> LoreError {
    LoreError::Invalid(msg.into())
}

impl<S: Source> QssServer<S> {
    /// Persist every subscription's metadata, schedule, triggers, and DOEM
    /// database into `store`.
    pub fn persist_state(&self, store: &LoreStore) -> lore::Result<()> {
        let mut b = GraphBuilder::new(STATE_DB);
        let root = b.root();
        b.atom_child(root, "merge-similar", self.merges_similar());
        for id in self.subscription_ids() {
            let snapshot = self
                .subscription_snapshot(&id)
                .expect("listed ids exist");
            let node = b.complex_child(root, "subscription");
            b.atom_child(node, "id", id.as_str());
            b.atom_child(node, "frequency", snapshot.sub.frequency.to_string());
            b.atom_child(node, "polling-name", snapshot.sub.polling_name.as_str());
            b.atom_child(node, "polling", snapshot.sub.polling.to_string());
            b.atom_child(node, "filter-name", snapshot.sub.filter_name.as_str());
            b.atom_child(node, "filter", snapshot.sub.filter.to_string());
            b.atom_child(
                node,
                "match-mode",
                match snapshot.sub.match_mode {
                    oemdiff::MatchMode::ById => "by-id",
                    oemdiff::MatchMode::Structural => "structural",
                },
            );
            b.atom_child(node, "next-due", snapshot.next_due);
            for &t in snapshot.poll_times {
                b.atom_child(node, "poll-time", t);
            }
            for trigger in snapshot.triggers {
                let node_t = b.atom_child(node, "trigger", trigger.to_string());
                if !trigger.enabled {
                    // Disabled triggers are re-created disabled.
                    let _ = node_t;
                    b.atom_child(node, "trigger-disabled", trigger.name.as_str());
                }
            }
            store.save_doem(&id, self.doem_of(&id).expect("listed ids exist"))?;
        }
        store.save(STATE_DB, &b.finish())
    }

    /// Rebuild a server over `source` from a previously persisted state.
    pub fn restore_state(source: S, store: &LoreStore) -> lore::Result<QssServer<S>> {
        let state = store.load(STATE_DB)?;
        let mut server = QssServer::new(source);
        let merged = state
            .children_labeled(state.root(), Label::new("merge-similar"))
            .next()
            .and_then(|n| match state.value(n).ok() {
                Some(Value::Bool(b)) => Some(*b),
                _ => None,
            })
            .unwrap_or(false);
        if merged {
            server = server.with_merged_subscriptions();
        }
        for sub_node in state.children_labeled(state.root(), Label::new("subscription")) {
            let text = |label: &str| -> lore::Result<String> {
                let child = state
                    .children_labeled(sub_node, Label::new(label))
                    .next()
                    .ok_or_else(|| invalid(format!("subscription missing {label}")))?;
                match state.value(child).map_err(|e| invalid(e.to_string()))? {
                    Value::Str(s) => Ok(s.to_string()),
                    other => Err(invalid(format!("{label} is not a string: {other}"))),
                }
            };
            let time = |label: &str| -> lore::Result<Timestamp> {
                let child = state
                    .children_labeled(sub_node, Label::new(label))
                    .next()
                    .ok_or_else(|| invalid(format!("subscription missing {label}")))?;
                match state.value(child).map_err(|e| invalid(e.to_string()))? {
                    Value::Time(t) => Ok(*t),
                    other => Err(invalid(format!("{label} is not a time: {other}"))),
                }
            };

            let id = text("id")?;
            let frequency: FrequencySpec = text("frequency")?
                .parse()
                .map_err(|e: crate::ParseFrequencyError| invalid(e.to_string()))?;
            let polling =
                lorel::parse_query(&text("polling")?).map_err(|e| invalid(e.to_string()))?;
            let filter =
                lorel::parse_query(&text("filter")?).map_err(|e| invalid(e.to_string()))?;
            let match_mode = match text("match-mode")?.as_str() {
                "by-id" => oemdiff::MatchMode::ById,
                "structural" => oemdiff::MatchMode::Structural,
                other => return Err(invalid(format!("unknown match mode {other:?}"))),
            };
            let sub = Subscription {
                id: id.clone(),
                frequency,
                polling_name: text("polling-name")?,
                polling,
                filter_name: text("filter-name")?,
                filter,
                match_mode,
            };

            let mut poll_times: Vec<Timestamp> = state
                .children_labeled(sub_node, Label::new("poll-time"))
                .filter_map(|c| match state.value(c).ok() {
                    Some(Value::Time(t)) => Some(*t),
                    _ => None,
                })
                .collect();
            poll_times.sort();
            let next_due = time("next-due")?;

            let doem = store.load_doem(&id)?;
            server.install_restored(sub, doem, poll_times, next_due);

            // Triggers, disabled names applied afterwards.
            let disabled: Vec<String> = state
                .children_labeled(sub_node, Label::new("trigger-disabled"))
                .filter_map(|c| match state.value(c).ok() {
                    Some(Value::Str(s)) => Some(s.to_string()),
                    _ => None,
                })
                .collect();
            for t in state.children_labeled(sub_node, Label::new("trigger")) {
                if let Ok(Value::Str(src_text)) = state.value(t) {
                    let mut trigger =
                        Trigger::parse(src_text).map_err(|e| invalid(e.to_string()))?;
                    if disabled.contains(&trigger.name) {
                        trigger.enabled = false;
                    }
                    server.add_trigger(&id, trigger);
                }
            }
        }
        Ok(server)
    }
}

/// Internal view used by persistence (defined in `server.rs`).
pub(crate) struct SubscriptionSnapshot<'a> {
    pub sub: &'a Subscription,
    pub poll_times: &'a [Timestamp],
    pub next_due: Timestamp,
    pub triggers: &'a [Trigger],
}

/// The name under which the server's state database is stored.
pub fn state_db_name() -> &'static str {
    STATE_DB
}
