//! End-to-end QSS scenarios, including the paper's Example 6.1 / Figure 6
//! trace, the library motivating example, structural-matching sources, and
//! persistence through the Lore store.

use lorel::{Binding, QueryRegistry};
use oem::{Timestamp, Value};
use qss::{
    library_source, EvolvingSource, PreviousResult, QssServer, ScrambledSource, ScriptedSource,
    Subscription,
};

fn ts(s: &str) -> Timestamp {
    s.parse().unwrap()
}

fn example_6_1_subscription() -> Subscription {
    let mut reg = QueryRegistry::new();
    reg.load(
        "define polling query Restaurants as select guide.restaurant \
         define filter query NewRestaurants as \
         select Restaurants.restaurant<cre at T> where T > t[-1]",
    )
    .unwrap();
    Subscription::from_registry(
        "S",
        "every night at 11:30pm".parse().unwrap(),
        &reg,
        "Restaurants",
        "NewRestaurants",
    )
    .unwrap()
}

/// The full Example 6.1 trace: t1 notifies both initial restaurants, t2 is
/// silent, t3 notifies exactly the new Hakata object.
#[test]
fn example_6_1_full_trace() {
    let mut server = QssServer::new(ScriptedSource::paper_guide());
    let client = server.attach_client();
    server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    let executed = server.run_until(ts("1Jan97 11:30pm")).unwrap();
    assert_eq!(executed, 3, "three polls: 30Dec, 31Dec, 1Jan");

    let polls = server.polls();
    assert_eq!(polls.len(), 3);
    // t1: everything is created; filter returns the two initial objects.
    assert_eq!(polls[0].at, ts("30Dec96 11:30pm"));
    assert_eq!(polls[0].filter_rows, 2);
    // t2: source unchanged; empty diff; no notification.
    assert_eq!(polls[1].at, ts("31Dec96 11:30pm"));
    assert_eq!(polls[1].changes, 0);
    assert_eq!(polls[1].filter_rows, 0);
    // t3: Hakata was added on 1Jan97 (before the 11:30pm poll).
    assert_eq!(polls[2].at, ts("1Jan97 11:30pm"));
    assert!(polls[2].changes > 0);
    assert_eq!(polls[2].filter_rows, 1);

    // Notifications: only t1 and t3.
    let notes = server.notifications();
    assert_eq!(notes.len(), 2);
    assert_eq!(notes[0].rows(), 2);
    assert_eq!(notes[1].rows(), 1);

    // The t3 notification's result contains the Hakata restaurant with its
    // name subobject packaged along.
    let hakata = &notes[1].result;
    assert!(hakata
        .db
        .node_ids()
        .any(|n| hakata.db.value(n).ok() == Some(&Value::str("Hakata"))));

    // The attached client received the same two notifications.
    let received: Vec<_> = client.try_iter().collect();
    assert_eq!(received.len(), 2);
    assert_eq!(received[1].at, ts("1Jan97 11:30pm"));
}

/// Running one more poll past the paper's trace: 2Jan97 was quiet, so no
/// notification; 5Jan97's comment does not create a new *restaurant*.
#[test]
fn polls_after_the_trace_stay_silent_for_new_restaurants() {
    let mut server = QssServer::new(ScriptedSource::paper_guide());
    server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    server.run_until(ts("9Jan97 11:30pm")).unwrap();
    // Polls: 30,31 Dec; 1..9 Jan = 11 polls; notifications still 2.
    assert_eq!(server.polls().len(), 11);
    assert_eq!(server.notifications().len(), 2);
    // But the DOEM database keeps accumulating history: the comment added
    // on 5Jan97 and the parking arc removed on 8Jan97 are all recorded.
    let d = server.doem_of("S").unwrap();
    let t5 = d
        .annotated_nodes()
        .filter_map(|n| d.created_at(n))
        .filter(|t| *t == ts("5Jan97 11:30pm"))
        .count();
    assert!(t5 >= 1, "comment creation recorded at the 5Jan97 poll");
}

/// A filter query over removals: notify when a restaurant loses parking.
#[test]
fn removal_subscription_fires_on_the_parking_removal() {
    let mut reg = QueryRegistry::new();
    reg.load(
        "define polling query Guide as select guide.restaurant \
         define filter query LostParking as \
         select R.name from Guide.restaurant R \
         where R.<rem at T>parking and T > t[-1]",
    )
    .unwrap();
    let sub = Subscription::from_registry(
        "P",
        "every day at 11:30pm".parse().unwrap(),
        &reg,
        "Guide",
        "LostParking",
    )
    .unwrap();
    let mut server = QssServer::new(ScriptedSource::paper_guide());
    server.subscribe(sub, ts("30Dec96 10:00am"));
    server.run_until(ts("9Jan97 11:30pm")).unwrap();
    let notes = server.notifications();
    assert_eq!(notes.len(), 1, "exactly the 8Jan97 removal fires");
    assert_eq!(notes[0].at, ts("8Jan97 11:30pm"));
    let row = &notes[0].result.rows[0];
    let Binding::Node(n) = row.cols[0].1 else { panic!() };
    assert_eq!(
        notes[0].result.db.value(n).unwrap(),
        &Value::str("Janta")
    );
}

/// The library motivating example: "notify me when a popular book becomes
/// available" — popular means checked out twice recently; Dune is returned
/// on 2Jan97.
#[test]
fn library_popular_book_becomes_available() {
    let mut reg = QueryRegistry::new();
    reg.load(
        "define polling query Books as \
         select library.book \
         define filter query PopularAvailable as \
         select B.title from Books.book B \
         where B.available<upd at T to NV> and NV = true and T > t[-1] \
           and exists C1 in B.circulation.checkout : C1 >= 1Dec96",
    )
    .unwrap();
    let sub = Subscription::from_registry(
        "L",
        "every day at 6:00am".parse().unwrap(),
        &reg,
        "Books",
        "PopularAvailable",
    )
    .unwrap();
    let mut server = QssServer::new(library_source());
    server.subscribe(sub, ts("30Nov96 9:00pm"));
    server.run_until(ts("5Jan97")).unwrap();
    let notes = server.notifications();
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].at, ts("2Jan97 6:00am"));
    let row = &notes[0].result.rows[0];
    let Binding::Node(n) = row.cols[0].1 else { panic!() };
    assert_eq!(notes[0].result.db.value(n).unwrap(), &Value::str("Dune"));
}

/// Sources that do not preserve ids across polls force the structural
/// matcher; the trace must come out the same.
#[test]
fn scrambled_source_with_structural_matching_reproduces_the_trace() {
    let source = ScrambledSource::new(ScriptedSource::paper_guide(), 17);
    let mut server = QssServer::new(source);
    server.subscribe(
        example_6_1_subscription().with_structural_matching(),
        ts("30Dec96 10:00am"),
    );
    server.run_until(ts("1Jan97 11:30pm")).unwrap();
    let polls = server.polls();
    assert_eq!(polls.len(), 3);
    assert_eq!(polls[0].filter_rows, 2);
    assert_eq!(polls[1].changes, 0, "structural diff sees no change");
    assert_eq!(polls[2].filter_rows, 1, "only Hakata is new");
}

/// Both Chorel strategies and both previous-result modes produce the same
/// notifications.
#[test]
fn strategies_and_space_modes_agree() {
    let run = |strategy, mode| {
        let mut server = QssServer::new(ScriptedSource::paper_guide())
            .with_strategy(strategy)
            .with_previous_mode(mode);
        server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
        server.run_until(ts("9Jan97 11:30pm")).unwrap();
        server
            .polls()
            .iter()
            .map(|p| (p.at, p.changes, p.filter_rows))
            .collect::<Vec<_>>()
    };
    let base = run(chorel::Strategy::Direct, PreviousResult::Keep);
    assert_eq!(base, run(chorel::Strategy::Translated, PreviousResult::Keep));
    assert_eq!(
        base,
        run(chorel::Strategy::Direct, PreviousResult::RecomputeFromDoem)
    );
}

/// The incremental filter paths (DESIGN.md §11) carry the Example 6.1
/// trace: the idiomatic `T > t[-1]` filter is answered by the anchored
/// O(delta) evaluator on change-carrying polls and proven empty from the
/// group's change clock on quiet ones — never by a full evaluation.
#[test]
fn example_6_1_filters_run_incrementally() {
    let mut server = QssServer::new(ScriptedSource::paper_guide());
    server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    server.run_until(ts("1Jan97 11:30pm")).unwrap();
    let stats = server.stats();
    // t1 (everything new) and t3 (Hakata) evaluate in the anchored window;
    // t2's window is provably empty: the last fold predates t[-1].
    assert_eq!(stats.filters_anchored, 2);
    assert_eq!(stats.filters_proven_empty, 1);
    assert_eq!(stats.filters_full, 0);
    assert_eq!(stats.polls_elided, 0, "ScriptedSource exposes no version");
    // And the change epoch moved only on the two change-carrying polls.
    assert_eq!(server.change_epoch(), 2);
}

/// A translated-strategy server takes the full-evaluation path for every
/// filter (restriction sets do not map onto the Section 5.1 encoding) and
/// still produces the identical trace — `strategies_and_space_modes_agree`
/// checks row equality, this checks the accounting.
#[test]
fn translated_strategy_counts_full_evaluations() {
    let mut server =
        QssServer::new(ScriptedSource::paper_guide()).with_strategy(chorel::Strategy::Translated);
    server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    server.run_until(ts("1Jan97 11:30pm")).unwrap();
    let stats = server.stats();
    assert_eq!(stats.filters_full, 3);
    assert_eq!(stats.filters_anchored, 0);
    assert_eq!(stats.filters_proven_empty, 0);
}

/// A source that can report a version lets the server elide the polling
/// query, OEMdiff, and history append on unchanged polls — the trace and
/// notifications are identical to the blind-polling run.
#[test]
fn version_gate_elides_unchanged_polls() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    struct VersionedSource {
        inner: ScriptedSource,
        version: Arc<AtomicU64>,
    }
    impl qss::Source for VersionedSource {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn state_at(&self, t: Timestamp) -> oem::OemDatabase {
            self.inner.state_at(t)
        }
        fn version(&self) -> Option<u64> {
            Some(self.version.load(Ordering::SeqCst))
        }
    }

    let version = Arc::new(AtomicU64::new(1));
    let mut server = QssServer::new(VersionedSource {
        inner: ScriptedSource::paper_guide(),
        version: version.clone(),
    });
    server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));

    // t1: first poll always pays the pipeline (no version on record yet).
    server.poll("S", ts("30Dec96 11:30pm")).unwrap();
    assert_eq!(server.stats().polls_elided, 0);
    // t2: version unchanged — polling query, diff, and append all elided,
    // but the poll is still recorded and the filter still answered.
    server.poll("S", ts("31Dec96 11:30pm")).unwrap();
    assert_eq!(server.stats().polls_elided, 1);
    // t3: the source changed (Hakata); the wrapper bumps its version and
    // the full pipeline runs again.
    version.fetch_add(1, Ordering::SeqCst);
    let t3 = server.poll("S", ts("1Jan97 11:30pm")).unwrap();
    assert_eq!(server.stats().polls_elided, 1);

    // The trace matches the blind-polling Example 6.1 run exactly.
    let polls: Vec<_> = server
        .polls()
        .iter()
        .map(|p| (p.at, p.changes, p.filter_rows))
        .collect();
    assert_eq!(
        polls,
        vec![
            (ts("30Dec96 11:30pm"), 30, 2),
            (ts("31Dec96 11:30pm"), 0, 0),
            (ts("1Jan97 11:30pm"), 5, 1),
        ]
    );
    assert_eq!(t3.unwrap().rows(), 1);
    assert_eq!(server.notifications().len(), 2);
}

/// DOEM databases persist through the Lore store and reload faithfully.
#[test]
fn subscription_doem_persists_and_reloads() {
    let dir = std::env::temp_dir().join(format!("qss-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = lore::LoreStore::open(&dir).unwrap();
    let mut server =
        QssServer::new(ScriptedSource::paper_guide()).with_store(lore::LoreStore::open(&dir).unwrap());
    server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    server.run_until(ts("1Jan97 11:30pm")).unwrap();

    let reloaded = store.load_doem("S").unwrap();
    assert!(doem::same_doem(server.doem_of("S").unwrap(), &reloaded));
    // The reloaded database answers the filter query identically.
    let r = chorel::run_both_checked(
        &reloaded,
        "select Restaurants.restaurant<cre at T> where T > 31Dec96",
    )
    .unwrap();
    assert_eq!(r.len(), 1);
}

/// Multiple subscriptions with different frequencies interleave in global
/// time order.
#[test]
fn multiple_subscriptions_interleave() {
    let mut reg = QueryRegistry::new();
    reg.load(
        "define polling query Guide as select guide.restaurant \
         define filter query Everything as select Guide.restaurant",
    )
    .unwrap();
    let hourly = Subscription::from_registry(
        "hourly",
        "every 6 hours".parse().unwrap(),
        &reg,
        "Guide",
        "Everything",
    )
    .unwrap();
    let nightly = Subscription::from_registry(
        "nightly",
        "every night at 11:30pm".parse().unwrap(),
        &reg,
        "Guide",
        "Everything",
    )
    .unwrap();
    let mut server = QssServer::new(ScriptedSource::paper_guide());
    server.subscribe(hourly, ts("30Dec96"));
    server.subscribe(nightly, ts("30Dec96"));
    server.run_until(ts("31Dec96")).unwrap();
    // hourly fires at 6:00, 12:00, 18:00, 24:00(=31Dec 0:00); nightly at 23:30.
    let order: Vec<(Timestamp, String)> = server
        .polls()
        .iter()
        .map(|p| (p.at, p.subscription.clone()))
        .collect();
    let mut sorted = order.clone();
    sorted.sort();
    assert_eq!(order, sorted, "polls must run in global time order");
    assert_eq!(order.len(), 5);
    assert_eq!(server.subscription_ids(), vec!["hourly", "nightly"]);
}

/// A churning synthetic source: every poll's diff must replay exactly, and
/// the DOEM database must stay feasible throughout.
#[test]
fn evolving_source_keeps_doem_feasible() {
    let source = EvolvingSource::new("gen", 7, ts("1Jan97"), 60, 12, 4);
    let mut reg = QueryRegistry::new();
    reg.load(
        "define polling query Gen as select guide.restaurant \
         define filter query News as \
         select Gen.restaurant<cre at T> where T > t[-1]",
    )
    .unwrap();
    let sub =
        Subscription::from_registry("G", "every 2 hours".parse().unwrap(), &reg, "Gen", "News")
            .unwrap();
    let mut server = QssServer::new(source);
    server.subscribe(sub, ts("1Jan97"));
    server.run_until(ts("1Jan97 11:00pm")).unwrap();
    assert!(server.polls().len() >= 10);
    let d = server.doem_of("G").unwrap();
    d.check_invariants().unwrap();
    assert!(doem::is_feasible(d), "accumulated DOEM must stay feasible");
    // History extraction matches the polls that saw changes.
    let h = doem::extract_history(d).unwrap();
    let changed_polls = server.polls().iter().filter(|p| p.changes > 0).count();
    assert_eq!(h.len(), changed_polls);
}

/// Unsubscribing stops future polls.
#[test]
fn unsubscribe_stops_polling() {
    let mut server = QssServer::new(ScriptedSource::paper_guide());
    server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    server.run_until(ts("30Dec96 11:30pm")).unwrap();
    assert_eq!(server.polls().len(), 1);
    server.unsubscribe("S");
    server.run_until(ts("9Jan97")).unwrap();
    assert_eq!(server.polls().len(), 1);
    assert!(server.subscription_ids().is_empty());
}

/// ECA triggers (the Section 7 extension): fire on events within the
/// latest polling window, with conditions over bound variables.
#[test]
fn eca_triggers_fire_through_the_poll_cycle() {
    use qss::{Trigger, TriggerEvent};

    let mut server = QssServer::new(ScriptedSource::paper_guide());
    let client = server.attach_client();
    server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    assert!(server.add_trigger(
        "S",
        Trigger::new("price-hike", TriggerEvent::Updated("price".into())).when("NV > OV"),
    ));
    assert!(server.add_trigger(
        "S",
        Trigger::new("parking-lost", TriggerEvent::Removed("parking".into())).record_only(),
    ));
    assert!(!server.add_trigger("nope", Trigger::new("x", TriggerEvent::Created("y".into()))));

    server.run_until(ts("9Jan97 11:30pm")).unwrap();

    // The price hike fired once, at the 1Jan97 poll.
    let hikes: Vec<_> = server
        .trigger_log()
        .iter()
        .filter(|f| f.trigger == "price-hike")
        .collect();
    assert_eq!(hikes.len(), 1);
    assert_eq!(hikes[0].at, ts("1Jan97 11:30pm"));

    // The parking removal fired once, at the 8Jan97 poll — recorded but
    // NOT notified (record-only action).
    let lost: Vec<_> = server
        .trigger_log()
        .iter()
        .filter(|f| f.trigger == "parking-lost")
        .collect();
    assert_eq!(lost.len(), 1);
    assert_eq!(lost[0].at, ts("8Jan97 11:30pm"));

    let notes: Vec<_> = client.try_iter().collect();
    assert!(notes.iter().any(|n| n.subscription == "S/price-hike"));
    assert!(!notes.iter().any(|n| n.subscription.contains("parking-lost")));
}

/// Disabled triggers stay silent; re-enabling resumes them.
#[test]
fn triggers_can_be_disabled() {
    use qss::{Trigger, TriggerEvent};

    let mut server = QssServer::new(ScriptedSource::paper_guide());
    server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    server.add_trigger(
        "S",
        Trigger::new("any-update", TriggerEvent::Updated("price".into())),
    );
    assert!(server.set_trigger_enabled("S", "any-update", false));
    server.run_until(ts("9Jan97 11:30pm")).unwrap();
    assert!(server.trigger_log().is_empty());
    assert!(!server.set_trigger_enabled("S", "no-such", true));
}

/// Section 6 space optimization: subscriptions with the same polling query
/// share one DOEM database when merging is enabled.
#[test]
fn merged_subscriptions_share_one_doem() {
    let mut reg = QueryRegistry::new();
    reg.load(
        "define polling query Guide as select guide.restaurant \
         define filter query News as \
           select Guide.restaurant<cre at T> where T > t[-1] \
         define filter query Removals as \
           select R.name from Guide.restaurant R where R.<rem at T>parking and T > t[-1]",
    )
    .unwrap();
    let nightly = Subscription::from_registry(
        "nightly",
        "every night at 11:30pm".parse().unwrap(),
        &reg,
        "Guide",
        "News",
    )
    .unwrap();
    let hourly = Subscription::from_registry(
        "hourly",
        "every 6 hours".parse().unwrap(),
        &reg,
        "Guide",
        "Removals",
    )
    .unwrap();

    let mut merged = QssServer::new(ScriptedSource::paper_guide()).with_merged_subscriptions();
    merged.subscribe(nightly.clone(), ts("30Dec96 10:00am"));
    merged.subscribe(hourly.clone(), ts("30Dec96 10:00am"));
    assert_eq!(merged.group_count(), 1, "same polling query shares state");
    merged.run_until(ts("9Jan97 11:30pm")).unwrap();

    // Unmerged baseline for comparison.
    let mut split = QssServer::new(ScriptedSource::paper_guide());
    split.subscribe(nightly, ts("30Dec96 10:00am"));
    split.subscribe(hourly, ts("30Dec96 10:00am"));
    assert_eq!(split.group_count(), 2);
    split.run_until(ts("9Jan97 11:30pm")).unwrap();

    // Both servers produce the same notifications per subscription.
    let summarize = |s: &QssServer<ScriptedSource>| {
        let mut v: Vec<(String, Timestamp, usize)> = s
            .notifications()
            .iter()
            .map(|n| (n.subscription.clone(), n.at, n.rows()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(summarize(&merged), summarize(&split));
    assert!(!merged.notifications().is_empty());

    // The shared DOEM is one object: both ids resolve to identical state.
    let a = merged.doem_of("nightly").unwrap();
    let b = merged.doem_of("hourly").unwrap();
    assert!(doem::same_doem(a, b));
}

/// The paper's trigger-driven snapshot mode: a cooperating source reports
/// its change times, so QSS polls exactly when something happened.
#[test]
fn event_driven_polling_hits_every_change() {
    let mut server = QssServer::new(ScriptedSource::paper_guide());
    server.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    let executed = server
        .run_event_driven("S", ts("30Dec96"), ts("9Jan97"))
        .unwrap();
    // Three source changes (1, 5, 8 Jan) plus the closing poll.
    assert_eq!(executed, 4);
    let changed: Vec<_> = server
        .polls()
        .iter()
        .filter(|p| p.changes > 0)
        .map(|p| p.at)
        .collect();
    assert_eq!(changed, vec![ts("1Jan97"), ts("5Jan97"), ts("8Jan97")]);
    // No wasted empty polls besides the closing one.
    assert_eq!(
        server.polls().iter().filter(|p| p.changes == 0).count(),
        1
    );
}

/// Server restarts: persist mid-trace, restore into a fresh server, and
/// the remainder of the Example 6.1 trace plays out exactly as if the
/// server had never stopped.
#[test]
fn server_state_survives_restarts() {
    use qss::{Trigger, TriggerEvent};
    let dir = std::env::temp_dir().join(format!("qss-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = lore::LoreStore::open(&dir).unwrap();

    // Uninterrupted reference run.
    let mut reference = QssServer::new(ScriptedSource::paper_guide());
    reference.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    reference.add_trigger(
        "S",
        Trigger::new("hike", TriggerEvent::Updated("price".into())).when("NV > OV"),
    );
    reference.run_until(ts("9Jan97 11:30pm")).unwrap();

    // Interrupted run: stop after the second poll, persist, restore, finish.
    let mut first_half = QssServer::new(ScriptedSource::paper_guide());
    first_half.subscribe(example_6_1_subscription(), ts("30Dec96 10:00am"));
    first_half.add_trigger(
        "S",
        Trigger::new("hike", TriggerEvent::Updated("price".into())).when("NV > OV"),
    );
    first_half.run_until(ts("31Dec96 11:30pm")).unwrap();
    assert_eq!(first_half.polls().len(), 2);
    first_half.persist_state(&store).unwrap();
    drop(first_half);

    let mut restored =
        QssServer::restore_state(ScriptedSource::paper_guide(), &store).unwrap();
    assert_eq!(restored.subscription_ids(), vec!["S"]);
    restored.run_until(ts("9Jan97 11:30pm")).unwrap();

    // The post-restart polls mirror the reference run's tail: same change
    // counts and filter rows at the same times.
    let tail = |polls: &[qss::PollRecord]| -> Vec<(Timestamp, usize, usize)> {
        polls
            .iter()
            .filter(|p| p.at > ts("31Dec96 11:30pm"))
            .map(|p| (p.at, p.changes, p.filter_rows))
            .collect()
    };
    assert_eq!(tail(reference.polls()), tail(restored.polls()));
    // Including the trigger firing on 1Jan97 and the accumulated DOEM.
    assert_eq!(restored.trigger_log().len(), 1);
    assert!(doem::same_doem(
        reference.doem_of("S").unwrap(),
        restored.doem_of("S").unwrap()
    ));
}
