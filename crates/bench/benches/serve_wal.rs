//! X8 — durability costs: WAL append throughput (the fsync-bound write
//! path), recovery time as a function of log-tail length, and the
//! checkpoint that trades log length for startup time.
//!
//! Like X7 this file lives beside the X1–X6 benches but belongs to the
//! root package (the bench crate does not depend on `serve`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doem::{apply_set, current_snapshot, DoemDatabase};
use oem::{parse_change_set, ChangeSet, OemDatabase, Timestamp};
use serve::wal::{replay, DbWal};
use serve::{Faults, Service};
use std::hint::black_box;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-wal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The i-th record of the benchmark history: one create + one link, with
/// strictly increasing timestamps (minute resolution).
fn record(i: usize) -> (Timestamp, ChangeSet) {
    let at = Timestamp::from_raw_minutes(1_000_000 + i as i64);
    let changes = parse_change_set(&format!(
        "{{creNode(n{0}, {1}), addArc(n1, item, n{0})}}",
        500 + i,
        i
    ))
    .unwrap();
    (at, changes)
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/append");
    group.sample_size(10);
    let dir = tmp("append");
    // Each sample appends (and fsyncs) a 32-record batch; per-record cost
    // is the reported time divided by 32.
    group.bench_function("fsync-batch-32", |b| {
        let (m, f) = (serve::metrics::Metrics::new(), Faults::disabled());
        let mut i = 0usize;
        b.iter(|| {
            let mut wal = DbWal::open(dir.join(format!("a{i}.wal")), 0).unwrap();
            for k in 0..32 {
                let (at, changes) = record(i * 32 + k);
                wal.append(at, &changes, &f, &m).unwrap();
            }
            i += 1;
            black_box(wal.len())
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/recovery");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        // Lay down a checkpoint of the empty database plus an n-record
        // log tail, then measure replay + apply — the startup path.
        let dir = tmp(&format!("recover-{n}"));
        let store = lore::LoreStore::open(&dir).unwrap();
        let initial = OemDatabase::new("r".to_string());
        store
            .save_doem("r", &DoemDatabase::from_snapshot(&initial))
            .unwrap();
        let wal_path = dir.join("r.wal");
        {
            let (m, f) = (serve::metrics::Metrics::new(), Faults::disabled());
            let mut wal = DbWal::open(&wal_path, 0).unwrap();
            for i in 0..n {
                let (at, changes) = record(i);
                wal.append(at, &changes, &f, &m).unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::new("replay-apply", n), &n, |b, _| {
            b.iter(|| {
                let rep = replay(&wal_path).unwrap();
                let mut doem = store.load_doem("r").unwrap();
                let mut replica = current_snapshot(&doem);
                for (at, changes) in &rep.entries {
                    apply_set(&mut doem, &mut replica, changes, *at).unwrap();
                }
                black_box(doem.annotation_count())
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_checkpoint_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/checkpoint-policy");
    group.sample_size(10);
    // End-to-end: run a 64-write workload through a durable service with
    // different checkpoint cadences, then measure the restart.
    for &every in &[0u64, 16, 64] {
        group.bench_with_input(BenchmarkId::new("write+restart", every), &every, |b, &every| {
            b.iter(|| {
                let dir = tmp(&format!("policy-{every}"));
                let svc = Service::start(serve::ServeConfig {
                    wal_dir: Some(dir.clone()),
                    checkpoint_every: every,
                    ..serve::ServeConfig::default()
                })
                .unwrap();
                let client = svc.client();
                assert!(!client.request_line("CREATE w").is_error());
                for i in 0..64 {
                    let (at, changes) = record(i);
                    let resp = client.request_line(&format!("UPDATE w AT {at} ; {changes}"));
                    assert!(!resp.is_error(), "{resp:?}");
                }
                drop(client);
                drop(svc); // crash-stop: the restart below pays for real recovery
                let svc2 = Service::start(serve::ServeConfig {
                    wal_dir: Some(dir.clone()),
                    ..serve::ServeConfig::default()
                })
                .unwrap();
                let names = svc2.database_names();
                svc2.shutdown();
                let _ = std::fs::remove_dir_all(&dir);
                black_box(names.len())
            })
        });
    }
    group.finish();
}

fn bench_group_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal/group-commit");
    group.sample_size(10);
    // N writer threads pipeline through one sequencing worker; the
    // committer either fsyncs every record (`gc-1`, the pre-pipeline
    // behavior) or absorbs whatever queued while the previous fsync ran
    // (`gc-8`). Comparing the legs at equal writer counts is the X8
    // group-commit claim: amortized fsyncs, lower mean write latency.
    for &writers in &[4usize, 8] {
        for &gc in &[1usize, 8] {
            let id = BenchmarkId::new(format!("writers-{writers}"), format!("gc-{gc}"));
            group.bench_with_input(id, &(writers, gc), |b, &(writers, gc)| {
                b.iter(|| {
                    let dir = tmp(&format!("gc-{writers}-{gc}"));
                    let svc = Service::start(serve::ServeConfig {
                        wal_dir: Some(dir.clone()),
                        workers: 1, // queue order == timestamp order: no conflicts
                        checkpoint_every: 0,
                        group_commit_max: gc,
                        group_commit_window_us: 0,
                        ..serve::ServeConfig::default()
                    })
                    .unwrap();
                    let client = svc.client();
                    assert!(!client.request_line("CREATE g").is_error());
                    // Timestamp handout and submission share one mutex so
                    // sequencing sees strictly increasing timestamps; the
                    // wait happens outside it, which is where concurrent
                    // riders pile onto the same fsync.
                    let submit = std::sync::Mutex::new(0usize);
                    std::thread::scope(|s| {
                        for _ in 0..writers {
                            s.spawn(|| {
                                let client = svc.client();
                                for _ in 0..8 {
                                    let pending = {
                                        let mut i = submit.lock().unwrap();
                                        let (at, changes) = record(*i);
                                        *i += 1;
                                        client
                                            .begin_line(&format!("UPDATE g AT {at} ; {changes}"))
                                            .1
                                    };
                                    let resp = pending.wait();
                                    assert!(!resp.is_error(), "{resp:?}");
                                }
                            });
                        }
                    });
                    let m = svc.metrics();
                    let appends = m.wal_appends.load(std::sync::atomic::Ordering::Relaxed);
                    let fsyncs = m.wal_fsyncs.load(std::sync::atomic::Ordering::Relaxed);
                    if gc > 1 {
                        assert!(
                            fsyncs < appends,
                            "group commit never amortized: {fsyncs} fsyncs for {appends} appends"
                        );
                    }
                    svc.shutdown();
                    let _ = std::fs::remove_dir_all(&dir);
                    black_box((appends, fsyncs))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_append,
    bench_recovery,
    bench_checkpoint_tradeoff,
    bench_group_commit
);
criterion_main!(benches);
