//! X1 — direct vs translated Chorel execution (the two strategies of
//! Section 5), across database size and history length.
//!
//! The paper implements the translation strategy and conjectures the
//! kernel-extension strategy as the alternative; this benchmark supplies
//! the comparison the paper never ran. The translated numbers separate
//! encoding cost (paid once per database) from per-query cost.

use bench::evolving_doem;
use chorel::{run_chorel, translate, EncodedSource, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const QUERIES: &[(&str, &str)] = &[
    ("new-entries", "select guide.<add>restaurant"),
    (
        "price-updates",
        "select T, NV from guide.restaurant.price<upd at T to NV> where NV > 30",
    ),
    (
        "plain-filter",
        "select guide.restaurant where guide.restaurant.price < 30",
    ),
];

fn bench_engines(c: &mut Criterion) {
    for &size in &[10usize, 50, 200] {
        let d = evolving_doem(42, size, 20, size / 4 + 1);
        // Correctness precondition: both strategies agree on this workload.
        for (_, q) in QUERIES {
            chorel::run_both_checked(&d, q).expect("strategies agree");
        }

        let mut group = c.benchmark_group(format!("chorel_engines/{size}r"));
        for (name, q) in QUERIES {
            group.bench_with_input(BenchmarkId::new("direct", name), q, |b, q| {
                b.iter(|| run_chorel(black_box(&d), q, Strategy::Direct).unwrap())
            });
            group.bench_with_input(
                BenchmarkId::new("translated-cold", name),
                q,
                |b, q| {
                    // Includes the per-database encoding cost.
                    b.iter(|| run_chorel(black_box(&d), q, Strategy::Translated).unwrap())
                },
            );
            // Warm translation: encode once, run the translated Lorel.
            let encoded = EncodedSource::new(doem::encode_doem(&d).oem);
            let parsed = lorel::parse_query(q).unwrap();
            let lorel_q = translate(&parsed, d.name()).unwrap();
            group.bench_with_input(
                BenchmarkId::new("translated-warm", name),
                &lorel_q,
                |b, lq| b.iter(|| lorel::run_parsed(black_box(&encoded), lq).unwrap()),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
