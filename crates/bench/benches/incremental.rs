//! X10 — incremental evaluation: per-tick cost at a *fixed* delta versus
//! database size (DESIGN.md §11). Two faces of the same claim:
//!
//! * `incremental/publish` — the serve cache's publish-stage choice after
//!   a write touched a fixed number of objects: full re-evaluation of a
//!   cached query (`full/…`, scans the database) versus semi-naive
//!   maintenance of the prior rows (`maintain/…`, scans the delta, plus
//!   an O(prior) row copy).
//! * `incremental/quiet-tick` — a whole QSS poll against a source that
//!   did not change: `re-poll` pays the full pipeline every tick
//!   (snapshot, polling query, OEMdiff), `incremental` takes the
//!   version-gate elision and the proven-empty filter skip.
//!
//! Re-poll should scale with database size; the incremental variants
//! should stay flat.

use chorel::{run_chorel_parsed, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doem::{apply_set, DoemDatabase};
use lorel::QueryRegistry;
use oem::{ChangeOp, ChangeSet, OemDatabase, Timestamp, Value};
use qss::{synthetic_guide, QssServer, Source, Subscription};
use std::hint::black_box;

fn ts(s: &str) -> Timestamp {
    s.parse().unwrap()
}

/// One new restaurant (2 nodes, 2 arcs) — the fixed delta every size pays.
fn fixed_delta(db: &mut OemDatabase) -> ChangeSet {
    let r = db.alloc_id();
    let n = db.alloc_id();
    ChangeSet::from_ops([
        ChangeOp::CreNode(r, Value::Complex),
        ChangeOp::CreNode(n, Value::str("Thai Spice")),
        ChangeOp::add_arc(db.root(), "restaurant", r),
        ChangeOp::add_arc(r, "name", n),
    ])
    .unwrap()
}

fn bench_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental/publish");
    group.sample_size(20);
    let queries = [
        ("plain", "select guide.restaurant"),
        ("filter", "select guide.<add at T>restaurant where T >= 2Jan97"),
    ];
    for &n in &[100usize, 400, 1600] {
        let mut replica = synthetic_guide(11, n);
        let mut d = DoemDatabase::from_snapshot(&replica);
        let parsed: Vec<_> = queries
            .iter()
            .map(|(_, q)| lorel::parse_query(q).unwrap())
            .collect();
        let prior: Vec<_> = parsed
            .iter()
            .map(|q| run_chorel_parsed(&d, q, Strategy::Direct).unwrap().rows)
            .collect();
        let at = ts("2Jan97");
        let set = fixed_delta(&mut replica);
        apply_set(&mut d, &mut replica, &set, at).unwrap();
        for (i, (tag, _)) in queries.iter().enumerate() {
            group.bench_with_input(BenchmarkId::new(format!("full/{tag}"), n), &n, |b, _| {
                b.iter(|| black_box(run_chorel_parsed(&d, &parsed[i], Strategy::Direct).unwrap()))
            });
            group.bench_with_input(BenchmarkId::new(format!("maintain/{tag}"), n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        chorel::delta::maintain_rows(&d, &parsed[i], &set, at, &prior[i])
                            .unwrap()
                            .expect("pool is inside the monotonic fragment"),
                    )
                })
            });
        }
    }
    group.finish();
}

/// A wrapper over a frozen database; `versioned` controls whether it can
/// prove to the server that nothing changed (the ETag analogue).
struct StaticSource {
    db: OemDatabase,
    versioned: bool,
}

impl Source for StaticSource {
    fn name(&self) -> &str {
        "static"
    }

    fn state_at(&self, _t: Timestamp) -> OemDatabase {
        self.db.clone()
    }

    fn version(&self) -> Option<u64> {
        self.versioned.then_some(1)
    }
}

const DEFS: &str = "define polling query Guide as select guide.restaurant \
                    define filter query News as \
                    select Guide.restaurant<cre at T> where T > t[-1]";

fn subscription() -> Subscription {
    let mut reg = QueryRegistry::new();
    reg.load(DEFS).unwrap();
    Subscription::from_registry("S", "every 1 hours".parse().unwrap(), &reg, "Guide", "News")
        .unwrap()
}

fn bench_quiet_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental/quiet-tick");
    group.sample_size(10);
    for &n in &[100usize, 400, 1600] {
        for (tag, versioned) in [("re-poll", false), ("incremental", true)] {
            group.bench_with_input(BenchmarkId::new(tag, n), &n, |b, &n| {
                let mut server = QssServer::new(StaticSource {
                    db: synthetic_guide(11, n),
                    versioned,
                });
                server.subscribe(subscription(), ts("1Jan97"));
                // First poll folds the whole source in; every later poll
                // observes an unchanged snapshot.
                server.poll("S", ts("1Jan97 1:00am")).unwrap();
                let base = ts("1Jan97 2:00am").raw_minutes();
                let mut minute = 0i64;
                b.iter(|| {
                    minute += 1;
                    let at = Timestamp::from_raw_minutes(base + minute);
                    black_box(server.poll("S", at).unwrap())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_publish, bench_quiet_tick);
criterion_main!(benches);
