//! X5 — the full QSS polling cycle: wrapper query → diff → DOEM append →
//! filter query → notification, versus source size and change rate, plus
//! the structural-matching and previous-result-mode overheads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lorel::QueryRegistry;
use oem::Timestamp;
use qss::{EvolvingSource, PreviousResult, QssServer, ScrambledSource, Subscription};
use std::hint::black_box;

fn subscription(reg_src: &str) -> Subscription {
    let mut reg = QueryRegistry::new();
    reg.load(reg_src).unwrap();
    Subscription::from_registry(
        "S",
        "every 1 hours".parse().unwrap(),
        &reg,
        "Guide",
        "News",
    )
    .unwrap()
}

const DEFS: &str = "define polling query Guide as select guide.restaurant \
                    define filter query News as \
                    select Guide.restaurant<cre at T> where T > t[-1]";

fn ts(s: &str) -> Timestamp {
    s.parse().unwrap()
}

fn bench_poll_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("qss/cycle");
    group.sample_size(20);
    for &n in &[20usize, 100, 400] {
        group.bench_with_input(BenchmarkId::new("24-polls", n), &n, |b, &n| {
            b.iter(|| {
                let source = EvolvingSource::new("gen", 5, ts("1Jan97"), 60, n, 4);
                let mut server = QssServer::new(source);
                server.subscribe(subscription(DEFS), ts("1Jan97"));
                server.run_until(ts("2Jan97")).unwrap();
                black_box(server.polls().len())
            })
        });
    }
    group.finish();
}

fn bench_matching_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("qss/matching");
    group.sample_size(20);
    group.bench_function("by-id", |b| {
        b.iter(|| {
            let source = EvolvingSource::new("gen", 5, ts("1Jan97"), 60, 100, 4);
            let mut server = QssServer::new(source);
            server.subscribe(subscription(DEFS), ts("1Jan97"));
            server.run_until(ts("1Jan97 12:00pm")).unwrap();
        })
    });
    group.bench_function("structural", |b| {
        b.iter(|| {
            let source =
                ScrambledSource::new(EvolvingSource::new("gen", 5, ts("1Jan97"), 60, 100, 4), 3);
            let mut server = QssServer::new(source);
            server.subscribe(
                subscription(DEFS).with_structural_matching(),
                ts("1Jan97"),
            );
            server.run_until(ts("1Jan97 12:00pm")).unwrap();
        })
    });
    group.finish();
}

fn bench_previous_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("qss/previous-result");
    group.sample_size(20);
    for (name, mode) in [
        ("keep", PreviousResult::Keep),
        ("recompute", PreviousResult::RecomputeFromDoem),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let source = EvolvingSource::new("gen", 5, ts("1Jan97"), 60, 100, 4);
                let mut server = QssServer::new(source).with_previous_mode(mode);
                server.subscribe(subscription(DEFS), ts("1Jan97"));
                server.run_until(ts("1Jan97 12:00pm")).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_poll_cycle,
    bench_matching_modes,
    bench_previous_modes
);
criterion_main!(benches);
