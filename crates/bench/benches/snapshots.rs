//! X4 — snapshot extraction and representation costs: `Ot(D)` versus
//! history length (the snapshot-delta approach reconstructs on demand),
//! DOEM construction cost, and history extraction — the operational side
//! of the snapshot-delta vs snapshot-collection comparison in
//! Section 1.3. (The storage-footprint side is reported by
//! `cargo run --bin experiments`.)

use bench::evolving_history;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doem::{current_snapshot, doem_from_history, extract_history, original_snapshot, snapshot_at};
use oem::Timestamp;
use std::hint::black_box;

fn bench_snapshot_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshots/extract");
    for &steps in &[10usize, 50, 200] {
        let (db, h) = evolving_history(9, 50, steps, 6);
        let d = doem_from_history(&db, &h).unwrap();
        let mid: Timestamp = h.entries()[h.len() / 2].at;

        group.bench_with_input(BenchmarkId::new("original", steps), &steps, |b, _| {
            b.iter(|| original_snapshot(black_box(&d)))
        });
        group.bench_with_input(BenchmarkId::new("midpoint", steps), &steps, |b, _| {
            b.iter(|| snapshot_at(black_box(&d), mid))
        });
        group.bench_with_input(BenchmarkId::new("current", steps), &steps, |b, _| {
            b.iter(|| current_snapshot(black_box(&d)))
        });
    }
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshots/construct");
    for &steps in &[10usize, 50, 200] {
        let (db, h) = evolving_history(9, 50, steps, 6);
        group.bench_with_input(BenchmarkId::new("doem-from-history", steps), &steps, |b, _| {
            b.iter(|| doem_from_history(black_box(&db), black_box(&h)).unwrap())
        });
        let d = doem_from_history(&db, &h).unwrap();
        group.bench_with_input(BenchmarkId::new("extract-history", steps), &steps, |b, _| {
            b.iter(|| extract_history(black_box(&d)).unwrap())
        });
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshots/encoding");
    for &steps in &[10usize, 100] {
        let (db, h) = evolving_history(9, 50, steps, 6);
        let d = doem_from_history(&db, &h).unwrap();
        group.bench_with_input(BenchmarkId::new("encode", steps), &steps, |b, _| {
            b.iter(|| doem::encode_doem(black_box(&d)))
        });
        let enc = doem::encode_doem(&d);
        group.bench_with_input(BenchmarkId::new("decode", steps), &steps, |b, _| {
            b.iter(|| doem::decode_doem(black_box(&enc.oem)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("codec-write", steps), &steps, |b, _| {
            b.iter(|| lore::codec::encode_database(black_box(&enc.oem)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_extraction,
    bench_construction,
    bench_encoding
);
criterion_main!(benches);
