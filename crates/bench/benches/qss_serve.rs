//! X7 — service throughput versus concurrent client count.
//!
//! Each measurement runs N session threads, each firing a fixed batch of
//! requests through an in-process [`serve::Client`] against one shared
//! service (4 workers, guide fixture installed). Three workloads:
//!
//! * `read-hot` — one query text; after the first miss everything is a
//!   cache hit, measuring queue + lock + cache overhead;
//! * `read-cold` — per-thread distinct query texts, defeating the cache,
//!   measuring parallel read-path evaluation;
//! * `mixed` — 1 update per 8 queries, exercising the write path and
//!   generation-based invalidation under contention;
//! * `multi-db-writes` — 8 writer threads spread over 1/2/4/8 databases,
//!   measuring how write throughput scales with shard count (the point
//!   of the sharded registry: disjoint databases don't share a lock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oem::guide::{guide_figure2, history_example_2_3};
use serve::{Response, ServeConfig, Service};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

const BATCH: usize = 32;

fn guide_service() -> Service {
    let svc = Service::start(ServeConfig {
        workers: 4,
        queue_depth: 256,
        ..ServeConfig::default()
    })
    .expect("service starts");
    svc.install(&guide_figure2(), &history_example_2_3())
        .expect("fixture installs");
    svc
}

/// Run `clients` threads, each executing `per_client` request lines made
/// by `line(thread_idx, iteration)`; counts non-error responses.
fn fan_out(svc: &Service, clients: usize, line: impl Fn(usize, usize) -> String + Sync) -> usize {
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for t in 0..clients {
            let client = svc.client();
            let line = &line;
            handles.push(scope.spawn(move || {
                let mut ok = 0;
                for i in 0..BATCH {
                    if !client.request_line(&line(t, i)).is_error() {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench_read_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("qss_serve/read-hot");
    group.sample_size(10);
    for &clients in &[1usize, 2, 4, 8, 16] {
        let svc = guide_service();
        group.throughput(Throughput::Elements((clients * BATCH) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, &n| {
            b.iter(|| {
                black_box(fan_out(&svc, n, |_, _| {
                    "QUERY guide select guide.restaurant".to_string()
                }))
            })
        });
        svc.shutdown();
    }
    group.finish();

    let mut group = c.benchmark_group("qss_serve/read-cold");
    group.sample_size(10);
    for &clients in &[1usize, 4, 8] {
        let svc = guide_service();
        group.throughput(Throughput::Elements((clients * BATCH) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, &n| {
            b.iter(|| {
                black_box(fan_out(&svc, n, |t, i| {
                    // Distinct price bound per request → distinct canonical
                    // text → cache miss → real evaluation on the read path.
                    format!(
                        "QUERY guide select guide.restaurant where guide.restaurant.price < {}",
                        1000 + t * BATCH + i
                    )
                }))
            })
        });
        svc.shutdown();
    }
    group.finish();
}

fn bench_mixed_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("qss_serve/mixed");
    group.sample_size(10);
    for &clients in &[2usize, 8] {
        let svc = guide_service();
        // Unique node ids per update across the whole benchmark run.
        let next_id = AtomicU64::new(1_000);
        group.throughput(Throughput::Elements((clients * BATCH) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, &n| {
            b.iter(|| {
                black_box(fan_out(&svc, n, |_, i| {
                    if i % 8 == 7 {
                        let id = next_id.fetch_add(1, Ordering::Relaxed);
                        format!(
                            "UPDATE guide AT 1Mar97 9:00am ; \
                             {{creNode(n{id}, \"B{id}\"), addArc(n4, bench, n{id})}}"
                        )
                    } else {
                        "QUERY guide select guide.restaurant".to_string()
                    }
                }))
            })
        });
        // The mixed workload must not silently degrade into errors.
        let stats = svc.client().request_line("STATS");
        if let Response::Rows(rows) = stats {
            let errors = rows
                .iter()
                .find(|l| l.starts_with("counter errors "))
                .and_then(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
                .unwrap_or(0);
            assert_eq!(errors, 0, "mixed workload produced errors");
        }
        svc.shutdown();
    }
    group.finish();
}

fn bench_multi_db_write_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("qss_serve/multi-db-writes");
    group.sample_size(10);
    const WRITERS: usize = 8;
    for &dbs in &[1usize, 2, 4, 8] {
        let svc = Service::start(ServeConfig {
            workers: WRITERS,
            queue_depth: 256,
            cache_capacity: 0, // pure write path; no result caching at play
            ..ServeConfig::default()
        })
        .expect("service starts");
        let setup = svc.client();
        for d in 0..dbs {
            let resp = setup.request_line(&format!("CREATE db{d}"));
            assert!(!resp.is_error(), "{resp:?}");
        }
        let next_id = AtomicU64::new(1_000);
        group.throughput(Throughput::Elements((WRITERS * BATCH) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dbs), &dbs, |b, &dbs| {
            b.iter(|| {
                black_box(fan_out(&svc, WRITERS, |t, _| {
                    // Writer t hammers db (t mod dbs): with 1 database all
                    // eight serialize on one shard lock; with 8 they are
                    // fully disjoint.
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    format!(
                        "UPDATE db{} AT 1Mar97 9:00am ; \
                         {{creNode(n{id}, {id}), addArc(n1, item, n{id})}}",
                        t % dbs
                    )
                }))
            })
        });
        let stats = svc.client().request_line("STATS");
        if let Response::Rows(rows) = stats {
            let errors = rows
                .iter()
                .find(|l| l.starts_with("counter errors "))
                .and_then(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
                .unwrap_or(0);
            assert_eq!(errors, 0, "multi-db write workload produced errors");
        }
        svc.shutdown();
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_read_throughput,
    bench_mixed_throughput,
    bench_multi_db_write_scaling
);
criterion_main!(benches);
