//! X2 — annotation-index ablation (the paper's Section 7 proposal:
//! "designing indexes on annotations based on their types and
//! timestamps"). Compares a Tindex-backed timestamp-range lookup against
//! the full annotation scan it replaces, plus Lore's Vindex against a
//! value scan.

use bench::evolving_doem;
use criterion::{criterion_group, criterion_main, Criterion};
use doem::{AnnotationIndex, TimeRange};
use lore::Vindex;
use oem::{Label, Timestamp, Value};
use std::hint::black_box;

fn bench_annotation_index(c: &mut Criterion) {
    for &steps in &[20usize, 100, 400] {
        let d = evolving_doem(7, 50, steps, 8);
        let idx = AnnotationIndex::build(&d);
        let mid: Timestamp = "1Jan97".parse::<Timestamp>().unwrap().plus_minutes(steps as i64 * 30);
        let range = TimeRange::since(mid);

        let mut group = c.benchmark_group(format!("index_ablation/{steps}steps"));
        group.bench_function("tindex-range", |b| {
            b.iter(|| black_box(&idx).created_in(black_box(range)).count())
        });
        group.bench_function("full-scan", |b| {
            b.iter(|| {
                // The unindexed equivalent: scan every node's annotations.
                d.annotated_nodes()
                    .flat_map(|n| d.node_annotations(n))
                    .filter(|a| a.is_cre() && a.at() >= mid)
                    .count()
            })
        });
        group.bench_function("tindex-build", |b| {
            b.iter(|| AnnotationIndex::build(black_box(&d)))
        });
        group.finish();
    }
}

fn bench_vindex(c: &mut Criterion) {
    for &n in &[100usize, 1000] {
        let db = qss::synthetic_guide(11, n);
        let idx = Vindex::build(&db);
        let price = Label::new("price");
        let (lo, hi) = (Value::Int(10), Value::Int(20));

        let mut group = c.benchmark_group(format!("vindex/{n}r"));
        group.bench_function("indexed-range", |b| {
            b.iter(|| black_box(&idx).range(price, &lo, &hi).len())
        });
        group.bench_function("scan-range", |b| {
            b.iter(|| {
                db.arcs()
                    .filter(|a| a.label == price)
                    .filter(|a| {
                        let v = db.value(a.child).expect("child exists");
                        lorel::compare(lorel::ast::CmpOp::Ge, v, &lo)
                            && lorel::compare(lorel::ast::CmpOp::Le, v, &hi)
                    })
                    .count()
            })
        });
        group.bench_function("build", |b| {
            b.iter(|| Vindex::build(black_box(&db)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_annotation_index, bench_vindex);
criterion_main!(benches);
