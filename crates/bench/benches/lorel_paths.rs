//! X6 — Lorel path evaluation: cost versus database size, path depth, and
//! the `#` wildcard's closure, plus parser and planner throughput.

use bench::chain_db;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lorel::run_query;
use qss::synthetic_guide;
use std::hint::black_box;

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("lorel/fanout");
    for &n in &[100usize, 1000, 4000] {
        let db = synthetic_guide(2, n);
        group.bench_with_input(BenchmarkId::new("two-step-filter", n), &n, |b, _| {
            b.iter(|| {
                run_query(
                    black_box(&db),
                    "select guide.restaurant where guide.restaurant.price < 30",
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("exists-rewrite", n), &n, |b, _| {
            b.iter(|| {
                run_query(
                    black_box(&db),
                    "select R from guide.restaurant R \
                     where exists P in R.price : P < 30",
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_depth_and_wildcards(c: &mut Criterion) {
    let mut group = c.benchmark_group("lorel/depth");
    for &depth in &[4usize, 16, 64] {
        let db = chain_db(depth, 8);
        let exact: String = {
            let steps = vec!["level"; depth].join(".");
            format!("select chain.{steps}")
        };
        group.bench_with_input(BenchmarkId::new("exact-path", depth), &exact, |b, q| {
            b.iter(|| run_query(black_box(&db), q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("hash-closure", depth), &depth, |b, _| {
            b.iter(|| {
                run_query(black_box(&db), "select chain.# where chain.# = \"leaf\"").unwrap()
            })
        });
    }
    group.finish();
}

fn bench_parse_and_plan(c: &mut Criterion) {
    let q = "select N, T, NV \
             from guide.restaurant.price<upd at T to NV>, guide.restaurant.name N \
             where T >= 1Jan97 and NV > 15 and N like \"%a%\"";
    c.bench_function("lorel/parse", |b| {
        b.iter(|| lorel::parse_query(black_box(q)).unwrap())
    });
    let parsed = lorel::parse_query(q).unwrap();
    c.bench_function("lorel/plan", |b| {
        b.iter(|| lorel::plan(black_box(&parsed), "guide").unwrap())
    });
    c.bench_function("lorel/translate", |b| {
        b.iter(|| chorel::translate(black_box(&parsed), "guide").unwrap())
    });
}

criterion_group!(benches, bench_fanout, bench_depth_and_wildcards, bench_parse_and_plan);
criterion_main!(benches);
