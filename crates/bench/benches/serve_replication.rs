//! X9 — replication: read throughput scaling across follower counts, and
//! the catch-up cost of attaching a follower from empty.
//!
//! The replication claim is that followers buy **read scale-out**: every
//! follower serves snapshot-isolated queries at its applied LSN, so a
//! read-heavy workload spread over 1 primary + N followers should
//! approach (N+1)× the single-instance throughput. The `reads` group
//! measures a fixed query burst round-robined over the topology at
//! N ∈ {0, 1, 2, 4}; caching is disabled so every query pays real
//! evaluation. The `catch-up` group measures the wall time from
//! attaching an empty follower to graph-equal convergence, for
//! checkpoint-image catch-up of increasing database sizes.
//!
//! Like X7/X8 this file lives beside the X1–X6 benches but belongs to
//! the root package (the bench crate does not depend on `serve`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doem::same_doem;
use oem::{parse_change_set, ChangeSet, Timestamp};
use serve::{ServeConfig, Service};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The i-th record of the benchmark history: one create + one link, with
/// strictly increasing timestamps (minute resolution).
fn record(i: usize) -> (Timestamp, ChangeSet) {
    let at = Timestamp::from_raw_minutes(1_000_000 + i as i64);
    let changes = parse_change_set(&format!(
        "{{creNode(n{0}, {1}), addArc(n1, item, n{0})}}",
        500 + i,
        i
    ))
    .unwrap();
    (at, changes)
}

/// Start a primary holding a `rows`-record database `p`, listening on an
/// ephemeral port. Caching is off so reads pay evaluation.
fn primary_with(rows: usize) -> (Service, serve::TcpHandle) {
    let svc = Service::start(ServeConfig {
        cache_capacity: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let c = svc.client();
    assert!(!c.request_line("CREATE p").is_error());
    for i in 0..rows {
        let (at, changes) = record(i);
        let resp = c.request_line(&format!("UPDATE p AT {at} ; {changes}"));
        assert!(!resp.is_error(), "{resp:?}");
    }
    let handle = svc.listen("127.0.0.1:0").unwrap();
    (svc, handle)
}

/// Attach one follower (caching off) and block until it is graph-equal
/// with the primary. Returns the follower and the convergence time.
fn attach_follower(primary: &Service, addr: &str, id: &str) -> (Service, Duration) {
    let t0 = Instant::now();
    let follower = Service::start(ServeConfig {
        follow: Some(addr.to_string()),
        follower_id: Some(id.to_string()),
        follow_poll: Duration::from_millis(5),
        cache_capacity: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let want = primary.doem_snapshot("p").unwrap();
    loop {
        if let Some(got) = follower.doem_snapshot("p") {
            if same_doem(&got, &want) {
                return (follower, t0.elapsed());
            }
        }
        assert!(t0.elapsed() < Duration::from_secs(30), "{id} never converged");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Read scale-out: 256 queries per sample, round-robined over the
/// topology by 4 reader threads. The same total work at every follower
/// count — more instances, more parallel evaluation capacity.
fn bench_read_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication/reads");
    group.sample_size(10);
    for &followers in &[0usize, 1, 2, 4] {
        let (primary, handle) = primary_with(64);
        let addr = handle.addr().to_string();
        let fs: Vec<Service> = (0..followers)
            .map(|i| attach_follower(&primary, &addr, &format!("x9-{i}")).0)
            .collect();
        let clients: Vec<serve::Client> = std::iter::once(primary.client())
            .chain(fs.iter().map(|f| f.client()))
            .collect();

        group.bench_with_input(
            BenchmarkId::new("queries-256", format!("followers-{followers}")),
            &followers,
            |b, _| {
                b.iter(|| {
                    let done = std::sync::atomic::AtomicUsize::new(0);
                    std::thread::scope(|s| {
                        for t in 0..4usize {
                            let clients = &clients;
                            let done = &done;
                            s.spawn(move || {
                                for q in 0..64usize {
                                    let c = &clients[(t * 64 + q) % clients.len()];
                                    let rows = c.query("p", "select p.item").unwrap();
                                    assert_eq!(rows.len(), 64);
                                    done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                            });
                        }
                    });
                    black_box(done.load(std::sync::atomic::Ordering::Relaxed))
                })
            },
        );

        handle.stop();
        for f in fs {
            f.shutdown();
        }
        primary.shutdown();
    }
    group.finish();
}

/// Catch-up cost: wall time from attaching an empty follower to full
/// graph equality, dominated by the checkpoint-image ship + install.
fn bench_catch_up(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication/catch-up");
    group.sample_size(10);
    for &rows in &[64usize, 256] {
        let (primary, handle) = primary_with(rows);
        let addr = handle.addr().to_string();
        group.bench_with_input(BenchmarkId::new("attach-empty", rows), &rows, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let (follower, took) = attach_follower(&primary, &addr, &format!("cu-{i}"));
                i += 1;
                follower.shutdown();
                black_box(took)
            })
        });
        handle.stop();
        primary.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_read_scaling, bench_catch_up);
criterion_main!(benches);
