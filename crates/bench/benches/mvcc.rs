//! X11 — the MVCC version store vs whole-database copy-on-write
//! (DESIGN.md §14).
//!
//! Three questions, all at the library layer (no serve instance):
//!
//! * **snapshot-under-write latency** — what a single write costs while a
//!   reader still pins a snapshot: the persistent path-copy (PMap spine,
//!   O(write × log n)) versus the deep whole-database rebuild the old COW
//!   handle paid (O(n));
//! * **resident memory of retained versions** — 64 retained versions of a
//!   growing database: structurally shared versions cost O(db + total
//!   writes), independent deep copies cost O(64 × db). Reported as `mem:`
//!   lines by a counting allocator, not timed;
//! * **`AS OF` cost vs version age** — resolving a historical read from
//!   the version ring (clone a retained handle) versus the replay
//!   fallback (`doem::snapshot_at`) used past the retention horizon.
//!
//! Expected shape: the COW write and the COW footprint grow linearly with
//! database size while the MVCC write and footprint stay flat; ring reads
//! are flat in version age while replay pays the full reconstruction.

use bench::evolving_history;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oem::{ArcTriple, OemDatabase, SharedOem, Timestamp, Value, VersionRing};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live heap bytes, maintained by [`CountingAlloc`].
static LIVE: AtomicUsize = AtomicUsize::new(0);

/// A [`System`] wrapper that tracks live heap bytes so the memory
/// comparison reports actual allocator-visible footprint, not estimates.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            LIVE.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_add(new_size, Ordering::Relaxed);
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Rebuild `db` node by node through the public API, sharing nothing with
/// the original — the cost model of the pre-§14 copy-on-write handle,
/// where one write under an outstanding snapshot duplicated the whole
/// database.
fn deep_rebuild(db: &OemDatabase) -> OemDatabase {
    let mut out = OemDatabase::with_root_id(db.name(), db.root());
    for n in db.node_ids() {
        if n == db.root() {
            continue;
        }
        out.create_node_with_id(n, db.value(n).expect("node exists").clone())
            .expect("fresh id");
    }
    for arc in db.arcs() {
        out.insert_arc(arc).expect("endpoints rebuilt");
    }
    out
}

/// One small write: a fresh restaurant node hung off the root.
fn small_write(db: &mut OemDatabase, i: i64) {
    let root = db.root();
    let n = db.create_node(Value::Int(i));
    db.insert_arc(ArcTriple::new(root, "restaurant", n))
        .expect("fresh node");
}

fn guide_of(n: usize) -> OemDatabase {
    let (db, _) = evolving_history(11, n, 1, 1);
    db
}

fn bench_snapshot_under_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvcc/snapshot-under-write");
    for &size in &[50usize, 200, 800] {
        let live = SharedOem::new(guide_of(size));
        // `live` itself is the outstanding snapshot: every iteration's
        // handle is shared with it, so the first mutation must preserve
        // the pinned state.
        group.bench_with_input(BenchmarkId::new("mvcc", size), &size, |b, _| {
            b.iter(|| {
                let mut w = live.snapshot();
                small_write(w.make_mut(), 1);
                w
            })
        });
        group.bench_with_input(BenchmarkId::new("cow-baseline", size), &size, |b, _| {
            b.iter(|| {
                let mut copy = deep_rebuild(black_box(&live));
                small_write(&mut copy, 1);
                copy
            })
        });
    }
    group.finish();
}

/// Install `keep` versions of a size-`n` guide, one small write apart.
/// `deep` simulates the old COW world where each retained version is an
/// independent full copy; otherwise versions share structure.
fn build_ring(base: &OemDatabase, keep: usize, deep: bool) -> VersionRing<SharedOem> {
    let mut live = SharedOem::new(base.clone());
    let mut ring = VersionRing::new();
    for i in 0..keep {
        small_write(live.make_mut(), i as i64);
        let version = if deep {
            SharedOem::new(deep_rebuild(&live))
        } else {
            live.snapshot()
        };
        ring.publish_entry(Timestamp::from_raw_minutes(i as i64 + 1), i as u64, version);
    }
    ring
}

/// Not a timed benchmark: prints `mem:` lines comparing the live heap
/// footprint of 64 retained versions under both representations.
fn report_retained_memory(_c: &mut Criterion) {
    const KEEP: usize = 64;
    for &size in &[50usize, 200, 800] {
        let base = guide_of(size);
        let before = live_bytes();
        let shared = build_ring(&base, KEEP, false);
        let shared_bytes = live_bytes().saturating_sub(before);
        drop(shared);
        let before = live_bytes();
        let deep = build_ring(&base, KEEP, true);
        let deep_bytes = live_bytes().saturating_sub(before);
        drop(deep);
        println!(
            "mem: mvcc/retained-{KEEP}/{size}r  shared: {:.1} KiB  cow-deep: {:.1} KiB  ({:.1}x)",
            shared_bytes as f64 / 1024.0,
            deep_bytes as f64 / 1024.0,
            deep_bytes as f64 / shared_bytes.max(1) as f64,
        );
    }
}

fn bench_as_of_by_age(c: &mut Criterion) {
    // 240 versions over a 50-restaurant guide; the ring retains them all,
    // the DOEM database supports replay to any point.
    let (db, h) = evolving_history(13, 50, 240, 4);
    let d = doem::doem_from_history(&db, &h).expect("valid by construction");
    let mut live = SharedOem::new(db);
    let mut ring = VersionRing::new();
    for (g, e) in h.entries().iter().enumerate() {
        e.changes
            .apply_to(live.make_mut())
            .expect("history is valid");
        ring.publish_entry(e.at, g as u64, live.snapshot());
    }

    let len = h.len();
    let mut group = c.benchmark_group("mvcc/as-of");
    for (age_label, idx) in [("newest", len - 1), ("mid", len / 2), ("oldest", 0usize)] {
        let at = h.entries()[idx].at;
        group.bench_with_input(BenchmarkId::new("ring", age_label), &at, |b, at| {
            b.iter(|| ring.at(black_box(*at)).expect("retained").value.snapshot())
        });
        group.bench_with_input(BenchmarkId::new("replay", age_label), &at, |b, at| {
            b.iter(|| doem::snapshot_at(black_box(&d), *at))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_snapshot_under_write,
    report_retained_memory,
    bench_as_of_by_age
);
criterion_main!(benches);
