//! X3 — OEMdiff scaling: differencing cost versus snapshot size and edit
//! volume, for both matching modes. Id-based matching should be near
//! linear in the snapshot size; structural matching pays signature
//! computation and alignment on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oemdiff::MatchMode;
use qss::{mutate_guide, synthetic_guide};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn snapshot_pair(n: usize, churn: usize) -> (oem::OemDatabase, oem::OemDatabase) {
    let old = synthetic_guide(123, n);
    let mut new = old.clone();
    let mut rng = StdRng::seed_from_u64(321);
    mutate_guide(&mut new, &mut rng, churn);
    (old, new)
}

fn bench_diff_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("oemdiff/size");
    for &n in &[50usize, 200, 800] {
        let (old, new) = snapshot_pair(n, 10);
        group.bench_with_input(BenchmarkId::new("by-id", n), &n, |b, _| {
            b.iter(|| oemdiff::diff(black_box(&old), black_box(&new), MatchMode::ById).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("structural", n), &n, |b, _| {
            b.iter(|| {
                oemdiff::diff(black_box(&old), black_box(&new), MatchMode::Structural).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_diff_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("oemdiff/churn");
    for &churn in &[2usize, 20, 80] {
        let (old, new) = snapshot_pair(200, churn);
        group.bench_with_input(BenchmarkId::new("by-id", churn), &churn, |b, _| {
            b.iter(|| oemdiff::diff(black_box(&old), black_box(&new), MatchMode::ById).unwrap())
        });
    }
    group.finish();
}

fn bench_markup(c: &mut Criterion) {
    let (old, new) = snapshot_pair(200, 20);
    c.bench_function("oemdiff/markup-200r", |b| {
        b.iter(|| oemdiff::markup(black_box(&old), black_box(&new), MatchMode::ById).unwrap())
    });
}

criterion_group!(benches, bench_diff_size, bench_diff_churn, bench_markup);
criterion_main!(benches);
