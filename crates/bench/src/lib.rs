//! Workload generators shared by the benchmark suite and the experiment
//! harness (`cargo run --bin experiments`).

#![warn(missing_docs)]

use oem::{History, OemDatabase, Timestamp};
use qss::{mutate_guide, synthetic_guide};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A synthetic guide of `n` restaurants plus a valid history of `steps`
/// change sets, each inferred from `churn` random edits. Returns the
/// initial database and the history (valid for it by construction).
pub fn evolving_history(
    seed: u64,
    n: usize,
    steps: usize,
    churn: usize,
) -> (OemDatabase, History) {
    let initial = synthetic_guide(seed, n);
    let mut prev = initial.clone();
    let mut history = History::new();
    let mut t: Timestamp = "1Jan97".parse().expect("literal");
    for step in 0..steps {
        let mut rng = StdRng::seed_from_u64(seed ^ (step as u64 + 1).wrapping_mul(0x9E37));
        let mut next = prev.clone();
        mutate_guide(&mut next, &mut rng, churn);
        let diff = oemdiff::diff(&prev, &next, oemdiff::MatchMode::ById)
            .expect("snapshots share ids");
        if diff.changes.is_empty() {
            continue;
        }
        history.push(t, diff.changes.clone()).expect("increasing times");
        diff.changes.apply_to(&mut prev).expect("verified by diff");
        t = t.plus_minutes(60);
    }
    (initial, history)
}

/// The constructed DOEM database for an [`evolving_history`] workload.
pub fn evolving_doem(seed: u64, n: usize, steps: usize, churn: usize) -> doem::DoemDatabase {
    let (db, h) = evolving_history(seed, n, steps, churn);
    doem::doem_from_history(&db, &h).expect("valid by construction")
}

/// A layered database for path-evaluation benchmarks: `depth` levels of
/// `level`-labeled arcs, one complex spine child plus `fanout - 1` atom
/// siblings per level.
pub fn chain_db(depth: usize, fanout: usize) -> OemDatabase {
    let mut b = oem::GraphBuilder::new("chain");
    let mut spine = b.root();
    for d in 0..depth {
        let next = if d + 1 < depth {
            b.complex_child(spine, "level")
        } else {
            b.atom_child(spine, "level", "leaf")
        };
        for i in 1..fanout {
            b.atom_child(spine, "level", i as i64);
        }
        spine = next;
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evolving_history_is_valid() {
        let (db, h) = evolving_history(3, 20, 10, 5);
        assert!(h.is_valid_for(&db));
        assert!(!h.is_empty());
    }

    #[test]
    fn evolving_doem_is_feasible() {
        let d = evolving_doem(5, 10, 5, 3);
        assert!(doem::is_feasible(&d));
    }

    #[test]
    fn chain_db_shape() {
        let db = chain_db(4, 3);
        db.check_invariants().unwrap();
        let path: Vec<oem::Label> = (0..4).map(|_| oem::Label::new("level")).collect();
        // The spine's final level: the leaf plus its two atom siblings.
        assert_eq!(oem::follow_path(&db, db.root(), &path).len(), 3);
    }
}
