//! # DOEM — Delta-OEM, the paper's change-representation model
//!
//! Implements Section 3 of *"Representing and Querying Changes in
//! Semistructured Data"* (Chawathe, Abiteboul, Widom; ICDE 1998): changes to
//! an OEM database are represented by attaching annotations (`cre`, `upd`,
//! `add`, `rem`) to the nodes and arcs of the graph. Removed arcs are never
//! deleted — they carry `rem` annotations — so one annotated graph holds the
//! entire history (the snapshot-delta approach).
//!
//! Provided here:
//!
//! * [`DoemDatabase`] — Definition 3.1's `(O, fN, fA)` triple;
//! * [`doem_from_history`] — the `D(O, H)` construction of Section 3.1;
//! * [`original_snapshot`] / [`snapshot_at`] / [`current_snapshot`] —
//!   Section 3.2's snapshot extraction;
//! * [`extract_history`] — Section 3.2's `H(D)` reconstruction;
//! * [`is_feasible`] / [`feasibility`] — the feasibility decision procedure;
//! * [`encode_doem`] / [`decode_doem`] — the Section 5.1 DOEM-in-OEM
//!   encoding and its inverse;
//! * [`AnnotationIndex`] — the timestamp/type annotation index the paper
//!   proposes as future work (Section 7).
//!
//! ```
//! use doem::{doem_from_history, current_snapshot, original_snapshot};
//! use oem::guide::{guide_figure2, guide_figure3, history_example_2_3};
//!
//! let d = doem_from_history(&guide_figure2(), &history_example_2_3()).unwrap();
//! assert!(oem::same_database(&original_snapshot(&d), &guide_figure2()));
//! assert!(oem::same_database(&current_snapshot(&d), &guide_figure3()));
//! ```

#![warn(missing_docs)]

mod annot;
mod construct;
mod db;
mod dot;
mod encode;
mod error;
mod extract;
mod feasible;
mod fixtures;
mod handle;
mod index;
mod snapshot;

pub use annot::{ArcAnnotation, NodeAnnotation};
pub use construct::{apply_set, doem_from_history};
pub use db::{same_doem, DoemDatabase};
pub use dot::to_dot;
pub use encode::{decode_doem, encode_doem, EncodedDoem};
pub use error::{DoemError, Result};
pub use extract::extract_history;
pub use feasible::{feasibility, is_feasible, replay_consistent};
pub use fixtures::doem_figure4;
pub use handle::SharedDoem;
pub use index::{AnnotationIndex, TimeRange};
pub use snapshot::{current_snapshot, original_snapshot, snapshot_at};
