//! The DOEM database (Definition 3.1).
//!
//! A DOEM database is a triple `D = (O, fN, fA)`: an OEM graph plus maps
//! assigning each node a finite set of node annotations and each arc a
//! finite set of arc annotations. Removed arcs are *not* deleted from the
//! graph — they carry a `rem` annotation instead — so the one graph holds
//! the complete history (the snapshot-delta approach of Section 1.3).
//!
//! Because removed arcs linger, the underlying graph intentionally relaxes
//! two OEM invariants: an atomic node may still have (removed) outgoing
//! arcs, and "reachability" counts removed arcs. [`DoemDatabase::check_invariants`]
//! checks the DOEM-specific well-formedness rules instead.

use crate::{ArcAnnotation, DoemError, NodeAnnotation, Result};
use oem::{ArcTriple, Label, NodeId, OemDatabase, PMap, Timestamp, Value};
use std::fmt;

/// The arc annotations of one parent, bucketed as `(label, child, anns)`.
type ArcBucket = Vec<(Label, NodeId, Vec<ArcAnnotation>)>;

/// A DOEM database: an annotated OEM graph.
///
/// Both annotation maps are persistent PATRICIA maps ([`oem::PMap`]), so
/// cloning a `DoemDatabase` shares structure with the original and a
/// subsequent mutation copies only the touched spine — annotation lookups
/// compose with versioned reads of the underlying graph (DESIGN.md §14).
/// Arc annotations are bucketed per parent node, keyed by the parent's raw
/// id, which keeps iteration order deterministic without hashing triples.
#[derive(Clone, Debug)]
pub struct DoemDatabase {
    graph: OemDatabase,
    node_ann: PMap<Vec<NodeAnnotation>>,
    arc_ann: PMap<ArcBucket>,
}

impl DoemDatabase {
    /// Wrap a snapshot with empty annotation sets (the `D0` of Section 3.1).
    pub fn from_snapshot(snapshot: &OemDatabase) -> DoemDatabase {
        DoemDatabase {
            graph: snapshot.clone(),
            node_ann: PMap::new(),
            arc_ann: PMap::new(),
        }
    }

    /// The underlying annotated graph. Its arcs include removed
    /// (`rem`-annotated) arcs; its values are the *current* values.
    pub fn graph(&self) -> &OemDatabase {
        &self.graph
    }

    /// The database name.
    pub fn name(&self) -> &str {
        self.graph.name()
    }

    /// Rename the database.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.graph.set_name(name);
    }

    /// The root object.
    pub fn root(&self) -> NodeId {
        self.graph.root()
    }

    /// The annotations of node `n`, in time order (`fN(n)`).
    pub fn node_annotations(&self, n: NodeId) -> &[NodeAnnotation] {
        self.node_ann.get(n.raw()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The annotations of arc `a`, in time order (`fA(a)`).
    pub fn arc_annotations(&self, a: ArcTriple) -> &[ArcAnnotation] {
        self.arc_ann
            .get(a.parent.raw())
            .and_then(|bucket| {
                bucket
                    .iter()
                    .find(|(l, c, _)| *l == a.label && *c == a.child)
            })
            .map(|(_, _, anns)| anns.as_slice())
            .unwrap_or(&[])
    }

    /// Nodes that carry at least one annotation.
    pub fn annotated_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ann.keys().map(NodeId::from_raw)
    }

    /// Arcs that carry at least one annotation.
    pub fn annotated_arcs(&self) -> impl Iterator<Item = ArcTriple> + '_ {
        self.arc_ann.iter().flat_map(|(p, bucket)| {
            bucket
                .iter()
                .map(move |(l, c, _)| ArcTriple::new(NodeId::from_raw(p), *l, *c))
        })
    }

    /// The node's `cre` timestamp, if it was created during the recorded
    /// history (nodes of the original snapshot have none).
    pub fn created_at(&self, n: NodeId) -> Option<Timestamp> {
        self.node_annotations(n).iter().find_map(|a| match a {
            NodeAnnotation::Cre(t) => Some(*t),
            _ => None,
        })
    }

    /// The node's `upd` annotations, in time order.
    pub fn updates_of(&self, n: NodeId) -> impl Iterator<Item = (Timestamp, &Value)> {
        self.node_annotations(n).iter().filter_map(|a| match a {
            NodeAnnotation::Upd { at, old } => Some((*at, old)),
            _ => None,
        })
    }

    /// The implicit *new* value of the `upd` at time `at` on node `n`
    /// (Section 4.2): the old value of the temporally next `upd`, or the
    /// node's current value if none follows.
    pub fn new_value_of_update(&self, n: NodeId, at: Timestamp) -> Option<Value> {
        let upds: Vec<(Timestamp, &Value)> = self.updates_of(n).collect();
        let idx = upds.iter().position(|(t, _)| *t == at)?;
        Some(match upds.get(idx + 1) {
            Some((_, next_old)) => (*next_old).clone(),
            None => self.graph.value(n).ok()?.clone(),
        })
    }

    /// Whether the arc is in the *current* snapshot: present in the graph
    /// and its temporally last annotation (if any) is not `rem`.
    pub fn arc_is_current(&self, a: ArcTriple) -> bool {
        self.graph.contains_arc(a)
            && !matches!(
                self.arc_annotations(a).last(),
                Some(ArcAnnotation::Rem(_))
            )
    }

    /// Whether the arc existed at time `t` (Section 3.2, corrected for
    /// arcs whose earliest annotation is a *later* `add`; see DESIGN.md).
    ///
    /// Rules: with no annotation at or before `t`, the arc existed iff its
    /// earliest annotation overall is `rem` or it has no annotations
    /// (i.e. it is an original arc). Otherwise, it existed iff the latest
    /// annotation at or before `t` is `add`.
    pub fn arc_existed_at(&self, a: ArcTriple, t: Timestamp) -> bool {
        if !self.graph.contains_arc(a) {
            return false;
        }
        let anns = self.arc_annotations(a);
        match anns.iter().rev().find(|ann| ann.at() <= t) {
            Some(ann) => ann.is_add(),
            None => match anns.first() {
                None => true,
                Some(first) => first.is_rem(),
            },
        }
    }

    /// The value of node `n` at time `t` (Section 3.2, step 1), or `None`
    /// if `n` did not exist at `t` (created later) or is unknown.
    pub fn value_at(&self, n: NodeId, t: Timestamp) -> Option<Value> {
        let current = self.graph.value(n).ok()?;
        if let Some(created) = self.created_at(n) {
            if created > t {
                return None;
            }
        }
        let upds: Vec<(Timestamp, &Value)> = self.updates_of(n).collect();
        match upds.iter().find(|(ti, _)| *ti > t) {
            // The earliest update *after* t holds the value as of t.
            Some((_, old)) => Some((*old).clone()),
            None => Some(current.clone()),
        }
    }

    /// Every timestamp occurring in any annotation, ascending and distinct.
    pub fn timestamps(&self) -> Vec<Timestamp> {
        let mut ts: Vec<Timestamp> = self
            .node_ann
            .values()
            .flatten()
            .map(NodeAnnotation::at)
            .chain(
                self.arc_ann
                    .values()
                    .flat_map(|bucket| bucket.iter().flat_map(|(_, _, anns)| anns))
                    .map(ArcAnnotation::at),
            )
            .collect();
        ts.sort();
        ts.dedup();
        ts
    }

    /// Total number of annotations (nodes + arcs).
    pub fn annotation_count(&self) -> usize {
        self.node_ann.values().map(Vec::len).sum::<usize>()
            + self
                .arc_ann
                .values()
                .flat_map(|bucket| bucket.iter().map(|(_, _, anns)| anns.len()))
                .sum::<usize>()
    }

    /// The annotation list of node `n`, created empty on first use.
    fn node_anns_mut(&mut self, n: NodeId) -> &mut Vec<NodeAnnotation> {
        let key = n.raw();
        if !self.node_ann.contains_key(key) {
            self.node_ann.insert(key, Vec::new());
        }
        self.node_ann.get_mut(key).expect("just inserted")
    }

    /// The annotation list of arc `a`, created empty on first use.
    fn arc_anns_mut(&mut self, a: ArcTriple) -> &mut Vec<ArcAnnotation> {
        let key = a.parent.raw();
        if !self.arc_ann.contains_key(key) {
            self.arc_ann.insert(key, Vec::new());
        }
        let bucket = self.arc_ann.get_mut(key).expect("just inserted");
        let at = match bucket
            .iter()
            .position(|(l, c, _)| *l == a.label && *c == a.child)
        {
            Some(i) => i,
            None => {
                bucket.push((a.label, a.child, Vec::new()));
                bucket.len() - 1
            }
        };
        &mut bucket[at].2
    }

    // ---- recording (used by construction and the QSS DOEM manager) ----

    /// Record `creNode(n, v)` at time `t`: create the node and attach
    /// `cre(t)`.
    pub fn record_create(&mut self, n: NodeId, v: Value, t: Timestamp) -> Result<()> {
        self.graph.create_node_with_id(n, v)?;
        self.node_anns_mut(n).push(NodeAnnotation::Cre(t));
        Ok(())
    }

    /// Record `updNode(n, v)` at time `t`: attach `upd(t, old)` and set the
    /// new value.
    pub fn record_update(&mut self, n: NodeId, v: Value, t: Timestamp) -> Result<()> {
        let old = self.graph.value(n)?.clone();
        self.graph.set_value(n, v)?;
        self.node_anns_mut(n).push(NodeAnnotation::Upd { at: t, old });
        Ok(())
    }

    /// Record `addArc(a)` at time `t`. If the arc is entirely new it is
    /// inserted with an `add(t)` annotation; if it is present but removed
    /// (history `… rem`), the `add(t)` reopens it.
    pub fn record_add(&mut self, a: ArcTriple, t: Timestamp) -> Result<()> {
        if !self.graph.contains_arc(a) {
            self.graph.insert_arc(a)?;
        }
        self.arc_anns_mut(a).push(ArcAnnotation::Add(t));
        Ok(())
    }

    /// Record `remArc(a)` at time `t`: the arc *stays* in the graph and
    /// gains a `rem(t)` annotation.
    pub fn record_remove(&mut self, a: ArcTriple, t: Timestamp) -> Result<()> {
        if !self.graph.contains_arc(a) {
            return Err(DoemError::Oem(oem::OemError::NoSuchArc(a)));
        }
        self.arc_anns_mut(a).push(ArcAnnotation::Rem(t));
        Ok(())
    }

    // ---- structural attachment (used by the Section 5.1 decoder) ----
    //
    // These do *not* re-play history semantics: they splice annotations and
    // arcs into the representation as-is. Callers are expected to finish
    // with `check_invariants`.

    /// Attach an arc to the annotated graph if not already present (no
    /// annotation is added).
    pub fn attach_arc(&mut self, a: ArcTriple) -> Result<()> {
        if !self.graph.contains_arc(a) {
            self.graph.insert_arc(a)?;
        }
        Ok(())
    }

    /// Append a node annotation verbatim.
    pub fn attach_node_annotation(&mut self, n: NodeId, ann: NodeAnnotation) -> Result<()> {
        if !self.graph.contains_node(n) {
            return Err(DoemError::Oem(oem::OemError::NoSuchNode(n)));
        }
        self.node_anns_mut(n).push(ann);
        Ok(())
    }

    /// Append an arc annotation verbatim.
    pub fn attach_arc_annotation(&mut self, a: ArcTriple, ann: ArcAnnotation) -> Result<()> {
        if !self.graph.contains_arc(a) {
            return Err(DoemError::Oem(oem::OemError::NoSuchArc(a)));
        }
        self.arc_anns_mut(a).push(ann);
        Ok(())
    }

    /// Drop nodes unreachable in the annotated graph (counting removed
    /// arcs), along with their annotations. Mirrors OEM's change-set
    /// boundary GC: a node kept reachable only by a removed arc *survives*
    /// here — its history is still part of the database.
    pub fn collect_garbage(&mut self) -> Vec<NodeId> {
        let dead = self.graph.collect_garbage();
        for n in &dead {
            self.node_ann.remove(n.raw());
            self.arc_ann.remove(n.raw());
        }
        // Prune annotations of arcs the graph no longer contains (the
        // surviving parents' buckets may reference collected children).
        let graph = &self.graph;
        let stale: Vec<(u64, ArcBucket)> = self
            .arc_ann
            .iter()
            .filter_map(|(p, bucket)| {
                let parent = NodeId::from_raw(p);
                let kept: ArcBucket = bucket
                    .iter()
                    .filter(|(l, c, _)| graph.contains_arc(ArcTriple::new(parent, *l, *c)))
                    .cloned()
                    .collect();
                (kept.len() != bucket.len()).then_some((p, kept))
            })
            .collect();
        for (p, kept) in stale {
            if kept.is_empty() {
                self.arc_ann.remove(p);
            } else {
                self.arc_ann.insert(p, kept);
            }
        }
        dead
    }

    /// Validate the DOEM well-formedness rules:
    /// at most one `cre` per node and it must be first; `upd` timestamps
    /// strictly increasing; arc annotations strictly increasing and
    /// alternating `add`/`rem`; no annotation precedes its node's creation;
    /// annotations only on existing nodes/arcs.
    pub fn check_invariants(&self) -> Result<()> {
        for (raw, anns) in &self.node_ann {
            let n = NodeId::from_raw(raw);
            if !self.graph.contains_node(n) {
                return Err(DoemError::Oem(oem::OemError::NoSuchNode(n)));
            }
            let mut cre_at: Option<Timestamp> = None;
            let mut last_upd: Option<Timestamp> = None;
            for (i, a) in anns.iter().enumerate() {
                match a {
                    NodeAnnotation::Cre(t) => {
                        if i != 0 || cre_at.is_some() {
                            return Err(DoemError::BadCreAnnotation(n));
                        }
                        cre_at = Some(*t);
                    }
                    NodeAnnotation::Upd { at, .. } => {
                        if let Some(prev) = last_upd {
                            if *at <= prev {
                                return Err(DoemError::UnorderedUpdAnnotations(n));
                            }
                        }
                        if let Some(c) = cre_at {
                            if *at < c {
                                return Err(DoemError::AnnotationBeforeCreation {
                                    node: n,
                                    created: c,
                                    annotated: *at,
                                });
                            }
                        }
                        last_upd = Some(*at);
                    }
                }
            }
        }
        for (praw, bucket) in &self.arc_ann {
            let parent = NodeId::from_raw(praw);
            for (l, c, anns) in bucket {
                let arc = ArcTriple::new(parent, *l, *c);
                if !self.graph.contains_arc(arc) {
                    return Err(DoemError::Oem(oem::OemError::NoSuchArc(arc)));
                }
                let mut prev: Option<&ArcAnnotation> = None;
                for a in anns {
                    if let Some(p) = prev {
                        if a.at() <= p.at() || a.is_add() == p.is_add() {
                            return Err(DoemError::BadArcAnnotations(arc));
                        }
                    }
                    prev = Some(a);
                }
            }
        }
        Ok(())
    }
}

/// Identity-level equality of two DOEM databases: same graph (ids, values,
/// arcs) and same annotation maps. This is the equality used by the
/// feasibility test `D(O0(D), H(D)) = D`.
pub fn same_doem(a: &DoemDatabase, b: &DoemDatabase) -> bool {
    if !oem::same_database(a.graph(), b.graph()) {
        return false;
    }
    let nodes_match = a.graph().node_ids().all(|n| {
        a.node_annotations(n) == b.node_annotations(n)
    });
    let arcs_match = a
        .graph()
        .arcs()
        .all(|arc| a.arc_annotations(arc) == b.arc_annotations(arc));
    nodes_match && arcs_match
}

impl fmt::Display for DoemDatabase {
    /// Shows the annotated graph: the textual OEM form followed by the
    /// annotation table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.graph)?;
        // PMap iteration is ascending in the raw id, so nodes come out sorted.
        for n in self.annotated_nodes() {
            let anns: Vec<String> = self.node_annotations(n).iter().map(|a| a.to_string()).collect();
            writeln!(f, "{n}: {}", anns.join(", "))?;
        }
        let mut arcs: Vec<ArcTriple> = self.annotated_arcs().collect();
        arcs.sort();
        for a in arcs {
            let anns: Vec<String> = self.arc_annotations(a).iter().map(|x| x.to_string()).collect();
            writeln!(f, "{a}: {}", anns.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::GraphBuilder;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn tiny() -> (DoemDatabase, NodeId, NodeId) {
        let mut b = GraphBuilder::new("g");
        let root = b.root();
        let r = b.complex_child(root, "restaurant");
        let p = b.atom_child(r, "price", 10);
        let db = b.finish();
        (DoemDatabase::from_snapshot(&db), r, p)
    }

    #[test]
    fn fresh_doem_has_no_annotations() {
        let (d, _, p) = tiny();
        assert_eq!(d.annotation_count(), 0);
        assert!(d.node_annotations(p).is_empty());
        assert!(d.timestamps().is_empty());
        d.check_invariants().unwrap();
    }

    #[test]
    fn record_update_keeps_old_value() {
        let (mut d, _, p) = tiny();
        d.record_update(p, Value::Int(20), ts("1Jan97")).unwrap();
        assert_eq!(d.graph().value(p).unwrap(), &Value::Int(20));
        assert_eq!(
            d.node_annotations(p),
            &[NodeAnnotation::Upd {
                at: ts("1Jan97"),
                old: Value::Int(10)
            }]
        );
        d.check_invariants().unwrap();
    }

    #[test]
    fn removed_arc_stays_with_rem_annotation() {
        let (mut d, r, p) = tiny();
        let arc = ArcTriple::new(r, "price", p);
        d.record_remove(arc, ts("8Jan97")).unwrap();
        assert!(d.graph().contains_arc(arc));
        assert!(!d.arc_is_current(arc));
        assert!(d.arc_existed_at(arc, ts("7Jan97")));
        assert!(!d.arc_existed_at(arc, ts("8Jan97")));
        d.check_invariants().unwrap();
    }

    #[test]
    fn re_added_arc_alternates() {
        let (mut d, r, p) = tiny();
        let arc = ArcTriple::new(r, "price", p);
        d.record_remove(arc, ts("2Jan97")).unwrap();
        d.record_add(arc, ts("4Jan97")).unwrap();
        assert!(d.arc_is_current(arc));
        assert!(d.arc_existed_at(arc, ts("1Jan97"))); // original
        assert!(!d.arc_existed_at(arc, ts("3Jan97"))); // removed window
        assert!(d.arc_existed_at(arc, ts("5Jan97"))); // re-added
        d.check_invariants().unwrap();
    }

    #[test]
    fn arc_added_later_did_not_exist_before() {
        let (mut d, r, _) = tiny();
        let mut g2 = d.graph().clone();
        let c = g2.alloc_id();
        d.record_create(c, Value::str("note"), ts("5Jan97")).unwrap();
        let arc = ArcTriple::new(r, "comment", c);
        d.record_add(arc, ts("5Jan97")).unwrap();
        assert!(!d.arc_existed_at(arc, ts("4Jan97")));
        assert!(d.arc_existed_at(arc, ts("5Jan97")));
        d.check_invariants().unwrap();
    }

    #[test]
    fn value_at_reconstructs_old_values() {
        let (mut d, _, p) = tiny();
        d.record_update(p, Value::Int(20), ts("1Jan97")).unwrap();
        d.record_update(p, Value::Int(30), ts("5Jan97")).unwrap();
        assert_eq!(d.value_at(p, ts("31Dec96")), Some(Value::Int(10)));
        assert_eq!(d.value_at(p, ts("1Jan97")), Some(Value::Int(20)));
        assert_eq!(d.value_at(p, ts("3Jan97")), Some(Value::Int(20)));
        assert_eq!(d.value_at(p, ts("5Jan97")), Some(Value::Int(30)));
        assert_eq!(d.value_at(p, Timestamp::INFINITY), Some(Value::Int(30)));
    }

    #[test]
    fn value_at_is_none_before_creation() {
        let (mut d, r, _) = tiny();
        let mut scratch = d.graph().clone();
        let c = scratch.alloc_id();
        d.record_create(c, Value::Int(1), ts("5Jan97")).unwrap();
        d.record_add(ArcTriple::new(r, "new", c), ts("5Jan97")).unwrap();
        assert_eq!(d.value_at(c, ts("4Jan97")), None);
        assert_eq!(d.value_at(c, ts("5Jan97")), Some(Value::Int(1)));
    }

    #[test]
    fn new_value_of_update_chains_through_upds() {
        let (mut d, _, p) = tiny();
        d.record_update(p, Value::Int(20), ts("1Jan97")).unwrap();
        d.record_update(p, Value::Int(30), ts("5Jan97")).unwrap();
        assert_eq!(
            d.new_value_of_update(p, ts("1Jan97")),
            Some(Value::Int(20))
        );
        assert_eq!(
            d.new_value_of_update(p, ts("5Jan97")),
            Some(Value::Int(30))
        );
        assert_eq!(d.new_value_of_update(p, ts("2Jan97")), None);
    }

    #[test]
    fn timestamps_are_sorted_and_distinct() {
        let (mut d, r, p) = tiny();
        d.record_update(p, Value::Int(20), ts("5Jan97")).unwrap();
        d.record_remove(ArcTriple::new(r, "price", p), ts("8Jan97"))
            .unwrap();
        let mut g2 = d.graph().clone();
        let c = g2.alloc_id();
        d.record_create(c, Value::Int(5), ts("8Jan97")).unwrap();
        d.record_add(ArcTriple::new(r, "rating", c), ts("8Jan97"))
            .unwrap();
        assert_eq!(d.timestamps(), vec![ts("5Jan97"), ts("8Jan97")]);
    }

    #[test]
    fn invariants_catch_double_cre() {
        let (mut d, r, _) = tiny();
        let _ = r;
        let mut g2 = d.graph().clone();
        let c = g2.alloc_id();
        d.record_create(c, Value::Int(1), ts("1Jan97")).unwrap();
        d.record_add(ArcTriple::new(d.root(), "x", c), ts("1Jan97"))
            .unwrap();
        // Corrupt: force a second cre.
        d.node_anns_mut(c).push(NodeAnnotation::Cre(ts("2Jan97")));
        assert!(matches!(
            d.check_invariants(),
            Err(DoemError::BadCreAnnotation(_))
        ));
    }

    #[test]
    fn invariants_catch_nonalternating_arcs() {
        let (mut d, r, p) = tiny();
        let arc = ArcTriple::new(r, "price", p);
        d.record_remove(arc, ts("1Jan97")).unwrap();
        d.arc_anns_mut(arc).push(ArcAnnotation::Rem(ts("2Jan97")));
        assert!(matches!(
            d.check_invariants(),
            Err(DoemError::BadArcAnnotations(_))
        ));
    }

    #[test]
    fn same_doem_distinguishes_annotations() {
        let (d1, _, _) = tiny();
        let (mut d2, _, p) = tiny();
        assert!(same_doem(&d1, &d2));
        d2.record_update(p, Value::Int(99), ts("1Jan97")).unwrap();
        assert!(!same_doem(&d1, &d2));
    }

    #[test]
    fn gc_drops_annotations_of_dead_nodes() {
        let (mut d, r, _) = tiny();
        let mut g2 = d.graph().clone();
        let orphan = g2.alloc_id();
        let _ = r;
        d.record_create(orphan, Value::Int(9), ts("1Jan97")).unwrap();
        // Never linked: unreachable even through removed arcs.
        let dead = d.collect_garbage();
        assert_eq!(dead, vec![orphan]);
        assert!(d.node_annotations(orphan).is_empty());
        d.check_invariants().unwrap();
    }

    #[test]
    fn gc_keeps_nodes_reachable_only_via_removed_arcs() {
        let (mut d, r, p) = tiny();
        d.record_remove(ArcTriple::new(r, "price", p), ts("8Jan97"))
            .unwrap();
        assert!(d.collect_garbage().is_empty());
        assert!(d.graph().contains_node(p));
    }
}
