//! Annotation indexes (paper Section 7, "Designing indexes on annotations
//! (based on their types and timestamps)").
//!
//! [`AnnotationIndex`] maps each annotation kind to a time-ordered index of
//! the nodes/arcs annotated at each timestamp, answering the access pattern
//! of Chorel change queries ("everything added before 4Jan97", "updates
//! since the last poll") without scanning the whole database. The index
//! ablation benchmark (EXPERIMENTS.md, X2) quantifies the benefit.

use crate::{ArcAnnotation, DoemDatabase, NodeAnnotation};
use oem::{ArcTriple, NodeId, Timestamp};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A time/type index over all annotations of a DOEM database.
#[derive(Clone, Debug, Default)]
pub struct AnnotationIndex {
    cre: BTreeMap<Timestamp, Vec<NodeId>>,
    upd: BTreeMap<Timestamp, Vec<NodeId>>,
    add: BTreeMap<Timestamp, Vec<ArcTriple>>,
    rem: BTreeMap<Timestamp, Vec<ArcTriple>>,
}

/// A half-open/closed time window `[since, until]` with optional bounds.
#[derive(Clone, Copy, Debug)]
pub struct TimeRange {
    /// Inclusive lower bound (`-∞` if `None`).
    pub since: Option<Timestamp>,
    /// Inclusive upper bound (`+∞` if `None`).
    pub until: Option<Timestamp>,
}

impl TimeRange {
    /// The unbounded range.
    pub fn all() -> TimeRange {
        TimeRange {
            since: None,
            until: None,
        }
    }

    /// `[since, +∞)`.
    pub fn since(t: Timestamp) -> TimeRange {
        TimeRange {
            since: Some(t),
            until: None,
        }
    }

    /// `(-∞, until]`.
    pub fn until(t: Timestamp) -> TimeRange {
        TimeRange {
            since: None,
            until: Some(t),
        }
    }

    /// `[since, until]`.
    pub fn between(since: Timestamp, until: Timestamp) -> TimeRange {
        TimeRange {
            since: Some(since),
            until: Some(until),
        }
    }

    fn bounds(self) -> (Bound<Timestamp>, Bound<Timestamp>) {
        (
            self.since.map_or(Bound::Unbounded, Bound::Included),
            self.until.map_or(Bound::Unbounded, Bound::Included),
        )
    }
}

impl AnnotationIndex {
    /// Build the index by one scan over `d`'s annotations.
    pub fn build(d: &DoemDatabase) -> AnnotationIndex {
        let mut idx = AnnotationIndex::default();
        for n in d.annotated_nodes() {
            for ann in d.node_annotations(n) {
                idx.record_node(n, ann);
            }
        }
        for arc in d.annotated_arcs() {
            for ann in d.arc_annotations(arc) {
                idx.record_arc(arc, ann);
            }
        }
        idx
    }

    /// Incrementally index one node annotation (used by the QSS DOEM
    /// manager as polling appends history).
    pub fn record_node(&mut self, n: NodeId, ann: &NodeAnnotation) {
        match ann {
            NodeAnnotation::Cre(t) => self.cre.entry(*t).or_default().push(n),
            NodeAnnotation::Upd { at, .. } => self.upd.entry(*at).or_default().push(n),
        }
    }

    /// Incrementally index one arc annotation.
    pub fn record_arc(&mut self, arc: ArcTriple, ann: &ArcAnnotation) {
        match ann {
            ArcAnnotation::Add(t) => self.add.entry(*t).or_default().push(arc),
            ArcAnnotation::Rem(t) => self.rem.entry(*t).or_default().push(arc),
        }
    }

    /// Nodes with a `cre` annotation in `range`, with their timestamps.
    pub fn created_in(&self, range: TimeRange) -> impl Iterator<Item = (Timestamp, NodeId)> + '_ {
        self.cre
            .range(range.bounds())
            .flat_map(|(&t, ns)| ns.iter().map(move |&n| (t, n)))
    }

    /// Nodes with an `upd` annotation in `range`.
    pub fn updated_in(&self, range: TimeRange) -> impl Iterator<Item = (Timestamp, NodeId)> + '_ {
        self.upd
            .range(range.bounds())
            .flat_map(|(&t, ns)| ns.iter().map(move |&n| (t, n)))
    }

    /// Arcs with an `add` annotation in `range`.
    pub fn added_in(&self, range: TimeRange) -> impl Iterator<Item = (Timestamp, ArcTriple)> + '_ {
        self.add
            .range(range.bounds())
            .flat_map(|(&t, arcs)| arcs.iter().map(move |&a| (t, a)))
    }

    /// Arcs with a `rem` annotation in `range`.
    pub fn removed_in(
        &self,
        range: TimeRange,
    ) -> impl Iterator<Item = (Timestamp, ArcTriple)> + '_ {
        self.rem
            .range(range.bounds())
            .flat_map(|(&t, arcs)| arcs.iter().map(move |&a| (t, a)))
    }

    /// Total number of indexed annotations.
    pub fn len(&self) -> usize {
        self.cre.values().map(Vec::len).sum::<usize>()
            + self.upd.values().map(Vec::len).sum::<usize>()
            + self.add.values().map(Vec::len).sum::<usize>()
            + self.rem.values().map(Vec::len).sum::<usize>()
    }

    /// `true` iff nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doem_figure4;
    use oem::guide::ids;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn index_covers_every_annotation() {
        let d = doem_figure4();
        let idx = AnnotationIndex::build(&d);
        assert_eq!(idx.len(), d.annotation_count());
        assert!(!idx.is_empty());
    }

    #[test]
    fn created_in_filters_by_time() {
        let idx = AnnotationIndex::build(&doem_figure4());
        // n2 and n3 created 1Jan97; n5 created 5Jan97.
        let before_4th: Vec<NodeId> = idx
            .created_in(TimeRange::until(ts("4Jan97")))
            .map(|(_, n)| n)
            .collect();
        assert_eq!(before_4th.len(), 2);
        assert!(before_4th.contains(&ids::N2) && before_4th.contains(&ids::N3));
        let after_4th: Vec<NodeId> = idx
            .created_in(TimeRange::since(ts("4Jan97")))
            .map(|(_, n)| n)
            .collect();
        assert_eq!(after_4th, vec![ids::N5]);
    }

    #[test]
    fn add_and_rem_ranges() {
        let idx = AnnotationIndex::build(&doem_figure4());
        assert_eq!(idx.added_in(TimeRange::all()).count(), 3);
        let removed: Vec<_> = idx
            .removed_in(TimeRange::between(ts("8Jan97"), ts("8Jan97")))
            .collect();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].1.parent, ids::N6);
    }

    #[test]
    fn updated_in_finds_the_price_change() {
        let idx = AnnotationIndex::build(&doem_figure4());
        let upd: Vec<_> = idx.updated_in(TimeRange::all()).collect();
        assert_eq!(upd, vec![(ts("1Jan97"), ids::N1)]);
    }

    #[test]
    fn incremental_recording_matches_bulk_build() {
        let d = doem_figure4();
        let bulk = AnnotationIndex::build(&d);
        let mut inc = AnnotationIndex::default();
        for n in d.annotated_nodes() {
            for ann in d.node_annotations(n) {
                inc.record_node(n, ann);
            }
        }
        for a in d.annotated_arcs() {
            for ann in d.arc_annotations(a) {
                inc.record_arc(a, ann);
            }
        }
        assert_eq!(bulk.len(), inc.len());
        assert_eq!(
            bulk.created_in(TimeRange::all()).count(),
            inc.created_in(TimeRange::all()).count()
        );
    }
}
