//! Encoding DOEM databases in plain OEM (Section 5.1) and decoding back.
//!
//! Every DOEM object `o` becomes a *complex* encoding object `o'` (even
//! atomic ones, so their history can hang off them) with special
//! `&`-prefixed subobjects:
//!
//! * `&val` — the current value (a self-arc for complex objects);
//! * `&cre` — the creation timestamp, if any;
//! * `&upd` — one complex subobject per `upd` annotation, with `&time`,
//!   `&ov` and (redundantly, for ease of translation) `&nv`;
//! * `l` — a direct arc for every arc present in the *current* snapshot;
//! * `&l-history` — one history object per arc `(o, l, p)`, with `&target`
//!   and the `&add` / `&rem` timestamps.
//!
//! Encoding objects keep their DOEM node's id (the paper leaves ids
//! abstract; preserving them makes `decode(encode(D)) = D` exact).
//! Auxiliary objects (values, timestamps, history objects) get fresh ids.

use crate::{ArcAnnotation, DoemDatabase, DoemError, NodeAnnotation, Result};
use oem::{ArcTriple, Label, NodeId, OemDatabase, Timestamp, Value};
use std::collections::HashMap;

/// The result of encoding: the OEM database plus the mapping from DOEM
/// nodes to their encoding objects (the identity mapping, kept explicit so
/// callers need not rely on that).
#[derive(Clone, Debug)]
pub struct EncodedDoem {
    /// The OEM encoding.
    pub oem: OemDatabase,
    /// DOEM node → encoding object.
    pub node_map: HashMap<NodeId, NodeId>,
}


/// `&l-history` label for a plain label `l`.
pub fn history_label(l: Label) -> Label {
    Label::new(&format!("&{}-history", l.as_str()))
}

/// Inverse of [`history_label`]: `Some(l)` if the label is `&l-history`.
pub fn plain_label(history: Label) -> Option<Label> {
    let s = history.as_str();
    let inner = s.strip_prefix('&')?.strip_suffix("-history")?;
    Some(Label::new(inner))
}

/// Encode `d` as a plain OEM database.
pub fn encode_doem(d: &DoemDatabase) -> EncodedDoem {
    let mut out = OemDatabase::with_root_id(d.name(), d.root());
    let mut node_map = HashMap::new();

    // Pass 1: materialize every encoding object with its DOEM id. All are
    // complex in the encoding.
    node_map.insert(d.root(), d.root());
    for n in d.graph().node_ids() {
        if n != d.root() {
            out.create_node_with_id(n, Value::Complex)
                .expect("DOEM ids are unique");
            node_map.insert(n, n);
        }
    }

    // Pass 2: per-object structure.
    for n in d.graph().node_ids() {
        let enc = node_map[&n];
        let value = d.graph().value(n).expect("iterating own ids");

        // &val
        if value.is_complex() {
            out.insert_arc(ArcTriple::new(enc, "&val", enc))
                .expect("self arc is fresh");
        } else {
            let v = out.create_node(value.clone());
            out.insert_arc(ArcTriple::new(enc, "&val", v))
                .expect("fresh value node");
        }

        // &cre / &upd
        for ann in d.node_annotations(n) {
            match ann {
                NodeAnnotation::Cre(t) => {
                    let tn = out.create_node(Value::Time(*t));
                    out.insert_arc(ArcTriple::new(enc, "&cre", tn))
                        .expect("fresh cre node");
                }
                NodeAnnotation::Upd { at, old } => {
                    let u = out.create_node(Value::Complex);
                    out.insert_arc(ArcTriple::new(enc, "&upd", u))
                        .expect("fresh upd node");
                    let tn = out.create_node(Value::Time(*at));
                    out.insert_arc(ArcTriple::new(u, "&time", tn))
                        .expect("fresh time node");
                    let ov = out.create_node(old.clone());
                    out.insert_arc(ArcTriple::new(u, "&ov", ov))
                        .expect("fresh ov node");
                    let nv_value = d
                        .new_value_of_update(n, *at)
                        .expect("upd annotations have implicit new values");
                    let nv = out.create_node(nv_value);
                    out.insert_arc(ArcTriple::new(u, "&nv", nv))
                        .expect("fresh nv node");
                }
            }
        }

        // Arcs: a direct `l` arc when current, and always an `&l-history`.
        for &(label, child) in d.graph().children(n) {
            let arc = ArcTriple::new(n, label, child);
            if d.arc_is_current(arc) {
                out.insert_arc(ArcTriple::new(enc, label, node_map[&child]))
                    .expect("current arc is fresh in the encoding");
            }
            let h = out.create_node(Value::Complex);
            out.insert_arc(ArcTriple::new(enc, history_label(label), h))
                .expect("fresh history object");
            out.insert_arc(ArcTriple::new(h, "&target", node_map[&child]))
                .expect("fresh target arc");
            for ann in d.arc_annotations(arc) {
                let (l, t) = match ann {
                    ArcAnnotation::Add(t) => ("&add", *t),
                    ArcAnnotation::Rem(t) => ("&rem", *t),
                };
                let tn = out.create_node(Value::Time(t));
                out.insert_arc(ArcTriple::new(h, l, tn))
                    .expect("fresh annotation timestamp");
            }
        }
    }

    debug_assert!(out.check_invariants().is_ok());
    EncodedDoem { oem: out, node_map }
}

fn single_child(
    oem: &OemDatabase,
    n: NodeId,
    label: &str,
) -> std::result::Result<Option<NodeId>, DoemError> {
    let mut it = oem.children_labeled(n, Label::new(label));
    let first = it.next();
    if it.next().is_some() {
        return Err(DoemError::MalformedEncoding(format!(
            "object {n} has multiple {label} subobjects"
        )));
    }
    Ok(first)
}

fn required_child(oem: &OemDatabase, n: NodeId, label: &str) -> Result<NodeId> {
    single_child(oem, n, label)?.ok_or_else(|| {
        DoemError::MalformedEncoding(format!("object {n} is missing its {label} subobject"))
    })
}

fn time_value(oem: &OemDatabase, n: NodeId) -> Result<Timestamp> {
    match oem.value(n) {
        Ok(Value::Time(t)) => Ok(*t),
        other => Err(DoemError::MalformedEncoding(format!(
            "expected a timestamp value, found {other:?}"
        ))),
    }
}

/// Decode a Section 5.1 encoding back into a DOEM database. Exact inverse
/// of [`encode_doem`]: ids, values, annotations and arc order are restored.
pub fn decode_doem(encoded: &OemDatabase) -> Result<DoemDatabase> {
    // Encoding objects are exactly the nodes carrying a &val subobject.
    let val_label = Label::new("&val");
    let enc_nodes: Vec<NodeId> = encoded
        .node_ids()
        .filter(|&n| encoded.children_labeled(n, val_label).next().is_some())
        .collect();
    if !enc_nodes.contains(&encoded.root()) {
        return Err(DoemError::MalformedEncoding(
            "root has no &val subobject".to_string(),
        ));
    }

    let mut graph = OemDatabase::with_root_id(encoded.name(), encoded.root());
    // Materialize nodes with their decoded values.
    for &n in &enc_nodes {
        let val_node = required_child(encoded, n, "&val")?;
        let value = if val_node == n {
            Value::Complex
        } else {
            encoded
                .value(val_node)
                .map_err(DoemError::Oem)?
                .clone()
        };
        if n == encoded.root() {
            graph.set_value(n, value).expect("root exists");
        } else {
            graph
                .create_node_with_id(n, value)
                .map_err(DoemError::Oem)?;
        }
    }

    let mut d = DoemDatabase::from_snapshot(&graph);
    // `from_snapshot` clones; rebuild on the wrapped graph via records.
    // Simpler: fill annotations directly through the record API where
    // possible; but records enforce *current* semantics (e.g. updates
    // change values), so we instead reconstruct annotations structurally.
    for &n in &enc_nodes {
        if let Some(cre) = single_child(encoded, n, "&cre")? {
            d.attach_node_annotation(n, NodeAnnotation::Cre(time_value(encoded, cre)?))?;
        }
        let mut upds: Vec<(Timestamp, Value)> = Vec::new();
        for u in encoded.children_labeled(n, Label::new("&upd")) {
            let t = time_value(encoded, required_child(encoded, u, "&time")?)?;
            let ov_node = required_child(encoded, u, "&ov")?;
            let ov = encoded.value(ov_node).map_err(DoemError::Oem)?.clone();
            upds.push((t, ov));
        }
        upds.sort_by_key(|(t, _)| *t);
        for (at, old) in upds {
            d.attach_node_annotation(n, NodeAnnotation::Upd { at, old })?;
        }

        // Arcs come from the history objects (every arc has one).
        for &(hlabel, h) in encoded.children(n) {
            let Some(label) = plain_label(hlabel) else {
                continue;
            };
            let target = required_child(encoded, h, "&target")?;
            let arc = ArcTriple::new(n, label, target);
            d.attach_arc(arc)?;
            let mut anns: Vec<ArcAnnotation> = Vec::new();
            for a in encoded.children_labeled(h, Label::new("&add")) {
                anns.push(ArcAnnotation::Add(time_value(encoded, a)?));
            }
            for r in encoded.children_labeled(h, Label::new("&rem")) {
                anns.push(ArcAnnotation::Rem(time_value(encoded, r)?));
            }
            anns.sort_by_key(|a| a.at());
            for ann in anns {
                d.attach_arc_annotation(arc, ann)?;
            }
        }
    }

    d.check_invariants()?;
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{doem_figure4, same_doem, DoemDatabase};
    use oem::guide::{guide_figure2, ids};

    #[test]
    fn figure5_shape_an_updated_atom() {
        // Figure 5's left object: o1 with value 5, cre(t1), upd(t2, ov 2).
        let mut b = oem::GraphBuilder::new("d");
        let root = b.root();
        let o1 = b.atom_child(root, "item", 2);
        let snapshot = b.finish();
        let h = oem::History::from_entries([
            (
                "2Jan97".parse().unwrap(),
                oem::ChangeSet::from_ops([oem::ChangeOp::UpdNode(o1, Value::Int(5))]).unwrap(),
            ),
        ])
        .unwrap();
        let d = crate::doem_from_history(&snapshot, &h).unwrap();
        let enc = encode_doem(&d);
        let oem_db = &enc.oem;
        let o1e = enc.node_map[&o1];

        // &val holds the *current* value 5.
        let val = oem_db
            .children_labeled(o1e, Label::new("&val"))
            .next()
            .unwrap();
        assert_eq!(oem_db.value(val).unwrap(), &Value::Int(5));

        // One &upd with &time/&ov/&nv = (t, 2, 5).
        let upd = oem_db
            .children_labeled(o1e, Label::new("&upd"))
            .next()
            .unwrap();
        let ov = oem_db
            .children_labeled(upd, Label::new("&ov"))
            .next()
            .unwrap();
        let nv = oem_db
            .children_labeled(upd, Label::new("&nv"))
            .next()
            .unwrap();
        assert_eq!(oem_db.value(ov).unwrap(), &Value::Int(2));
        assert_eq!(oem_db.value(nv).unwrap(), &Value::Int(5));
    }

    #[test]
    fn complex_objects_get_val_self_arcs() {
        let d = DoemDatabase::from_snapshot(&guide_figure2());
        let enc = encode_doem(&d);
        let root = enc.node_map[&d.root()];
        let val = enc
            .oem
            .children_labeled(root, Label::new("&val"))
            .next()
            .unwrap();
        assert_eq!(val, root, "&val of a complex object is a self arc");
    }

    #[test]
    fn removed_arcs_appear_only_in_history_objects() {
        let d = doem_figure4();
        let enc = encode_doem(&d);
        let janta = enc.node_map[&ids::N6];
        // No direct `parking` arc from Janta (it was removed) ...
        assert_eq!(
            enc.oem
                .children_labeled(janta, Label::new("parking"))
                .count(),
            0
        );
        // ... but a &parking-history object with a &rem timestamp exists.
        let h = enc
            .oem
            .children_labeled(janta, Label::new("&parking-history"))
            .next()
            .expect("history object");
        let rem = enc
            .oem
            .children_labeled(h, Label::new("&rem"))
            .next()
            .expect("&rem timestamp");
        assert_eq!(
            enc.oem.value(rem).unwrap(),
            &Value::Time("8Jan97".parse().unwrap())
        );
        // And its &target is the encoding of n7.
        let target = enc
            .oem
            .children_labeled(h, Label::new("&target"))
            .next()
            .unwrap();
        assert_eq!(target, enc.node_map[&ids::N7]);
    }

    #[test]
    fn current_arcs_appear_both_directly_and_in_history() {
        let d = doem_figure4();
        let enc = encode_doem(&d);
        let guide_root = enc.node_map[&ids::N4];
        // Three current restaurant arcs.
        assert_eq!(
            enc.oem
                .children_labeled(guide_root, Label::new("restaurant"))
                .count(),
            3
        );
        // And three history objects for them.
        assert_eq!(
            enc.oem
                .children_labeled(guide_root, Label::new("&restaurant-history"))
                .count(),
            3
        );
    }

    #[test]
    fn encoding_is_a_valid_oem_database() {
        let enc = encode_doem(&doem_figure4());
        enc.oem.check_invariants().unwrap();
    }

    #[test]
    fn decode_inverts_encode_exactly() {
        let d = doem_figure4();
        let enc = encode_doem(&d);
        let back = decode_doem(&enc.oem).unwrap();
        assert!(same_doem(&d, &back));
    }

    #[test]
    fn decode_inverts_encode_on_unannotated_databases() {
        let d = DoemDatabase::from_snapshot(&guide_figure2());
        let back = decode_doem(&encode_doem(&d).oem).unwrap();
        assert!(same_doem(&d, &back));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_doem(&guide_figure2()).is_err());
    }

    #[test]
    fn history_label_round_trip() {
        let l = Label::new("price");
        assert_eq!(history_label(l).as_str(), "&price-history");
        assert_eq!(plain_label(history_label(l)), Some(l));
        assert_eq!(plain_label(Label::new("price")), None);
        assert_eq!(plain_label(Label::new("&val")), None);
    }
}
