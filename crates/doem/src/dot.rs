//! Graphviz rendering of DOEM databases — the annotated-graph drawing of
//! the paper's Figure 4: annotations appear as note-shaped boxes attached
//! to their node or arc, removed arcs render dashed.

use crate::{ArcAnnotation, DoemDatabase, NodeAnnotation};
use oem::{ArcTriple, Value};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render `d` as a `digraph`, annotations included.
pub fn to_dot(d: &DoemDatabase) -> String {
    let g = d.graph();
    let mut out = String::new();
    writeln!(out, "digraph \"{}\" {{", escape(g.name())).expect("write to String");
    writeln!(out, "  rankdir=TB;").expect("write to String");

    for n in g.node_ids() {
        let value = g.value(n).expect("own id");
        let (shape, label) = match value {
            Value::Complex => ("circle", n.to_string()),
            v => ("box", format!("{n}\\n{}", escape(&v.to_string()))),
        };
        let root_mark = if n == g.root() { ", penwidth=2" } else { "" };
        writeln!(out, "  {n} [shape={shape}, label=\"{label}\"{root_mark}];")
            .expect("write to String");
        // Node annotations: one note box per annotation (Figure 4 style).
        for (i, ann) in d.node_annotations(n).iter().enumerate() {
            let text = match ann {
                NodeAnnotation::Cre(t) => format!("cre\\nt:{t}"),
                NodeAnnotation::Upd { at, old } => {
                    format!("upd\\nt:{at}\\nov:{}", escape(&old.to_string()))
                }
            };
            writeln!(
                out,
                "  ann_{n}_{i} [shape=note, fontsize=9, label=\"{text}\"];"
            )
            .expect("write to String");
            writeln!(out, "  ann_{n}_{i} -> {n} [style=dotted, arrowhead=none];")
                .expect("write to String");
        }
    }

    for (ai, arc) in g.arcs().enumerate() {
        let ArcTriple {
            parent,
            label,
            child,
        } = arc;
        let anns = d.arc_annotations(arc);
        let style = if d.arc_is_current(arc) {
            "solid"
        } else {
            "dashed"
        };
        writeln!(
            out,
            "  {parent} -> {child} [label=\"{}\", style={style}];",
            escape(label.as_str())
        )
        .expect("write to String");
        for (i, ann) in anns.iter().enumerate() {
            let text = match ann {
                ArcAnnotation::Add(t) => format!("add\\nt:{t}"),
                ArcAnnotation::Rem(t) => format!("rem\\nt:{t}"),
            };
            writeln!(
                out,
                "  arcann_{ai}_{i} [shape=note, fontsize=9, label=\"{text}\"];"
            )
            .expect("write to String");
            // Attach visually near the arc's parent.
            writeln!(
                out,
                "  arcann_{ai}_{i} -> {parent} [style=dotted, arrowhead=none];"
            )
            .expect("write to String");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doem_figure4;

    #[test]
    fn figure4_dot_shows_annotations_and_dashed_removal() {
        let d = doem_figure4();
        let dot = to_dot(&d);
        assert!(dot.contains("upd\\nt:1Jan97\\nov:10"), "{dot}");
        assert!(dot.contains("cre\\nt:5Jan97"), "{dot}");
        assert!(dot.contains("rem\\nt:8Jan97"), "{dot}");
        assert!(dot.contains("style=dashed"), "{dot}");
        // Annotation count matches the database.
        let notes = dot.matches("shape=note").count();
        assert_eq!(notes, d.annotation_count());
    }

    #[test]
    fn unannotated_doem_renders_solid() {
        let d = crate::DoemDatabase::from_snapshot(&oem::guide::guide_figure2());
        let dot = to_dot(&d);
        assert!(!dot.contains("shape=note"));
        assert!(!dot.contains("dashed"));
    }
}
