//! Constructing `D(O, H)` — the DOEM representation of an OEM database and
//! a valid history (Section 3.1).
//!
//! Construction is inductive: start from `D0` (the snapshot with empty
//! annotation sets); for each `(ti, Ui)` process the operations in a valid
//! order, mirroring each operation into the annotated graph:
//!
//! * `updNode` — perform the update *and* attach `upd(ti, old value)`;
//! * `creNode` / `addArc` — perform it and attach `cre(ti)` / `add(ti)`;
//! * `remArc` — do **not** remove the arc; attach `rem(ti)`.
//!
//! Validity of the history is checked against a parallel plain-OEM replica
//! that applies the operations with ordinary semantics (including
//! unreachability GC at change-set boundaries), because validity is defined
//! on the OEM side, not on the annotated graph.

use crate::{DoemDatabase, Result};
use oem::{ChangeOp, ChangeSet, History, OemDatabase, Timestamp};

/// Construct `D(O, H)`.
///
/// Fails if `H` is not valid for `O`; on failure the error names the first
/// operation whose precondition is violated.
pub fn doem_from_history(initial: &OemDatabase, history: &History) -> Result<DoemDatabase> {
    let mut replica = initial.clone();
    let mut doem = DoemDatabase::from_snapshot(initial);
    for entry in history.entries() {
        apply_set(&mut doem, &mut replica, &entry.changes, entry.at)?;
    }
    Ok(doem)
}

/// Apply one timestamped change set to an existing DOEM database, keeping
/// the plain-OEM `replica` in lockstep. Exposed for incremental use (the
/// QSS DOEM manager extends its DOEM database one polling interval at a
/// time).
pub fn apply_set(
    doem: &mut DoemDatabase,
    replica: &mut OemDatabase,
    changes: &ChangeSet,
    at: Timestamp,
) -> Result<()> {
    for op in changes.canonical_order() {
        // Validity is judged against the plain replica (paper semantics);
        // apply there first so ordering errors surface before the DOEM
        // graph is touched for this op.
        op.apply(replica)?;
        match op {
            ChangeOp::CreNode(n, v) => doem.record_create(*n, v.clone(), at)?,
            ChangeOp::UpdNode(n, v) => doem.record_update(*n, v.clone(), at)?,
            ChangeOp::AddArc(a) => doem.record_add(*a, at)?,
            ChangeOp::RemArc(a) => doem.record_remove(*a, at)?,
        }
    }
    replica.collect_garbage();
    // DOEM-side GC counts removed arcs as reachability, so only nodes with
    // no history ties (e.g. created and never linked) are dropped.
    doem.collect_garbage();
    debug_assert!(doem.check_invariants().is_ok());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArcAnnotation, NodeAnnotation};
    use oem::guide::{guide_figure2, history_example_2_3, ids};
    use oem::{ArcTriple, Value};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    /// The DOEM database of Figure 4 (Example 3.1).
    fn figure4() -> DoemDatabase {
        doem_from_history(&guide_figure2(), &history_example_2_3()).unwrap()
    }

    #[test]
    fn figure4_has_exactly_the_papers_annotations() {
        let d = figure4();
        d.check_invariants().unwrap();

        // upd(t:1Jan97, ov:10) on n1, and the current value is 20.
        assert_eq!(
            d.node_annotations(ids::N1),
            &[NodeAnnotation::Upd {
                at: ts("1Jan97"),
                old: Value::Int(10)
            }]
        );
        assert_eq!(d.graph().value(ids::N1).unwrap(), &Value::Int(20));

        // cre(t:1Jan97) on n2 and n3; cre(t:5Jan97) on n5.
        assert_eq!(d.node_annotations(ids::N2), &[NodeAnnotation::Cre(ts("1Jan97"))]);
        assert_eq!(d.node_annotations(ids::N3), &[NodeAnnotation::Cre(ts("1Jan97"))]);
        assert_eq!(d.node_annotations(ids::N5), &[NodeAnnotation::Cre(ts("5Jan97"))]);

        // add annotations on the three new arcs.
        for (arc, t) in [
            (ArcTriple::new(ids::N4, "restaurant", ids::N2), "1Jan97"),
            (ArcTriple::new(ids::N2, "name", ids::N3), "1Jan97"),
            (ArcTriple::new(ids::N2, "comment", ids::N5), "5Jan97"),
        ] {
            assert_eq!(d.arc_annotations(arc), &[ArcAnnotation::Add(ts(t))]);
        }

        // rem(t:8Jan97) on Janta's parking arc — which is still in the graph.
        let parking = ArcTriple::new(ids::N6, "parking", ids::N7);
        assert_eq!(d.arc_annotations(parking), &[ArcAnnotation::Rem(ts("8Jan97"))]);
        assert!(d.graph().contains_arc(parking));
        assert!(!d.arc_is_current(parking));

        // Exactly 8 annotations in total (1 upd + 3 cre + 3 add + 1 rem).
        assert_eq!(d.annotation_count(), 8);

        // Original nodes carry no annotations.
        assert!(d.node_annotations(ids::N4).is_empty());
        assert!(d.node_annotations(ids::N6).is_empty());
        assert!(d.node_annotations(ids::N7).is_empty());
    }

    #[test]
    fn invalid_history_is_rejected() {
        let db = guide_figure2();
        // Remove an arc that does not exist.
        let bogus = oem::History::from_entries([(
            ts("1Jan97"),
            oem::ChangeSet::from_ops([ChangeOp::rem_arc(ids::N4, "no-such", ids::N6)]).unwrap(),
        )])
        .unwrap();
        assert!(doem_from_history(&db, &bogus).is_err());
    }

    #[test]
    fn incremental_apply_set_equals_batch_construction() {
        let initial = guide_figure2();
        let history = history_example_2_3();
        let batch = doem_from_history(&initial, &history).unwrap();

        let mut doem = DoemDatabase::from_snapshot(&initial);
        let mut replica = initial.clone();
        for entry in history.entries() {
            apply_set(&mut doem, &mut replica, &entry.changes, entry.at).unwrap();
        }
        assert!(crate::same_doem(&batch, &doem));
    }

    #[test]
    fn update_remove_interleaving_round_trips_values() {
        // A node updated at t1 and t3; value_at must see each era.
        let initial = guide_figure2();
        let h = oem::History::from_entries([
            (
                ts("1Jan97"),
                oem::ChangeSet::from_ops([ChangeOp::UpdNode(ids::N1, Value::Int(20))]).unwrap(),
            ),
            (
                ts("3Jan97"),
                oem::ChangeSet::from_ops([ChangeOp::UpdNode(ids::N1, Value::str("pricey"))])
                    .unwrap(),
            ),
        ])
        .unwrap();
        let d = doem_from_history(&initial, &h).unwrap();
        assert_eq!(d.value_at(ids::N1, ts("31Dec96")), Some(Value::Int(10)));
        assert_eq!(d.value_at(ids::N1, ts("2Jan97")), Some(Value::Int(20)));
        assert_eq!(d.value_at(ids::N1, ts("4Jan97")), Some(Value::str("pricey")));
    }

    #[test]
    fn arc_removed_and_readded_is_one_arc_with_two_annotations() {
        let initial = guide_figure2();
        let arc = ArcTriple::new(ids::N6, "parking", ids::N7);
        let h = oem::History::from_entries([
            (
                ts("2Jan97"),
                oem::ChangeSet::from_ops([ChangeOp::RemArc(arc)]).unwrap(),
            ),
            (
                ts("6Jan97"),
                oem::ChangeSet::from_ops([ChangeOp::AddArc(arc)]).unwrap(),
            ),
        ])
        .unwrap();
        let d = doem_from_history(&initial, &h).unwrap();
        assert_eq!(
            d.arc_annotations(arc),
            &[ArcAnnotation::Rem(ts("2Jan97")), ArcAnnotation::Add(ts("6Jan97"))]
        );
        assert!(d.arc_is_current(arc));
    }

    #[test]
    fn orphan_creation_is_garbage_collected_from_doem_too() {
        let initial = guide_figure2();
        let mut scratch = initial.clone();
        let orphan = scratch.alloc_id();
        let h = oem::History::from_entries([(
            ts("1Jan97"),
            oem::ChangeSet::from_ops([ChangeOp::CreNode(orphan, Value::Int(0))]).unwrap(),
        )])
        .unwrap();
        let d = doem_from_history(&initial, &h).unwrap();
        assert!(!d.graph().contains_node(orphan));
        assert_eq!(d.annotation_count(), 0);
    }
}
