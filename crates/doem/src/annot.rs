//! DOEM annotations (Section 3).
//!
//! Annotations are tags attached to the nodes and arcs of an OEM graph that
//! encode the history of basic change operations on them. There is a
//! one-to-one correspondence between annotations and the basic change
//! operations:
//!
//! * `cre(t)` — the node was created at time `t`;
//! * `upd(t, ov)` — the node was updated at time `t`; `ov` is the old value;
//! * `add(t)` — the arc was added at time `t`;
//! * `rem(t)` — the arc was removed at time `t`.

use oem::{Timestamp, Value};
use std::fmt;

/// An annotation on a node: `cre(t)` or `upd(t, ov)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeAnnotation {
    /// The node was created at time `t`.
    Cre(Timestamp),
    /// The node's value was changed at time `t`; `old` is the value before
    /// the update. (The *new* value is implicit: it is the old value of the
    /// temporally next `upd`, or the node's current value — Section 4.2.)
    Upd {
        /// When the update happened.
        at: Timestamp,
        /// The value before the update.
        old: Value,
    },
}

impl NodeAnnotation {
    /// The annotation's timestamp.
    pub fn at(&self) -> Timestamp {
        match self {
            NodeAnnotation::Cre(t) => *t,
            NodeAnnotation::Upd { at, .. } => *at,
        }
    }

    /// `true` for `cre` annotations.
    pub fn is_cre(&self) -> bool {
        matches!(self, NodeAnnotation::Cre(_))
    }

    /// `true` for `upd` annotations.
    pub fn is_upd(&self) -> bool {
        matches!(self, NodeAnnotation::Upd { .. })
    }
}

impl fmt::Display for NodeAnnotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeAnnotation::Cre(t) => write!(f, "cre(t:{t})"),
            NodeAnnotation::Upd { at, old } => write!(f, "upd(t:{at}, ov:{old})"),
        }
    }
}

/// An annotation on an arc: `add(t)` or `rem(t)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArcAnnotation {
    /// The arc was added at time `t`.
    Add(Timestamp),
    /// The arc was removed at time `t`. The arc itself stays in the DOEM
    /// graph — that is the whole point of the representation.
    Rem(Timestamp),
}

impl ArcAnnotation {
    /// The annotation's timestamp.
    pub fn at(&self) -> Timestamp {
        match self {
            ArcAnnotation::Add(t) | ArcAnnotation::Rem(t) => *t,
        }
    }

    /// `true` for `add` annotations.
    pub fn is_add(&self) -> bool {
        matches!(self, ArcAnnotation::Add(_))
    }

    /// `true` for `rem` annotations.
    pub fn is_rem(&self) -> bool {
        matches!(self, ArcAnnotation::Rem(_))
    }
}

impl fmt::Display for ArcAnnotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArcAnnotation::Add(t) => write!(f, "add(t:{t})"),
            ArcAnnotation::Rem(t) => write!(f, "rem(t:{t})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn display_matches_figure_4_boxes() {
        assert_eq!(
            NodeAnnotation::Upd {
                at: ts("1Jan97"),
                old: Value::Int(10)
            }
            .to_string(),
            "upd(t:1Jan97, ov:10)"
        );
        assert_eq!(
            NodeAnnotation::Cre(ts("5Jan97")).to_string(),
            "cre(t:5Jan97)"
        );
        assert_eq!(ArcAnnotation::Add(ts("1Jan97")).to_string(), "add(t:1Jan97)");
        assert_eq!(ArcAnnotation::Rem(ts("8Jan97")).to_string(), "rem(t:8Jan97)");
    }

    #[test]
    fn accessors() {
        let a = NodeAnnotation::Cre(ts("1Jan97"));
        assert!(a.is_cre() && !a.is_upd());
        assert_eq!(a.at(), ts("1Jan97"));
        let u = NodeAnnotation::Upd {
            at: ts("5Jan97"),
            old: Value::Complex,
        };
        assert!(u.is_upd());
        let r = ArcAnnotation::Rem(ts("8Jan97"));
        assert!(r.is_rem() && !r.is_add());
        assert_eq!(r.at(), ts("8Jan97"));
    }
}
