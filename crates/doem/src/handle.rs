//! Cheap, copy-on-write snapshot handles over a DOEM database.
//!
//! The DOEM twin of [`oem::SharedOem`]: a [`SharedDoem`] clones in O(1)
//! and pins the annotated graph as of clone time, while writers mutate
//! through [`SharedDoem::make_mut`] — in place when unshared, via one deep
//! clone (copy-on-write) when a reader still holds an older snapshot.
//! The serve layer uses this for snapshot-isolated query execution: a
//! query clones the handle under a brief per-database lock and evaluates
//! Chorel entirely outside it, so slow reads never stall writers.

use crate::DoemDatabase;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, copy-on-write handle to a [`DoemDatabase`].
///
/// ```
/// use doem::{doem_figure4, SharedDoem};
/// use oem::Value;
///
/// let mut live = SharedDoem::new(doem_figure4());
/// let snapshot = live.snapshot();
/// let before = snapshot.annotation_count();
/// live.make_mut()
///     .record_update(oem::guide::ids::N1, Value::Int(99), "1Apr97".parse().unwrap())
///     .unwrap();
/// assert_eq!(snapshot.annotation_count(), before); // the snapshot is unmoved
/// assert_eq!(live.annotation_count(), before + 1);
/// ```
#[derive(Clone, Debug)]
pub struct SharedDoem(Arc<DoemDatabase>);

impl SharedDoem {
    /// Wrap a DOEM database in a shareable handle.
    pub fn new(d: DoemDatabase) -> SharedDoem {
        SharedDoem(Arc::new(d))
    }

    /// An O(1) snapshot: the returned handle keeps observing the state as
    /// of this call even while `self` is subsequently mutated.
    pub fn snapshot(&self) -> SharedDoem {
        self.clone()
    }

    /// Mutable access for writers. In-place while this handle is the only
    /// owner; clones the database first (copy-on-write) when snapshots are
    /// still outstanding, leaving them untouched.
    pub fn make_mut(&mut self) -> &mut DoemDatabase {
        Arc::make_mut(&mut self.0)
    }

    /// Whether any snapshot of this handle is still alive (in which case
    /// the next [`SharedDoem::make_mut`] pays for a deep clone).
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.0) > 1
    }

    /// Recover the owned database, cloning only if snapshots remain.
    pub fn into_inner(self) -> DoemDatabase {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl Deref for SharedDoem {
    type Target = DoemDatabase;

    fn deref(&self) -> &DoemDatabase {
        &self.0
    }
}

impl From<DoemDatabase> for SharedDoem {
    fn from(d: DoemDatabase) -> SharedDoem {
        SharedDoem::new(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{doem_figure4, same_doem};
    use oem::guide::ids;
    use oem::Value;

    fn ts(s: &str) -> oem::Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn snapshot_is_isolated_from_later_annotations() {
        let mut live = SharedDoem::new(doem_figure4());
        let snap = live.snapshot();
        let before = snap.annotation_count();
        live.make_mut()
            .record_update(ids::N1, Value::Int(42), ts("1Apr97"))
            .unwrap();
        assert_eq!(snap.annotation_count(), before);
        assert_eq!(live.annotation_count(), before + 1);
        assert!(!same_doem(&snap, &live));
    }

    #[test]
    fn unshared_handle_mutates_in_place() {
        let mut live = SharedDoem::new(doem_figure4());
        let ptr_before = Arc::as_ptr(&live.0);
        live.make_mut()
            .record_update(ids::N1, Value::Int(42), ts("1Apr97"))
            .unwrap();
        assert_eq!(ptr_before, Arc::as_ptr(&live.0), "no clone when unshared");
        drop(live);
    }

    #[test]
    fn into_inner_preserves_the_database() {
        let live = SharedDoem::new(doem_figure4());
        let snap = live.snapshot();
        let owned = live.into_inner();
        assert!(same_doem(&owned, &snap));
    }
}
