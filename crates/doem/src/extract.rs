//! Extracting the encoded history `H(D)` from a DOEM database
//! (Section 3.2).
//!
//! The timestamps of `H(D)` are exactly the timestamps occurring in `D`'s
//! annotations; each `Ui` contains:
//!
//! 1. `addArc(p,l,c)` / `remArc(p,l,c)` for arcs annotated `add(ti)` /
//!    `rem(ti)`;
//! 2. `updNode(n, v)` for `upd(ti, ov)` annotations, where `v` is the
//!    *next* value of `n` (the old value of the temporally next `upd`, or
//!    the current value);
//! 3. `creNode(n, v)` for `cre(ti)` annotations, with `v` defined the same
//!    way.

use crate::{ArcAnnotation, DoemDatabase, NodeAnnotation, Result};
use oem::{ChangeOp, ChangeSet, History, NodeId, Timestamp, Value};
use std::collections::BTreeMap;

/// The value node `n` had immediately after time `t`: the `ov` of the
/// earliest `upd` strictly after `t` (or at `t` itself when `inclusive`,
/// for `creNode` extraction — a node may be created and updated in the
/// same change set), else the current value.
fn value_after(d: &DoemDatabase, n: NodeId, t: Timestamp, inclusive: bool) -> Value {
    for (at, old) in d.updates_of(n) {
        if at > t || (inclusive && at == t) {
            return old.clone();
        }
    }
    d.graph()
        .value(n)
        .expect("annotated nodes exist in the graph")
        .clone()
}

/// Reconstruct `H(D)`.
pub fn extract_history(d: &DoemDatabase) -> Result<History> {
    let mut sets: BTreeMap<Timestamp, ChangeSet> = BTreeMap::new();

    for n in d.annotated_nodes() {
        for ann in d.node_annotations(n) {
            let (t, op) = match ann {
                NodeAnnotation::Cre(t) => {
                    (*t, ChangeOp::CreNode(n, value_after(d, n, *t, true)))
                }
                NodeAnnotation::Upd { at, .. } => {
                    (*at, ChangeOp::UpdNode(n, value_after(d, n, *at, false)))
                }
            };
            sets.entry(t).or_default().push(op)?;
        }
    }
    for arc in d.annotated_arcs() {
        for ann in d.arc_annotations(arc) {
            let (t, op) = match ann {
                ArcAnnotation::Add(t) => (*t, ChangeOp::AddArc(arc)),
                ArcAnnotation::Rem(t) => (*t, ChangeOp::RemArc(arc)),
            };
            sets.entry(t).or_default().push(op)?;
        }
    }

    Ok(History::from_entries(sets)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doem_from_history;
    use oem::guide::{guide_figure2, history_example_2_3, ids};
    use oem::ArcTriple;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn extracted_history_matches_example_2_3() {
        let d = doem_from_history(&guide_figure2(), &history_example_2_3()).unwrap();
        let h = extract_history(&d).unwrap();

        assert_eq!(h.len(), 3);
        let entries = h.entries();
        assert_eq!(entries[0].at, ts("1Jan97"));
        assert_eq!(entries[1].at, ts("5Jan97"));
        assert_eq!(entries[2].at, ts("8Jan97"));

        // U1: 5 operations, including updNode(n1, 20) with the *new* value.
        assert_eq!(entries[0].changes.len(), 5);
        assert!(entries[0]
            .changes
            .iter()
            .any(|op| *op == ChangeOp::UpdNode(ids::N1, Value::Int(20))));
        assert!(entries[0]
            .changes
            .iter()
            .any(|op| *op == ChangeOp::CreNode(ids::N3, Value::str("Hakata"))));
        assert!(entries[0]
            .changes
            .iter()
            .any(|op| *op == ChangeOp::CreNode(ids::N2, Value::Complex)));

        // U2: 2 operations.
        assert_eq!(entries[1].changes.len(), 2);
        // U3: the remArc.
        assert_eq!(entries[2].changes.len(), 1);
        assert!(entries[2]
            .changes
            .iter()
            .any(|op| *op
                == ChangeOp::RemArc(ArcTriple::new(ids::N6, "parking", ids::N7))));
    }

    #[test]
    fn extracted_history_replays_onto_the_original() {
        // The defining property: applying H(D) to O0(D) reproduces the
        // current snapshot.
        let d = doem_from_history(&guide_figure2(), &history_example_2_3()).unwrap();
        let h = extract_history(&d).unwrap();
        let mut o0 = crate::original_snapshot(&d);
        h.apply_to(&mut o0).unwrap();
        assert!(oem::same_database(&o0, &crate::current_snapshot(&d)));
    }

    #[test]
    fn multi_update_values_chain_correctly() {
        // n1: 10 -> 20 (t1) -> "pricey" (t2). Extracted ops must carry the
        // *new* values 20 and "pricey".
        let h = oem::History::from_entries([
            (
                ts("1Jan97"),
                ChangeSet::from_ops([ChangeOp::UpdNode(ids::N1, Value::Int(20))]).unwrap(),
            ),
            (
                ts("3Jan97"),
                ChangeSet::from_ops([ChangeOp::UpdNode(ids::N1, Value::str("pricey"))]).unwrap(),
            ),
        ])
        .unwrap();
        let d = doem_from_history(&guide_figure2(), &h).unwrap();
        let got = extract_history(&d).unwrap();
        assert_eq!(
            got.entries()[0].changes.ops(),
            &[ChangeOp::UpdNode(ids::N1, Value::Int(20))]
        );
        assert_eq!(
            got.entries()[1].changes.ops(),
            &[ChangeOp::UpdNode(ids::N1, Value::str("pricey"))]
        );
    }

    #[test]
    fn create_and_update_in_one_set_extract_correctly() {
        // creNode(n, 5) and updNode(n, 7) in the SAME change set: the
        // extracted creNode must carry the creation value 5 (the upd's old
        // value), and the updNode the new value 7.
        let initial = guide_figure2();
        let mut scratch = initial.clone();
        let n = scratch.alloc_id();
        let set = ChangeSet::from_ops([
            ChangeOp::CreNode(n, Value::Int(5)),
            ChangeOp::UpdNode(n, Value::Int(7)),
            ChangeOp::add_arc(ids::N6, "rating", n),
        ])
        .unwrap();
        let h = oem::History::from_entries([(ts("2Jan97"), set)]).unwrap();
        let d = doem_from_history(&initial, &h).unwrap();
        let got = extract_history(&d).unwrap();
        let ops = got.entries()[0].changes.ops();
        assert!(ops.contains(&ChangeOp::CreNode(n, Value::Int(5))), "{ops:?}");
        assert!(ops.contains(&ChangeOp::UpdNode(n, Value::Int(7))), "{ops:?}");
        // And feasibility still holds on this corner.
        assert!(crate::is_feasible(&d));
    }

    #[test]
    fn empty_doem_extracts_empty_history() {
        let d = DoemDatabase::from_snapshot(&guide_figure2());
        assert!(extract_history(&d).unwrap().is_empty());
    }
}
