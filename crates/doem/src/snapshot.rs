//! Snapshot extraction from a DOEM database (Section 3.2).
//!
//! * [`original_snapshot`] — `O0(D)`: the database before the recorded
//!   history.
//! * [`snapshot_at`] — `Ot(D)`: the database as of time `t`, via a preorder
//!   traversal that reconstructs values from `upd` annotations and follows
//!   only arcs that existed at `t`.
//! * [`current_snapshot`] — the present state (`t = +∞`).
//!
//! One correction to the paper's prose: its arc rule for `Ot` ("arcs that
//! either do not have any annotation with timestamp ≤ t, or have an add
//! annotation as the annotation with the greatest timestamp ≤ t") would
//! treat an arc first *added* at `t' > t` as present at `t`. We use the
//! rule consistent with the `O0` definition: with no annotation at or
//! before `t`, the arc existed iff it has no annotations at all or its
//! earliest annotation is `rem`.

use crate::DoemDatabase;
use oem::{NodeId, OemDatabase, Timestamp, Value};
use std::collections::HashMap;

/// The snapshot of `D` at time `t` (`Ot(D)`).
///
/// Node ids are preserved; only nodes reachable at `t` through arcs that
/// existed at `t` appear. If the root itself did not exist at `t` (possible
/// for QSS result databases whose root is created at the first poll), the
/// snapshot is the empty database (a bare root).
///
/// ```
/// use doem::{doem_figure4, snapshot_at};
/// use oem::guide::ids;
///
/// // On 2Jan97 the price was already 20, but the 5Jan97 comment and the
/// // 8Jan97 parking removal had not happened yet.
/// let s = snapshot_at(&doem_figure4(), "2Jan97".parse().unwrap());
/// assert_eq!(s.value(ids::N1).unwrap(), &oem::Value::Int(20));
/// assert!(!s.contains_node(ids::N5));
/// assert!(s.contains_arc(oem::ArcTriple::new(ids::N6, "parking", ids::N7)));
/// ```
pub fn snapshot_at(d: &DoemDatabase, t: Timestamp) -> OemDatabase {
    let mut out = OemDatabase::with_root_id(d.name(), d.root());
    let root_value = d.value_at(d.root(), t).unwrap_or(Value::Complex);
    out.set_value(d.root(), root_value)
        .expect("root exists in a fresh database");

    // Preorder traversal following only arcs alive at t (Section 3.2).
    let mut stack = vec![d.root()];
    let mut visited: HashMap<NodeId, bool> = HashMap::new();
    visited.insert(d.root(), true);
    let mut arcs = Vec::new();
    while let Some(n) = stack.pop() {
        let value = match d.value_at(n, t) {
            Some(v) => v,
            None => continue, // did not exist at t
        };
        if !value.is_complex() {
            continue;
        }
        for &(label, child) in d.graph().children(n) {
            let arc = oem::ArcTriple::new(n, label, child);
            if !d.arc_existed_at(arc, t) {
                continue;
            }
            if d.value_at(child, t).is_none() {
                continue;
            }
            arcs.push(arc);
            if let std::collections::hash_map::Entry::Vacant(e) = visited.entry(child) {
                e.insert(true);
                stack.push(child);
            }
        }
    }
    // Materialize nodes then arcs.
    for (&n, _) in visited.iter() {
        if n == d.root() {
            continue;
        }
        let v = d.value_at(n, t).expect("visited nodes existed at t");
        out.create_node_with_id(n, v)
            .expect("visited set has unique ids");
    }
    for arc in arcs {
        out.insert_arc(arc).expect("arcs reference visited nodes");
    }
    debug_assert!(out.check_invariants().is_ok(), "{:?}", out.check_invariants());
    out
}

/// The original snapshot `O0(D)`: nodes without a `cre` annotation, arcs
/// that have no annotations or whose earliest annotation is `rem`, values
/// rolled back through every `upd`.
pub fn original_snapshot(d: &DoemDatabase) -> OemDatabase {
    snapshot_at(d, Timestamp::NEG_INFINITY)
}

/// The current snapshot: `Ot` at `t = +∞`.
pub fn current_snapshot(d: &DoemDatabase) -> OemDatabase {
    snapshot_at(d, Timestamp::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doem_from_history;
    use oem::guide::{guide_figure2, guide_figure3, history_example_2_3, ids};
    use oem::same_database;

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    fn figure4() -> DoemDatabase {
        doem_from_history(&guide_figure2(), &history_example_2_3()).unwrap()
    }

    #[test]
    fn original_snapshot_recovers_figure2() {
        let d = figure4();
        let o0 = original_snapshot(&d);
        assert!(same_database(&o0, &guide_figure2()));
    }

    #[test]
    fn current_snapshot_recovers_figure3() {
        let d = figure4();
        let now = current_snapshot(&d);
        assert!(same_database(&now, &guide_figure3()));
    }

    #[test]
    fn intermediate_snapshots_reflect_each_change_set() {
        let d = figure4();

        // Just before 1Jan97: identical to Figure 2.
        assert!(same_database(&snapshot_at(&d, ts("31Dec96")), &guide_figure2()));

        // At 1Jan97 (after U1): price 20, Hakata exists, no comment yet,
        // Janta still parks at n7.
        let s1 = snapshot_at(&d, ts("1Jan97"));
        assert_eq!(s1.value(ids::N1).unwrap(), &Value::Int(20));
        assert!(s1.contains_node(ids::N2));
        assert!(!s1.contains_node(ids::N5));
        assert!(s1.contains_arc(oem::ArcTriple::new(ids::N6, "parking", ids::N7)));

        // Between U2 and U3 (say 6Jan97): comment present, parking intact.
        let s2 = snapshot_at(&d, ts("6Jan97"));
        assert!(s2.contains_arc(oem::ArcTriple::new(ids::N2, "comment", ids::N5)));
        assert!(s2.contains_arc(oem::ArcTriple::new(ids::N6, "parking", ids::N7)));

        // At/after 8Jan97: parking arc gone.
        let s3 = snapshot_at(&d, ts("8Jan97"));
        assert!(!s3.contains_arc(oem::ArcTriple::new(ids::N6, "parking", ids::N7)));
        assert!(same_database(&s3, &guide_figure3()));
    }

    #[test]
    fn snapshots_check_oem_invariants() {
        let d = figure4();
        for t in ["31Dec96", "1Jan97", "5Jan97", "8Jan97"] {
            snapshot_at(&d, ts(t)).check_invariants().unwrap();
        }
    }

    #[test]
    fn node_created_later_is_absent_earlier() {
        let d = figure4();
        let s = snapshot_at(&d, ts("31Dec96"));
        assert!(!s.contains_node(ids::N2));
        assert!(!s.contains_node(ids::N3));
    }

    #[test]
    fn shared_node_survives_single_arc_removal() {
        let d = figure4();
        let now = current_snapshot(&d);
        // Janta's parking arc is gone but n7 is reachable via Bangkok.
        assert!(now.contains_node(ids::N7));
        assert_eq!(now.parents(ids::N7).len(), 1);
    }
}
