//! Feasibility of DOEM databases (Section 3.2).
//!
//! A DOEM database `D` is *feasible* if `D = D(O, H)` for some OEM database
//! `O` and valid history `H`. The paper's decision procedure is used
//! directly: construct `O0(D)` and `H(D)` and test whether
//! `D(O0(D), H(D)) = D`. Feasible databases encode a *unique* `(O, H)`
//! pair, which is why DOEM faithfully captures history.

use crate::{
    current_snapshot, doem_from_history, extract_history, original_snapshot, same_doem,
    DoemDatabase,
};
use oem::{History, OemDatabase};

/// Decide feasibility; on success returns the unique `(O0(D), H(D))` pair.
pub fn feasibility(d: &DoemDatabase) -> Option<(OemDatabase, History)> {
    d.check_invariants().ok()?;
    let o0 = original_snapshot(d);
    let h = extract_history(d).ok()?;
    let rebuilt = doem_from_history(&o0, &h).ok()?;
    if same_doem(&rebuilt, d) {
        Some((o0, h))
    } else {
        None
    }
}

/// `true` iff `D` is feasible.
pub fn is_feasible(d: &DoemDatabase) -> bool {
    feasibility(d).is_some()
}

/// Convenience: verify that replaying the extracted history over the
/// original snapshot also reproduces the current snapshot. Implied by
/// feasibility; exposed separately because tests use it as a cheaper probe.
pub fn replay_consistent(d: &DoemDatabase) -> bool {
    let Some((mut o0, h)) = feasibility(d) else {
        return false;
    };
    if h.apply_to(&mut o0).is_err() {
        return false;
    }
    oem::same_database(&o0, &current_snapshot(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArcAnnotation, NodeAnnotation};
    use oem::guide::{guide_figure2, history_example_2_3};
    use oem::{Timestamp, Value};

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn constructed_doem_is_feasible() {
        let d = doem_from_history(&guide_figure2(), &history_example_2_3()).unwrap();
        let (o0, h) = feasibility(&d).expect("D(O,H) must be feasible");
        assert!(oem::same_database(&o0, &guide_figure2()));
        assert_eq!(h.len(), 3);
        assert!(replay_consistent(&d));
    }

    #[test]
    fn empty_annotation_doem_is_feasible() {
        let d = DoemDatabase::from_snapshot(&guide_figure2());
        assert!(is_feasible(&d));
    }

    #[test]
    fn hand_corrupted_doem_is_infeasible() {
        // A rem annotation on an arc that the "original" database needs for
        // reachability of a cre-annotated node is contradictory: fabricate
        // an upd whose old value chain is inconsistent instead (simplest
        // corruption: two upds out of order, which already fails the
        // invariant check).
        let mut d = DoemDatabase::from_snapshot(&guide_figure2());
        let n = oem::guide::ids::N1;
        d.record_update(n, Value::Int(20), ts("5Jan97")).unwrap();
        // Manually corrupt annotation order through the public API by
        // recording an earlier timestamp second.
        d.record_update(n, Value::Int(30), ts("1Jan97")).unwrap();
        assert!(!is_feasible(&d));
    }

    #[test]
    fn feasibility_is_preserved_by_more_history() {
        let mut h = history_example_2_3();
        h.push(
            ts("9Jan97"),
            oem::ChangeSet::from_ops([oem::ChangeOp::UpdNode(
                oem::guide::ids::N1,
                Value::Int(25),
            )])
            .unwrap(),
        )
        .unwrap();
        let d = doem_from_history(&guide_figure2(), &h).unwrap();
        assert!(is_feasible(&d));
    }

    #[test]
    fn annotation_type_checks_guard_feasibility() {
        let d = doem_from_history(&guide_figure2(), &history_example_2_3()).unwrap();
        // Sanity: the probe actually inspects annotations.
        assert!(d
            .node_annotations(oem::guide::ids::N2)
            .iter()
            .any(NodeAnnotation::is_cre));
        assert!(d
            .arc_annotations(oem::ArcTriple::new(
                oem::guide::ids::N6,
                "parking",
                oem::guide::ids::N7
            ))
            .iter()
            .any(ArcAnnotation::is_rem));
    }
}
