//! Ready-made DOEM fixtures from the paper.

use crate::{doem_from_history, DoemDatabase};
use oem::guide::{guide_figure2, history_example_2_3};

/// The DOEM database of Figure 4 (Example 3.1): the Guide of Figure 2
/// annotated with the history of Example 2.3.
pub fn doem_figure4() -> DoemDatabase {
    doem_from_history(&guide_figure2(), &history_example_2_3())
        .expect("Example 2.3 is valid for Figure 2")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_is_well_formed_and_feasible() {
        let d = doem_figure4();
        d.check_invariants().unwrap();
        assert!(crate::is_feasible(&d));
        assert_eq!(d.annotation_count(), 8);
    }
}
