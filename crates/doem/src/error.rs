//! Errors for DOEM construction, validation and encoding.

use oem::{ArcTriple, NodeId, OemError, Timestamp};
use std::fmt;

/// Everything that can go wrong when building or interrogating a DOEM
/// database.
#[derive(Clone, Debug, PartialEq)]
pub enum DoemError {
    /// An underlying OEM operation failed (history invalid for the initial
    /// snapshot, etc.).
    Oem(OemError),
    /// A node carries more than one `cre` annotation, or a `cre` annotation
    /// that is not its earliest.
    BadCreAnnotation(NodeId),
    /// A node's `upd` annotations are not strictly increasing in time.
    UnorderedUpdAnnotations(NodeId),
    /// An arc's annotations do not alternate `add`/`rem` in time order.
    BadArcAnnotations(ArcTriple),
    /// An annotation mentions a timestamp earlier than the node's creation.
    AnnotationBeforeCreation {
        /// The annotated node.
        node: NodeId,
        /// Creation time.
        created: Timestamp,
        /// The offending annotation time.
        annotated: Timestamp,
    },
    /// The OEM encoding being decoded is not a well-formed Section 5.1
    /// encoding.
    MalformedEncoding(String),
}

impl fmt::Display for DoemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoemError::Oem(e) => write!(f, "{e}"),
            DoemError::BadCreAnnotation(n) => {
                write!(f, "node {n} has a conflicting cre annotation")
            }
            DoemError::UnorderedUpdAnnotations(n) => {
                write!(f, "node {n} has upd annotations out of time order")
            }
            DoemError::BadArcAnnotations(a) => {
                write!(f, "arc {a} has annotations that do not alternate add/rem")
            }
            DoemError::AnnotationBeforeCreation {
                node,
                created,
                annotated,
            } => write!(
                f,
                "node {node} created at {created} has an annotation at {annotated}"
            ),
            DoemError::MalformedEncoding(msg) => {
                write!(f, "malformed DOEM-in-OEM encoding: {msg}")
            }
        }
    }
}

impl std::error::Error for DoemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DoemError::Oem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OemError> for DoemError {
    fn from(e: OemError) -> DoemError {
        DoemError::Oem(e)
    }
}

/// Result alias for DOEM operations.
pub type Result<T> = std::result::Result<T, DoemError>;
