//! The line-oriented wire protocol.
//!
//! Requests are single lines of UTF-8 text; the first word is a verb, the
//! rest is verb-specific. Embedded Lorel/Chorel text is parsed *here*, at
//! the session edge, so workers never see unvalidated input and the
//! canonical query text (the cache key) is computed exactly once.
//!
//! ```text
//! PING                                       liveness probe
//! STATS                                      metrics snapshot
//! GEN [<db>]                                 global (or per-database) generation
//! DBS                                        list installed databases
//! CREATE <db>                                install an empty database
//! SAVE <db>  /  LOAD <db>                    persist to / restore from store
//! QUERY <db> [AS OF <lsn|ts>] <query>        evaluate, canonical rows back
//!                                            (AS OF pins a historical version)
//! UPDATE <db> AT <ts|now> ; <change set>     apply `{creNode(...), ...}`
//! MUTATE <db> AT <ts|now> ; <update stmt>    compile a Lorel update & apply
//! DEFINE <define program>                    add named queries to registry
//! SUBSCRIBE <id> POLL <q> FILTER <q> FREQ <spec>
//! UNSUBSCRIBE <id>
//! TICK <ts>                                  advance QSS simulated time
//! NOTES <id|*>                               pending QSS notifications
//! SUBQUERY <id> <chorel query>               query a subscription's DOEM
//! LSN <db>                                   applied/durable LSNs (lag probe)
//! REPLICATE <db> FROM <lsn> [AS <peer>]      one replication batch
//! PROMOTE <db>                               flip a follower shard writable
//! FENCE <db> <epoch>                         depose a stale primary shard
//! QUIT                                       close the session
//! ```
//!
//! Responses are `OK <msg>`, an `ERR <KIND> <msg>` line, or a row block:
//! `ROWS <n>` followed by `n` `ROW <text>` lines and a final `END`. Row
//! text is escaped (`\\`, `\n`, `\t`, `\r`) so a response line never
//! contains a raw newline or tab collision.
//!
//! # Pipelining tags
//!
//! Any request may be prefixed with a tag word `#<id>` (1–40 characters,
//! alphanumeric plus `-`, `_`, `.`). Tagged requests may complete **out of
//! order**: the response's first line carries the same `#<id>` prefix so
//! the client can match it to its request. Untagged requests keep the
//! classic serial contract — their responses come back in submission
//! order, untagged. See `crates/serve/PROTOCOL.md` for the full grammar.

use lorel::ast::Query;
use oem::{parse_change_set, parse_op, ChangeSet, Timestamp};
use qss::FrequencySpec;
use std::io::BufRead;

/// Machine-readable error classes, carried on `ERR` responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrKind {
    /// The request line or its embedded query/update text failed to parse
    /// (message contains the parser's line/column span).
    Syntax,
    /// Unknown verb.
    Unknown,
    /// Named database, subscription, or registered query does not exist.
    NotFound,
    /// Admission control rejected the request: the queue is full.
    Busy,
    /// The request did not complete within the configured timeout.
    Timeout,
    /// The request conflicts with current state (e.g. duplicate CREATE,
    /// change set invalid against the database).
    Conflict,
    /// Storage-layer failure (or no store configured).
    Io,
    /// The target database is read-only: a persistent WAL I/O failure
    /// (e.g. disk full) disabled writes to it while queries keep serving
    /// from the in-memory snapshot.
    ReadOnly,
    /// The shard was deposed by a newer promotion epoch (`FENCE`): its
    /// lineage may no longer append — writes must go to the promoted
    /// primary. Reads keep serving.
    Fenced,
    /// Anything else; the service itself misbehaved.
    Internal,
}

impl ErrKind {
    /// The wire token for the kind.
    pub fn code(self) -> &'static str {
        match self {
            ErrKind::Syntax => "SYNTAX",
            ErrKind::Unknown => "UNKNOWN",
            ErrKind::NotFound => "NOTFOUND",
            ErrKind::Busy => "BUSY",
            ErrKind::Timeout => "TIMEOUT",
            ErrKind::Conflict => "CONFLICT",
            ErrKind::Io => "IO",
            ErrKind::ReadOnly => "READONLY",
            ErrKind::Fenced => "FENCED",
            ErrKind::Internal => "INTERNAL",
        }
    }

    /// Inverse of [`ErrKind::code`]; unknown tokens map to `Internal`.
    pub fn from_code(code: &str) -> ErrKind {
        match code {
            "SYNTAX" => ErrKind::Syntax,
            "UNKNOWN" => ErrKind::Unknown,
            "NOTFOUND" => ErrKind::NotFound,
            "BUSY" => ErrKind::Busy,
            "TIMEOUT" => ErrKind::Timeout,
            "CONFLICT" => ErrKind::Conflict,
            "IO" => ErrKind::Io,
            "READONLY" => ErrKind::ReadOnly,
            "FENCED" => ErrKind::Fenced,
            _ => ErrKind::Internal,
        }
    }
}

/// A fully parsed request: embedded query text is already a [`Query`],
/// timestamps are [`Timestamp`]s, change sets are [`ChangeSet`]s.
#[derive(Clone, Debug)]
pub enum Request {
    /// `PING`
    Ping,
    /// `STATS`
    Stats,
    /// `GEN` (global write counter) or `GEN <db>` (that shard's counter).
    Generation {
        /// `None` asks for the global counter; `Some` for one shard's.
        db: Option<String>,
    },
    /// `DBS`
    ListDbs,
    /// `QUIT`
    Quit,
    /// `CREATE <db>`
    Create {
        /// Database name.
        db: String,
    },
    /// `SAVE <db>`
    Save {
        /// Database name.
        db: String,
    },
    /// `LOAD <db>`
    Load {
        /// Database name.
        db: String,
    },
    /// `QUERY <db> [AS OF <lsn|timestamp>] <query>`
    Query {
        /// Database name.
        db: String,
        /// The parsed query.
        query: Box<Query>,
        /// Canonical query text — the result-cache key component.
        key: String,
        /// `AS OF` point: evaluate at the version in force at this LSN
        /// (a pinned ring version, or `snapshot_at` replay beyond the
        /// retention horizon). `None` queries the current state.
        as_of: Option<Timestamp>,
    },
    /// `SUBQUERY <id> <query>` — query a subscription's DOEM database.
    SubQuery {
        /// Subscription id.
        id: String,
        /// The parsed query.
        query: Box<Query>,
        /// Canonical query text.
        key: String,
    },
    /// `UPDATE <db> AT <ts|now> ; <change set>`
    Update {
        /// Database name.
        db: String,
        /// When the changes happened; `None` (the `AT now` form) asks the
        /// service to allocate the timestamp from its wall clock inside
        /// the sequence stage, clamped to stay strictly increasing.
        at: Option<Timestamp>,
        /// The parsed change set.
        changes: ChangeSet,
    },
    /// `MUTATE <db> AT <ts|now> ; <lorel update statement>`
    Mutate {
        /// Database name.
        db: String,
        /// When the update happens; `None` for the server-allocated
        /// `AT now` form.
        at: Option<Timestamp>,
        /// The raw statement text — compiled under the write lock against
        /// the then-current snapshot (syntax is pre-checked at parse time).
        stmt: String,
    },
    /// `DEFINE <define program>`
    Define {
        /// The raw program text — loaded into the registry under the write
        /// lock (syntax is pre-checked at parse time).
        program: String,
    },
    /// `SUBSCRIBE <id> POLL <name> FILTER <name> FREQ <spec>`
    Subscribe {
        /// Subscription id.
        id: String,
        /// Registered polling query name.
        polling: String,
        /// Registered filter query name.
        filter: String,
        /// Parsed frequency specification.
        freq: FrequencySpec,
    },
    /// `UNSUBSCRIBE <id>`
    Unsubscribe {
        /// Subscription id.
        id: String,
    },
    /// `TICK <ts>` — advance simulated time, running due QSS polls.
    Tick {
        /// The new horizon.
        until: Timestamp,
    },
    /// `NOTES <id|*>` — list notifications for one subscription (or all).
    Notes {
        /// Subscription id, or `*`.
        id: String,
    },
    /// `LSN <db>` — the shard's applied and durable LSNs, the wire-level
    /// replication-lag probe.
    Lsn {
        /// Database name.
        db: String,
    },
    /// `REPLICATE <db> FROM <lsn> [AS <peer>]` — ask the primary for one
    /// replication batch: a checkpoint image (when `from` predates the
    /// retained log tail) or the log records strictly after `from`.
    Replicate {
        /// Database name.
        db: String,
        /// The follower's applied LSN; only changes after it are wanted.
        from: Timestamp,
        /// Optional follower identity, used by the primary to lease log
        /// retention past checkpoints while this follower is attached.
        peer: Option<String>,
    },
    /// `PROMOTE <db>` — flip this instance's shard of `db` writable at
    /// its applied LSN, under a new epoch fence. Sent to a follower when
    /// the primary is lost; the promoted instance best-effort deposes the
    /// old primary with a `FENCE`.
    Promote {
        /// Database name.
        db: String,
    },
    /// `FENCE <db> <epoch>` — depose this instance's shard of `db`: if
    /// `epoch` is newer than the shard's own, its lineage stops accepting
    /// appends (writes answer the typed `FENCED` error).
    Fence {
        /// Database name.
        db: String,
        /// The promoting instance's new epoch.
        epoch: u64,
    },
}

impl Request {
    /// Whether execution takes the shared read path (queries, listings)
    /// rather than the exclusive write path.
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            Request::Ping
                | Request::Stats
                | Request::Generation { .. }
                | Request::ListDbs
                | Request::Quit
                | Request::Save { .. }
                | Request::Query { .. }
                | Request::SubQuery { .. }
                | Request::Notes { .. }
                | Request::Lsn { .. }
                | Request::Replicate { .. }
        )
    }
}

/// A protocol-level error: what went wrong and how to class it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// Error class.
    pub kind: ErrKind,
    /// Human-readable message (parser spans included where available).
    pub message: String,
}

impl ProtoError {
    fn syntax(message: impl Into<String>) -> ProtoError {
        ProtoError {
            kind: ErrKind::Syntax,
            message: message.into(),
        }
    }
}

/// A response, as produced by the service and rendered onto the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Success with a one-line message.
    Ok(String),
    /// Success with a block of result rows.
    Rows(Vec<String>),
    /// Failure.
    Error {
        /// Error class.
        kind: ErrKind,
        /// Human-readable message.
        message: String,
    },
}

impl From<ProtoError> for Response {
    fn from(e: ProtoError) -> Response {
        Response::Error {
            kind: e.kind,
            message: e.message,
        }
    }
}

impl Response {
    /// Shorthand for an error response.
    pub fn err(kind: ErrKind, message: impl Into<String>) -> Response {
        Response::Error {
            kind,
            message: message.into(),
        }
    }

    /// `true` for [`Response::Error`].
    pub fn is_error(&self) -> bool {
        matches!(self, Response::Error { .. })
    }

    /// Render onto the wire with an optional pipelining tag: the frame's
    /// first line gains a `#<id> ` prefix so the client can match the
    /// response to its request. `None` renders the classic untagged frame.
    pub fn render_tagged(&self, tag: Option<&str>) -> String {
        match tag {
            Some(id) => format!("#{id} {}", self.render()),
            None => self.render(),
        }
    }

    /// Render onto the wire (every line newline-terminated).
    pub fn render(&self) -> String {
        match self {
            Response::Ok(msg) => format!("OK {}\n", escape(msg)),
            Response::Rows(rows) => {
                let mut out = format!("ROWS {}\n", rows.len());
                for row in rows {
                    out.push_str("ROW ");
                    out.push_str(&escape(row));
                    out.push('\n');
                }
                out.push_str("END\n");
                out
            }
            Response::Error { kind, message } => {
                format!("ERR {} {}\n", kind.code(), escape(message))
            }
        }
    }

    /// Read one response off a buffered stream — the client half of
    /// [`Response::render`]. Returns `None` at EOF.
    pub fn read_from(reader: &mut impl BufRead) -> std::io::Result<Option<Response>> {
        let Some(first) = read_line(reader)? else {
            return Ok(None);
        };
        Ok(Some(Response::finish(first, reader)?))
    }

    /// Read one possibly-tagged response off a buffered stream — the
    /// client half of [`Response::render_tagged`]. Returns the tag (if the
    /// frame carried one) alongside the response; `None` at EOF.
    pub fn read_tagged_from(
        reader: &mut impl BufRead,
    ) -> std::io::Result<Option<(Option<String>, Response)>> {
        let Some(mut first) = read_line(reader)? else {
            return Ok(None);
        };
        let mut tag = None;
        if let Some(rest) = first.strip_prefix('#') {
            let (id, remainder) = split_word(rest);
            if id.is_empty() {
                return Err(bad_frame("empty response tag"));
            }
            tag = Some(id.to_string());
            first = remainder.to_string();
        }
        Ok(Some((tag, Response::finish(first, reader)?)))
    }

    /// Parse a frame whose (tag-stripped) first line is `first`, pulling
    /// any remaining row-block lines off `reader`.
    fn finish(first: String, reader: &mut impl BufRead) -> std::io::Result<Response> {
        if let Some(msg) = first.strip_prefix("OK") {
            return Ok(Response::Ok(unescape(msg.trim_start())));
        }
        if let Some(rest) = first.strip_prefix("ERR ") {
            let (code, msg) = split_word(rest);
            return Ok(Response::Error {
                kind: ErrKind::from_code(code),
                message: unescape(msg),
            });
        }
        if let Some(n) = first.strip_prefix("ROWS ") {
            let n: usize = n.trim().parse().map_err(bad_frame)?;
            let mut rows = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let line = read_line(reader)?.ok_or_else(|| bad_frame("eof in row block"))?;
                let row = line
                    .strip_prefix("ROW ")
                    .or_else(|| line.strip_prefix("ROW"))
                    .ok_or_else(|| bad_frame("expected ROW line"))?;
                rows.push(unescape(row));
            }
            let end = read_line(reader)?.ok_or_else(|| bad_frame("eof before END"))?;
            if end.trim() != "END" {
                return Err(bad_frame("expected END"));
            }
            return Ok(Response::Rows(rows));
        }
        Err(bad_frame(format!("unrecognized response line {first:?}")))
    }
}

fn bad_frame(msg: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn read_line(reader: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Escape a row/message for single-line transport.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]. Total: a trailing lone backslash or an unknown
/// escape passes through literally rather than erroring.
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// First whitespace-delimited word and the trimmed remainder.
fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.split_once(char::is_whitespace) {
        Some((w, rest)) => (w, rest.trim_start()),
        None => (s, ""),
    }
}

/// Validate a database/subscription/query name.
fn name_ok(word: &str, what: &str) -> Result<String, ProtoError> {
    if word.is_empty() {
        return Err(ProtoError::syntax(format!("missing {what} name")));
    }
    if !word
        .chars()
        .all(|c| c.is_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Err(ProtoError::syntax(format!(
            "bad {what} name {word:?} (alphanumeric, '-', '_', '.' only)"
        )));
    }
    Ok(word.to_string())
}

fn expect_empty(rest: &str, verb: &str) -> Result<(), ProtoError> {
    if rest.trim().is_empty() {
        Ok(())
    } else {
        Err(ProtoError::syntax(format!("{verb} takes no arguments")))
    }
}

/// Eat a case-insensitive keyword off the front of `rest`.
fn expect_kw<'a>(rest: &'a str, kw: &str) -> Result<&'a str, ProtoError> {
    let (word, tail) = split_word(rest);
    if word.eq_ignore_ascii_case(kw) {
        Ok(tail)
    } else {
        Err(ProtoError::syntax(format!(
            "expected {kw}, found {word:?}"
        )))
    }
}

/// `AT <ts|now> ; <payload>` — shared tail of UPDATE and MUTATE. The
/// literal `now` (case-insensitive) returns `None`: the service allocates
/// the timestamp from its wall clock inside the sequence stage.
fn parse_at_clause(rest: &str) -> Result<(Option<Timestamp>, &str), ProtoError> {
    let rest = expect_kw(rest, "AT")?;
    let (ts_text, payload) = rest
        .split_once(';')
        .ok_or_else(|| ProtoError::syntax("expected ';' after the AT timestamp"))?;
    let ts_text = ts_text.trim();
    if ts_text.eq_ignore_ascii_case("now") {
        return Ok((None, payload.trim()));
    }
    let at: Timestamp = ts_text
        .parse()
        .map_err(|e| ProtoError::syntax(format!("bad timestamp {ts_text:?}: {e}")))?;
    Ok((Some(at), payload.trim()))
}

/// Render an LSN — a change [`Timestamp`] — for the wire: its raw minute
/// count as a decimal integer, or `-` for "no changes applied yet"
/// (negative infinity, a freshly created database).
pub fn lsn_to_wire(at: Timestamp) -> String {
    if at == Timestamp::NEG_INFINITY {
        "-".to_string()
    } else {
        at.raw_minutes().to_string()
    }
}

/// Inverse of [`lsn_to_wire`].
pub fn lsn_from_wire(s: &str) -> Result<Timestamp, ProtoError> {
    if s == "-" {
        return Ok(Timestamp::NEG_INFINITY);
    }
    s.parse::<i64>()
        .map(Timestamp::from_raw_minutes)
        .map_err(|_| ProtoError::syntax(format!("bad LSN {s:?} (raw minutes or '-')")))
}

/// Parse an optional leading `AS OF <lsn|timestamp>` clause off a
/// `QUERY` payload. The point accepts the `LSN` wire form (raw minutes,
/// or `-` for negative infinity) or any [`Timestamp`] spelling
/// (`8Jan97`, `1997-01-08`, …). Absent the clause, the payload is
/// returned untouched — `AS` alone never starts a valid query, so the
/// lookahead is unambiguous.
fn parse_as_of_clause(text: &str) -> Result<(Option<Timestamp>, &str), ProtoError> {
    let (w1, rest1) = split_word(text.trim_start());
    if !w1.eq_ignore_ascii_case("AS") {
        return Ok((None, text));
    }
    let (w2, rest2) = split_word(rest1);
    if !w2.eq_ignore_ascii_case("OF") {
        return Ok((None, text));
    }
    let (point, query) = split_word(rest2);
    if point.is_empty() {
        return Err(ProtoError::syntax("AS OF needs an LSN or timestamp"));
    }
    let at = match lsn_from_wire(point) {
        Ok(at) => at,
        Err(_) => point.parse::<Timestamp>().map_err(|e| {
            ProtoError::syntax(format!("bad AS OF point {point:?}: {e}"))
        })?,
    };
    Ok((Some(at), query))
}

fn parse_query_text(text: &str) -> Result<(Box<Query>, String), ProtoError> {
    if text.trim().is_empty() {
        return Err(ProtoError::syntax("missing query text"));
    }
    let query = lorel::parse_query(text).map_err(|e| ProtoError::syntax(e.to_string()))?;
    let key = query.to_string();
    Ok((Box::new(query), key))
}

/// Parse one request line. Total over arbitrary input: every failure is a
/// [`ProtoError`], never a panic (fuzz-enforced below).
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let line = line.trim();
    if line.is_empty() {
        return Err(ProtoError::syntax("empty request"));
    }
    let (verb, rest) = split_word(line);
    match verb.to_ascii_uppercase().as_str() {
        "PING" => expect_empty(rest, "PING").map(|()| Request::Ping),
        "STATS" => expect_empty(rest, "STATS").map(|()| Request::Stats),
        "GEN" => {
            let rest = rest.trim();
            if rest.is_empty() {
                Ok(Request::Generation { db: None })
            } else {
                Ok(Request::Generation {
                    db: Some(name_ok(rest, "database")?),
                })
            }
        }
        "DBS" => expect_empty(rest, "DBS").map(|()| Request::ListDbs),
        "QUIT" => expect_empty(rest, "QUIT").map(|()| Request::Quit),
        "CREATE" => Ok(Request::Create {
            db: name_ok(rest, "database")?,
        }),
        "SAVE" => Ok(Request::Save {
            db: name_ok(rest, "database")?,
        }),
        "LOAD" => Ok(Request::Load {
            db: name_ok(rest, "database")?,
        }),
        "QUERY" => {
            let (db, text) = split_word(rest);
            let db = name_ok(db, "database")?;
            let (as_of, text) = parse_as_of_clause(text)?;
            let (query, key) = parse_query_text(text)?;
            Ok(Request::Query {
                db,
                query,
                key,
                as_of,
            })
        }
        "SUBQUERY" => {
            let (id, text) = split_word(rest);
            let id = name_ok(id, "subscription")?;
            let (query, key) = parse_query_text(text)?;
            Ok(Request::SubQuery { id, query, key })
        }
        "UPDATE" => {
            let (db, rest) = split_word(rest);
            let db = name_ok(db, "database")?;
            let (at, payload) = parse_at_clause(rest)?;
            let changes = if payload.starts_with('{') {
                parse_change_set(payload).map_err(|e| ProtoError::syntax(e.to_string()))?
            } else {
                // A single bare op is accepted as a one-element set.
                let op = parse_op(payload).map_err(|e| ProtoError::syntax(e.to_string()))?;
                let mut set = ChangeSet::new();
                set.push(op)
                    .map_err(|e| ProtoError::syntax(e.to_string()))?;
                set
            };
            Ok(Request::Update { db, at, changes })
        }
        "MUTATE" => {
            let (db, rest) = split_word(rest);
            let db = name_ok(db, "database")?;
            let (at, payload) = parse_at_clause(rest)?;
            // Syntax check now (spans surface at the session edge);
            // compilation against the live snapshot happens in the worker.
            lorel::parse_update(payload).map_err(|e| ProtoError::syntax(e.to_string()))?;
            Ok(Request::Mutate {
                db,
                at,
                stmt: payload.to_string(),
            })
        }
        "DEFINE" => {
            let program = format!("define {rest}");
            lorel::parse_program(&program).map_err(|e| ProtoError::syntax(e.to_string()))?;
            Ok(Request::Define { program })
        }
        "SUBSCRIBE" => {
            let (id, rest) = split_word(rest);
            let id = name_ok(id, "subscription")?;
            let rest = expect_kw(rest, "POLL")?;
            let (polling, rest) = split_word(rest);
            let polling = name_ok(polling, "polling query")?;
            let rest = expect_kw(rest, "FILTER")?;
            let (filter, rest) = split_word(rest);
            let filter = name_ok(filter, "filter query")?;
            let spec = expect_kw(rest, "FREQ")?;
            let freq: FrequencySpec = spec
                .trim()
                .parse()
                .map_err(|e| ProtoError::syntax(format!("bad frequency {spec:?}: {e}")))?;
            Ok(Request::Subscribe {
                id,
                polling,
                filter,
                freq,
            })
        }
        "UNSUBSCRIBE" => Ok(Request::Unsubscribe {
            id: name_ok(rest, "subscription")?,
        }),
        "TICK" => {
            let until: Timestamp = rest
                .trim()
                .parse()
                .map_err(|e| ProtoError::syntax(format!("bad timestamp {rest:?}: {e}")))?;
            Ok(Request::Tick { until })
        }
        "NOTES" => {
            let id = rest.trim();
            if id == "*" {
                Ok(Request::Notes {
                    id: id.to_string(),
                })
            } else {
                Ok(Request::Notes {
                    id: name_ok(id, "subscription")?,
                })
            }
        }
        "LSN" => Ok(Request::Lsn {
            db: name_ok(rest.trim(), "database")?,
        }),
        "REPLICATE" => {
            let (db, rest) = split_word(rest);
            let db = name_ok(db, "database")?;
            let rest = expect_kw(rest, "FROM")?;
            let (lsn, rest) = split_word(rest);
            let from = lsn_from_wire(lsn)?;
            let rest = rest.trim();
            let peer = if rest.is_empty() {
                None
            } else {
                let peer = expect_kw(rest, "AS")?;
                Some(name_ok(peer.trim(), "peer")?)
            };
            Ok(Request::Replicate { db, from, peer })
        }
        "PROMOTE" => Ok(Request::Promote {
            db: name_ok(rest.trim(), "database")?,
        }),
        "FENCE" => {
            let (db, rest) = split_word(rest);
            let db = name_ok(db, "database")?;
            let epoch = rest.trim().parse::<u64>().map_err(|_| {
                ProtoError::syntax(format!("bad epoch {:?} (decimal u64)", rest.trim()))
            })?;
            Ok(Request::Fence { db, epoch })
        }
        other => Err(ProtoError {
            kind: ErrKind::Unknown,
            message: format!("unknown verb {other:?}"),
        }),
    }
}

/// Whether `id` is a well-formed pipelining tag: 1–40 characters, each
/// alphanumeric or `-`, `_`, `.`.
fn tag_ok(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 40
        && id
            .chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

/// Parse one request line with an optional leading `#<id>` pipelining tag.
///
/// A well-formed tag is returned alongside the parse of the remainder; a
/// line with no `#` prefix parses exactly like [`parse_request`] with no
/// tag. A *malformed* tag (empty, too long, or bad characters) yields
/// `(None, Err(..))` — the error response goes back untagged, since the
/// tag itself cannot be trusted for matching.
pub fn parse_tagged_request(line: &str) -> (Option<String>, Result<Request, ProtoError>) {
    let trimmed = line.trim_start();
    let Some(rest) = trimmed.strip_prefix('#') else {
        return (None, parse_request(line));
    };
    // The id must hug the '#' — no `split_word`, which would skip
    // leading whitespace and mistake the verb for a tag.
    let (id, remainder) = rest
        .split_once(char::is_whitespace)
        .unwrap_or((rest, ""));
    if !tag_ok(id) {
        return (
            None,
            Err(ProtoError::syntax(format!(
                "bad request tag {id:?} (1-40 chars: alphanumeric, '-', '_', '.')"
            ))),
        );
    }
    (Some(id.to_string()), parse_request(remainder))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn verbs_parse() {
        assert!(matches!(parse_request("PING"), Ok(Request::Ping)));
        assert!(matches!(parse_request("  stats  "), Ok(Request::Stats)));
        assert!(matches!(
            parse_request("CREATE guide"),
            Ok(Request::Create { .. })
        ));
        let q = parse_request("QUERY guide select guide.restaurant").unwrap();
        match q {
            Request::Query { db, key, .. } => {
                assert_eq!(db, "guide");
                assert!(key.contains("guide . restaurant") || key.contains("guide.restaurant"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn query_as_of_parses_lsn_and_timestamp_points() {
        let r = parse_request("QUERY guide AS OF 12345 select guide.restaurant").unwrap();
        match r {
            Request::Query { db, as_of, .. } => {
                assert_eq!(db, "guide");
                assert_eq!(as_of, Some(Timestamp::from_raw_minutes(12345)));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let r = parse_request("QUERY guide AS OF 8Jan97 select guide.restaurant").unwrap();
        match r {
            Request::Query { as_of, .. } => {
                assert_eq!(as_of, Some("8Jan97".parse().unwrap()));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // `-` is the NEG_INFINITY wire form, same as `LSN` output.
        let r = parse_request("QUERY guide AS OF - select guide.restaurant").unwrap();
        assert!(matches!(
            r,
            Request::Query {
                as_of: Some(t),
                ..
            } if t == Timestamp::NEG_INFINITY
        ));
        // Without the clause, as_of is None and the query is untouched.
        let r = parse_request("QUERY guide select guide.restaurant").unwrap();
        assert!(matches!(r, Request::Query { as_of: None, .. }));
        // A garbled point is a syntax error, not a silent current-state read.
        assert!(parse_request("QUERY guide AS OF nonsense select guide.restaurant").is_err());
        assert!(parse_request("QUERY guide AS OF").is_err());
    }

    #[test]
    fn update_line_parses_set_and_single_op() {
        let r = parse_request("UPDATE guide AT 1Jan97 8:00pm ; {updNode(n1, 20)}").unwrap();
        match r {
            Request::Update { db, changes, .. } => {
                assert_eq!(db, "guide");
                assert_eq!(changes.len(), 1);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let r = parse_request("UPDATE guide AT 1Jan97 8:00pm ; updNode(n1, 20)").unwrap();
        assert!(matches!(r, Request::Update { at: Some(_), .. }));
    }

    #[test]
    fn at_now_asks_the_server_to_allocate_the_timestamp() {
        let r = parse_request("UPDATE guide AT now ; {updNode(n1, 20)}").unwrap();
        assert!(matches!(r, Request::Update { at: None, .. }));
        let r =
            parse_request("MUTATE guide AT NOW ; update R := 5 from guide.restaurant R").unwrap();
        assert!(matches!(r, Request::Mutate { at: None, .. }));
        // `now` is a keyword of the AT clause only, not a timestamp.
        assert_eq!(parse_request("TICK now").unwrap_err().kind, ErrKind::Syntax);
    }

    #[test]
    fn promote_and_fence_parse_and_classify_as_writes() {
        match parse_request("PROMOTE guide").unwrap() {
            Request::Promote { db } => assert_eq!(db, "guide"),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(!parse_request("PROMOTE guide").unwrap().is_read());
        assert_eq!(parse_request("PROMOTE").unwrap_err().kind, ErrKind::Syntax);

        match parse_request("FENCE guide 3").unwrap() {
            Request::Fence { db, epoch } => {
                assert_eq!(db, "guide");
                assert_eq!(epoch, 3);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(!parse_request("FENCE guide 3").unwrap().is_read());
        assert_eq!(parse_request("FENCE guide").unwrap_err().kind, ErrKind::Syntax);
        assert_eq!(parse_request("FENCE guide -1").unwrap_err().kind, ErrKind::Syntax);
        // The typed error code round-trips.
        assert_eq!(ErrKind::from_code(ErrKind::Fenced.code()), ErrKind::Fenced);
    }

    #[test]
    fn subscribe_line_parses() {
        let r = parse_request(
            "SUBSCRIBE S1 POLL Restaurants FILTER NewRestaurants FREQ every night at 11:30pm",
        )
        .unwrap();
        match r {
            Request::Subscribe {
                id, polling, filter, ..
            } => {
                assert_eq!((id.as_str(), polling.as_str(), filter.as_str()),
                           ("S1", "Restaurants", "NewRestaurants"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn gen_parses_with_and_without_database() {
        assert!(matches!(
            parse_request("GEN"),
            Ok(Request::Generation { db: None })
        ));
        match parse_request("GEN guide").unwrap() {
            Request::Generation { db: Some(db) } => assert_eq!(db, "guide"),
            other => panic!("wrong parse: {other:?}"),
        }
        assert_eq!(parse_request("GEN bad/name").unwrap_err().kind, ErrKind::Syntax);
    }

    #[test]
    fn replication_verbs_parse_and_classify_as_reads() {
        match parse_request("LSN guide").unwrap() {
            Request::Lsn { db } => assert_eq!(db, "guide"),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse_request("LSN guide").unwrap().is_read());
        assert_eq!(parse_request("LSN").unwrap_err().kind, ErrKind::Syntax);

        match parse_request("REPLICATE guide FROM -").unwrap() {
            Request::Replicate { db, from, peer } => {
                assert_eq!(db, "guide");
                assert_eq!(from, Timestamp::NEG_INFINITY);
                assert_eq!(peer, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse_request("REPLICATE guide FROM 14240400 AS follower-1").unwrap() {
            Request::Replicate { from, peer, .. } => {
                assert_eq!(from, Timestamp::from_raw_minutes(14_240_400));
                assert_eq!(peer.as_deref(), Some("follower-1"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse_request("REPLICATE guide FROM -").unwrap().is_read());
        assert_eq!(
            parse_request("REPLICATE guide FROM nonsense").unwrap_err().kind,
            ErrKind::Syntax
        );
        assert_eq!(
            parse_request("REPLICATE guide AT 5").unwrap_err().kind,
            ErrKind::Syntax
        );
    }

    #[test]
    fn lsn_wire_format_round_trips() {
        for at in [
            Timestamp::NEG_INFINITY,
            Timestamp::from_raw_minutes(0),
            Timestamp::from_raw_minutes(-5),
            Timestamp::from_raw_minutes(14_240_400),
        ] {
            assert_eq!(lsn_from_wire(&lsn_to_wire(at)).unwrap(), at);
        }
        assert_eq!(lsn_to_wire(Timestamp::NEG_INFINITY), "-");
        assert!(lsn_from_wire("12.5").is_err());
        assert!(lsn_from_wire("").is_err());
    }

    #[test]
    fn tagged_requests_parse() {
        let (tag, req) = parse_tagged_request("#q1 PING");
        assert_eq!(tag.as_deref(), Some("q1"));
        assert!(matches!(req, Ok(Request::Ping)));

        let (tag, req) = parse_tagged_request("PING");
        assert_eq!(tag, None);
        assert!(matches!(req, Ok(Request::Ping)));

        // A tagged syntax error keeps its tag (the tag itself is fine).
        let (tag, req) = parse_tagged_request("#a.b-c QUERY guide selec x");
        assert_eq!(tag.as_deref(), Some("a.b-c"));
        assert_eq!(req.unwrap_err().kind, ErrKind::Syntax);

        // Malformed tags are untrustworthy: no tag, syntax error.
        for line in ["# PING", "#bad/tag PING", &format!("#{} PING", "x".repeat(41))] {
            let (tag, req) = parse_tagged_request(line);
            assert_eq!(tag, None, "{line:?}");
            assert_eq!(req.unwrap_err().kind, ErrKind::Syntax, "{line:?}");
        }
    }

    #[test]
    fn tagged_responses_round_trip_the_wire() {
        let cases = vec![
            Response::Ok("pong".into()),
            Response::Rows(vec!["a".into(), "b".into()]),
            Response::err(ErrKind::Timeout, "too slow"),
        ];
        for resp in cases {
            let wire = resp.render_tagged(Some("req-7"));
            assert!(wire.starts_with("#req-7 "));
            let mut reader = BufReader::new(wire.as_bytes());
            let (tag, back) = Response::read_tagged_from(&mut reader).unwrap().unwrap();
            assert_eq!(tag.as_deref(), Some("req-7"));
            assert_eq!(back, resp);

            // Untagged frames read back with no tag through the same API.
            let wire = resp.render_tagged(None);
            let mut reader = BufReader::new(wire.as_bytes());
            let (tag, back) = Response::read_tagged_from(&mut reader).unwrap().unwrap();
            assert_eq!(tag, None);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn errors_have_kinds() {
        assert_eq!(parse_request("FROB x").unwrap_err().kind, ErrKind::Unknown);
        assert_eq!(parse_request("").unwrap_err().kind, ErrKind::Syntax);
        assert_eq!(
            parse_request("QUERY guide select ...bad(((").unwrap_err().kind,
            ErrKind::Syntax
        );
        assert_eq!(
            parse_request("TICK not-a-time").unwrap_err().kind,
            ErrKind::Syntax
        );
    }

    #[test]
    fn escape_round_trips() {
        for s in ["", "plain", "a\tb\nc\\d\re", "\\", "trailing\\"] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }

    #[test]
    fn responses_round_trip_the_wire() {
        let cases = vec![
            Response::Ok("pong".into()),
            Response::Rows(vec!["x=&n1\ty=20".into(), "weird\\row".into()]),
            Response::Rows(vec![]),
            Response::err(ErrKind::Busy, "queue full"),
        ];
        for resp in cases {
            let wire = resp.render();
            let mut reader = BufReader::new(wire.as_bytes());
            let back = Response::read_from(&mut reader).unwrap().unwrap();
            assert_eq!(back, resp);
        }
        let mut empty = BufReader::new(&b""[..]);
        assert_eq!(Response::read_from(&mut empty).unwrap(), None);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        /// The request parser must reject garbage with an error, never
        /// panic — the same contract as `lorel::parser::fuzz_tests`.
        #[test]
        fn parse_request_never_panics_on_arbitrary_input(line in "\\PC{0,120}") {
            let _ = parse_request(&line);
            let _ = parse_tagged_request(&line);
            let _ = unescape(&line);
            let _ = lsn_from_wire(&line);
        }

        /// Tagged frames round-trip for arbitrary tags and rows. (The tag
        /// alphabet is enforced by construction — the offline proptest
        /// stand-in does not honor regex character classes.)
        #[test]
        fn tagged_frames_round_trip(
            raw in "\\PC{0,40}",
            rows in proptest::collection::vec("\\PC{0,40}", 0..4),
        ) {
            let mut id: String = raw
                .chars()
                .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
                .take(40)
                .collect();
            if id.is_empty() {
                id.push('t');
            }
            let resp = Response::Rows(rows.clone());
            let wire = resp.render_tagged(Some(&id));
            let mut reader = std::io::BufReader::new(wire.as_bytes());
            let (tag, back) = Response::read_tagged_from(&mut reader).unwrap().unwrap();
            prop_assert_eq!(tag.as_deref(), Some(id.as_str()));
            prop_assert_eq!(back, resp);
        }

        /// Request-shaped fragments assembled from protocol atoms: the
        /// parser still never panics, and whatever parses classifies as
        /// read or write without panicking either.
        #[test]
        fn parse_request_never_panics_on_protocol_fragments(
            parts in proptest::collection::vec(
                proptest::sample::select(vec![
                    "QUERY", "UPDATE", "MUTATE", "SUBSCRIBE", "TICK", "DEFINE",
                    "NOTES", "SUBQUERY", "guide", "S1", "AT", ";", "POLL",
                    "FILTER", "FREQ", "every", "10", "minutes", "night", "at",
                    "11:30pm", "select", "guide.restaurant", "where", "<",
                    "creNode(n9, C)", "{updNode(n1, 20)}", "1Jan97", "8:00pm",
                    "*", "price", "=", "\"x\"", "insert", "t[-1]",
                    "REPLICATE", "LSN", "FROM", "AS", "OF", "-", "12345",
                    "follower-1", "PROMOTE", "FENCE", "now", "7",
                ]),
                0..12,
            )
        ) {
            let line = parts.join(" ");
            if let Ok(req) = parse_request(&line) {
                let _ = req.is_read();
            }
        }

        /// Wire escaping round-trips any string.
        #[test]
        fn escape_round_trips(s in "\\PC{0,100}") {
            prop_assert_eq!(unescape(&escape(&s)), s);
        }

        /// A rendered response frame parses back to itself.
        #[test]
        fn response_frames_round_trip(rows in proptest::collection::vec("\\PC{0,40}", 0..6)) {
            let resp = Response::Rows(rows.clone());
            let wire = resp.render();
            let mut reader = std::io::BufReader::new(wire.as_bytes());
            let back = Response::read_from(&mut reader).unwrap().unwrap();
            prop_assert_eq!(back, resp);
        }
    }
}
