//! Wire framing for replication batches.
//!
//! A `REPLICATE <db> FROM <lsn>` request is answered with an ordinary
//! row block, so the stream rides the existing line protocol — tagged
//! pipelining, escaping, and client framing all apply unchanged. The
//! block is one header row followed by either snapshot chunks or log
//! records:
//!
//! ```text
//! REPL <db> FROM <from> AT <primary-lsn> SNAP <chunks> RECS <n> [EPOCH <e>]
//! SNAP <hex>            × chunks   (checkpoint image, lore-codec bytes)
//! REC <lsn> {op, op, …} × n        (history entries strictly after FROM)
//! ```
//!
//! The `EPOCH` token carries the serving shard's promotion epoch; a
//! header without it (pre-failover peers) decodes as epoch 0. Followers
//! adopt a newer epoch and reject batches from an older one with the
//! typed `FENCED` error — a deposed primary cannot feed a follower that
//! has already seen the promoted lineage.
//!
//! LSNs travel as raw minute counts (`-` for negative infinity — see
//! [`lsn_to_wire`]), immune to timestamp display quirks. Records reuse
//! the paper's change-operation notation — the same text the WAL frames,
//! so a shipped batch is exactly a slice of the primary's history `H`.
//! Snapshot images are the Section 5.1 OEM encoding of the primary's
//! DOEM graph (the checkpoint format), hex-armored into row-safe chunks.

use crate::protocol::{lsn_from_wire, lsn_to_wire};
use doem::{decode_doem, encode_doem, DoemDatabase};
use oem::{parse_change_set, ChangeSet, Timestamp};

/// Snapshot bytes per `SNAP` row (each byte is two hex characters on the
/// wire). Small enough that a row stays comfortably line-sized, large
/// enough that even big images ship in few rows.
const SNAP_CHUNK: usize = 4096;

/// One replication batch, as cut by the primary and decoded by the
/// follower: either a full checkpoint image (the follower is behind the
/// retained log tail and must resync) or a run of history entries
/// strictly after the follower's applied LSN.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplBatch {
    /// The database being replicated.
    pub db: String,
    /// The LSN the follower asked to resume from.
    pub from: Timestamp,
    /// The primary's applied LSN when the batch was cut; the follower is
    /// caught up once its own applied LSN reaches it.
    pub primary_lsn: Timestamp,
    /// Full checkpoint image (lore-codec bytes of the encoded DOEM) when
    /// the tail no longer reaches back to `from`; `None` for tail
    /// batches.
    pub snapshot: Option<Vec<u8>>,
    /// History entries strictly after `from`, in LSN order. Empty for
    /// snapshot batches and for an already-caught-up follower.
    pub records: Vec<(Timestamp, ChangeSet)>,
    /// The serving shard's promotion epoch when the batch was cut (0 for
    /// a never-promoted lineage, and for headers from pre-epoch peers).
    pub epoch: u64,
}

impl ReplBatch {
    /// Render the batch as response rows (the primary half).
    pub fn to_rows(&self) -> Vec<String> {
        let chunks: Vec<String> = match &self.snapshot {
            Some(bytes) => bytes.chunks(SNAP_CHUNK).map(hex_encode).collect(),
            None => Vec::new(),
        };
        let mut rows = Vec::with_capacity(1 + chunks.len() + self.records.len());
        rows.push(format!(
            "REPL {} FROM {} AT {} SNAP {} RECS {} EPOCH {}",
            self.db,
            lsn_to_wire(self.from),
            lsn_to_wire(self.primary_lsn),
            chunks.len(),
            self.records.len(),
            self.epoch
        ));
        for chunk in chunks {
            rows.push(format!("SNAP {chunk}"));
        }
        for (at, changes) in &self.records {
            rows.push(format!("REC {} {changes}", lsn_to_wire(*at)));
        }
        rows
    }

    /// Decode a batch from response rows (the follower half). Total over
    /// arbitrary rows: every defect is an `Err`, never a panic
    /// (fuzz-enforced below).
    pub fn from_rows(rows: &[String]) -> Result<ReplBatch, String> {
        let header = rows.first().ok_or("empty replication batch")?;
        let mut words = header.split_whitespace();
        if words.next() != Some("REPL") {
            return Err(format!("bad replication header {header:?}"));
        }
        let db = words.next().ok_or("header missing database")?.to_string();
        expect_kw(&mut words, "FROM")?;
        let from = lsn_from_wire(words.next().ok_or("header missing FROM lsn")?)
            .map_err(|e| e.message)?;
        expect_kw(&mut words, "AT")?;
        let primary_lsn = lsn_from_wire(words.next().ok_or("header missing AT lsn")?)
            .map_err(|e| e.message)?;
        expect_kw(&mut words, "SNAP")?;
        let chunks: usize = parse_count(words.next(), "SNAP")?;
        expect_kw(&mut words, "RECS")?;
        let n: usize = parse_count(words.next(), "RECS")?;
        // EPOCH is optional for compatibility with pre-failover peers.
        let epoch = match words.next() {
            None => 0,
            Some("EPOCH") => {
                let w = words.next().ok_or("header missing EPOCH value")?;
                w.parse::<u64>()
                    .map_err(|_| format!("bad EPOCH value {w:?}"))?
            }
            Some(other) => {
                return Err(format!(
                    "trailing word {other:?} in replication header {header:?}"
                ));
            }
        };
        if words.next().is_some() {
            return Err(format!("trailing words in replication header {header:?}"));
        }
        if rows.len() != 1 + chunks + n {
            return Err(format!(
                "replication batch has {} rows, header promised {}",
                rows.len(),
                1 + chunks + n
            ));
        }
        let snapshot = if chunks > 0 {
            let mut bytes = Vec::new();
            for row in &rows[1..1 + chunks] {
                let hex = row
                    .strip_prefix("SNAP ")
                    .ok_or_else(|| format!("expected SNAP row, found {row:?}"))?;
                bytes.extend(hex_decode(hex)?);
            }
            Some(bytes)
        } else {
            None
        };
        let mut records = Vec::with_capacity(n);
        for row in &rows[1 + chunks..] {
            let rest = row
                .strip_prefix("REC ")
                .ok_or_else(|| format!("expected REC row, found {row:?}"))?;
            let (lsn, ops) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("REC row missing change set: {row:?}"))?;
            let at = lsn_from_wire(lsn).map_err(|e| e.message)?;
            let changes = parse_change_set(ops.trim()).map_err(|e| e.to_string())?;
            records.push((at, changes));
        }
        Ok(ReplBatch {
            db,
            from,
            primary_lsn,
            snapshot,
            records,
            epoch,
        })
    }
}

fn expect_kw(words: &mut std::str::SplitWhitespace<'_>, kw: &str) -> Result<(), String> {
    match words.next() {
        Some(w) if w == kw => Ok(()),
        other => Err(format!("expected {kw} in replication header, found {other:?}")),
    }
}

fn parse_count(word: Option<&str>, what: &str) -> Result<usize, String> {
    let w = word.ok_or_else(|| format!("header missing {what} count"))?;
    // Cap far above any real batch so a hostile header cannot demand an
    // absurd allocation.
    let n: usize = w
        .parse()
        .map_err(|_| format!("bad {what} count {w:?}"))?;
    if n > 1 << 24 {
        return Err(format!("{what} count {n} is implausibly large"));
    }
    Ok(n)
}

/// Encode a DOEM database as snapshot bytes: the Section 5.1 OEM
/// encoding serialized through the lore codec — byte-identical to what a
/// checkpoint file holds.
pub fn snapshot_bytes(d: &DoemDatabase) -> Vec<u8> {
    lore::codec::encode_database(&encode_doem(d).oem).to_vec()
}

/// Inverse of [`snapshot_bytes`].
pub fn snapshot_from_bytes(image: &[u8]) -> Result<DoemDatabase, String> {
    let oem = lore::codec::decode_database(bytes::Bytes::copy_from_slice(image))
        .map_err(|e| e.to_string())?;
    decode_doem(&oem).map_err(|e| e.to_string())
}

fn hex_encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

fn hex_decode(hex: &str) -> Result<Vec<u8>, String> {
    let digit = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("bad hex digit {:?}", c as char)),
        }
    };
    let bytes = hex.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err("odd-length hex chunk".into());
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::guide::{guide_figure2, history_example_2_3};

    fn sample_records() -> Vec<(Timestamp, ChangeSet)> {
        history_example_2_3()
            .entries()
            .iter()
            .map(|e| (e.at, e.changes.clone()))
            .collect()
    }

    #[test]
    fn tail_batches_round_trip() {
        let records = sample_records();
        let batch = ReplBatch {
            db: "guide".into(),
            from: Timestamp::NEG_INFINITY,
            primary_lsn: records.last().unwrap().0,
            snapshot: None,
            records,
            epoch: 3,
        };
        let rows = batch.to_rows();
        assert!(rows[0].starts_with("REPL guide FROM - AT "));
        assert!(rows[0].ends_with(" EPOCH 3"));
        assert_eq!(ReplBatch::from_rows(&rows).unwrap(), batch);
    }

    #[test]
    fn snapshot_batches_round_trip_through_the_image_codec() {
        let doem = doem::DoemDatabase::from_snapshot(&guide_figure2());
        let batch = ReplBatch {
            db: "guide".into(),
            from: Timestamp::NEG_INFINITY,
            primary_lsn: Timestamp::from_ymd(1997, 1, 1),
            snapshot: Some(snapshot_bytes(&doem)),
            records: Vec::new(),
            epoch: 0,
        };
        let rows = batch.to_rows();
        let back = ReplBatch::from_rows(&rows).unwrap();
        assert_eq!(back, batch);
        let decoded = snapshot_from_bytes(back.snapshot.as_ref().unwrap()).unwrap();
        assert!(oem::same_database(
            &doem::current_snapshot(&decoded),
            &guide_figure2()
        ));
    }

    #[test]
    fn big_snapshots_chunk_and_reassemble() {
        let image: Vec<u8> = (0..3 * SNAP_CHUNK + 17).map(|i| (i % 251) as u8).collect();
        let batch = ReplBatch {
            db: "big".into(),
            from: Timestamp::from_raw_minutes(5),
            primary_lsn: Timestamp::from_raw_minutes(9),
            snapshot: Some(image.clone()),
            records: Vec::new(),
            epoch: 0,
        };
        let rows = batch.to_rows();
        assert_eq!(rows.len(), 1 + 4);
        assert_eq!(
            ReplBatch::from_rows(&rows).unwrap().snapshot.unwrap(),
            image
        );
    }

    #[test]
    fn defective_batches_error_without_panicking() {
        let records = sample_records();
        let good = ReplBatch {
            db: "guide".into(),
            from: Timestamp::NEG_INFINITY,
            primary_lsn: records.last().unwrap().0,
            snapshot: None,
            records,
            epoch: 0,
        }
        .to_rows();
        // Truncated block, corrupted header, corrupted record.
        assert!(ReplBatch::from_rows(&good[..good.len() - 1]).is_err());
        assert!(ReplBatch::from_rows(&[]).is_err());
        let mut bad = good.clone();
        bad[0] = "REPL guide FROM x AT y SNAP 0 RECS 1".into();
        assert!(ReplBatch::from_rows(&bad).is_err());
        let mut bad = good.clone();
        bad[1] = "REC 12 {not ops}".into();
        assert!(ReplBatch::from_rows(&bad).is_err());
        // A hostile count cannot demand an absurd allocation.
        assert!(ReplBatch::from_rows(&["REPL g FROM - AT - SNAP 0 RECS 99999999999".into()])
            .is_err());
        // Epoch defects: missing value, non-numeric value, trailing junk.
        assert!(ReplBatch::from_rows(&["REPL g FROM - AT - SNAP 0 RECS 0 EPOCH".into()])
            .is_err());
        assert!(ReplBatch::from_rows(&["REPL g FROM - AT - SNAP 0 RECS 0 EPOCH x".into()])
            .is_err());
        assert!(
            ReplBatch::from_rows(&["REPL g FROM - AT - SNAP 0 RECS 0 EPOCH 1 junk".into()])
                .is_err()
        );
    }

    #[test]
    fn headers_without_epoch_decode_as_epoch_zero() {
        // Batches from pre-failover primaries omit the EPOCH token; they
        // must keep decoding as the never-promoted lineage (epoch 0).
        let rows = vec!["REPL guide FROM - AT - SNAP 0 RECS 0".to_string()];
        let batch = ReplBatch::from_rows(&rows).unwrap();
        assert_eq!(batch.epoch, 0);
        assert!(batch.records.is_empty());
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// The batch decoder must reject garbage with an error, never
        /// panic — the contract every hand-rolled parser in this
        /// workspace carries.
        #[test]
        fn from_rows_never_panics_on_arbitrary_rows(
            rows in proptest::collection::vec("\\PC{0,80}", 0..8),
        ) {
            let _ = ReplBatch::from_rows(&rows);
            for row in &rows {
                let _ = hex_decode(row);
            }
        }

        /// Batch-shaped fragments assembled from protocol atoms.
        #[test]
        fn from_rows_never_panics_on_protocol_fragments(
            rows in proptest::collection::vec(
                proptest::sample::select(vec![
                    "REPL guide FROM - AT 100 SNAP 0 RECS 1",
                    "REPL guide FROM 5 AT 9 SNAP 1 RECS 0",
                    "REPL guide FROM - AT 100 SNAP 0 RECS 1 EPOCH 3",
                    "EPOCH 3",
                    "REPL x FROM - AT - SNAP 0 RECS 0",
                    "SNAP deadbeef",
                    "SNAP zz",
                    "REC 12 {updNode(n1, 20)}",
                    "REC - {creNode(n9, C)}",
                    "REC 12",
                    "REPL",
                    "",
                ]),
                0..6,
            ),
        ) {
            let owned: Vec<String> = rows.iter().map(|s| s.to_string()).collect();
            let _ = ReplBatch::from_rows(&owned);
        }

        /// Hex armor round-trips arbitrary bytes.
        #[test]
        fn hex_round_trips(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
            prop_assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        }
    }
}
