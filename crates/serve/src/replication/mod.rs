//! WAL-shipping replication: primary → follower serve instances.
//!
//! The paper's central construction — a database is a base snapshot `O`
//! plus a timestamp-ordered history `H` of change sets, `D(O, H)` — is
//! also a replication protocol. The primary's WAL *is* `H`; shipping it
//! preserves the total order; a follower that has applied the prefix of
//! `H` up to LSN `t` holds exactly the paper's snapshot-at-time `O_t(D)`
//! and may legally serve any query against it, tagged with `t` (the
//! `LSN <db>` verb). See DESIGN.md §10 for the full mapping.
//!
//! The subsystem splits three ways:
//!
//! - [`stream`]: the wire framing — batches of history entries (or a
//!   checkpoint image for catch-up) carried inside ordinary response row
//!   blocks, so replication rides the existing line protocol.
//! - `primary` (crate-private): per-shard log-tail retention with
//!   follower leases, and the `REPLICATE` request handler.
//! - `follower` (crate-private): the background thread a
//!   `--follow <addr>` instance runs — fetch, replay through the
//!   canonical change-op application order, reconnect with backoff.
//!
//! Followers reject client writes by construction (`READONLY` at the
//! request edge) while the replay path commits through the same
//! group-commit pipeline as local writes — a durable follower checkpoints
//! and crash-recovers with zero replication-specific recovery code.
//!
//! **Failover** (DESIGN.md §12): `PROMOTE <db>` flips a follower shard
//! writable at its applied LSN under a fresh **epoch fence**. The epoch
//! is stamped into WAL records and `REPLICATE` batch headers; the old
//! primary is told it is deposed (best-effort `FENCE <db> <epoch>`) and
//! answers client writes with the typed `FENCED` error from then on,
//! while a resurfacing deposed primary's stale batches are rejected by
//! epoch comparison on the follower side.

pub mod stream;

pub(crate) mod follower;
pub(crate) mod primary;

pub use stream::{snapshot_bytes, snapshot_from_bytes, ReplBatch};
