//! The primary half of replication: per-shard log-tail retention and the
//! `REPLICATE` request handler.
//!
//! Checkpoints truncate a shard's on-disk WAL, but followers may still
//! need records from before the truncation — so each shard keeps an
//! in-memory **retention tail**: the recent suffix of its history `H`,
//! appended under the same state write lock that publishes the commit
//! (group-commit batches therefore become atomically visible shipping
//! units). The tail prunes down to [`crate::ServeConfig::replication_retain`]
//! records, except that records not yet acknowledged by every leased
//! follower are kept up to a hard cap of 8× that — an attached-but-slow
//! follower stretches retention, a vanished one cannot pin memory
//! forever (its lease expires, and a follower behind the tail gets a
//! checkpoint image instead).
//!
//! Leases live in the [`ReplHub`]: each `REPLICATE … AS <peer>` refreshes
//! the peer's lease with the LSN it has applied; the minimum across
//! unexpired leases is published to the shard as an atomic **retention
//! floor**, so the publish path never touches the lease table.

use crate::faults::{FaultMode, FaultPoint};
use crate::metrics::Metrics;
use crate::protocol::{ErrKind, Response};
use crate::replication::stream::ReplBatch;
use crate::service::Shared;
use oem::{ChangeSet, Timestamp};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// A lease with no refresh for this long no longer pins retention.
const LEASE_TTL: Duration = Duration::from_secs(15);

/// How far past `retain` an unacknowledged suffix may stretch the tail.
const HARD_CAP_FACTOR: usize = 8;

/// The recent suffix of one shard's history, kept for followers. The
/// records cover exactly the LSN interval `(base, last published]`: a
/// follower at LSN `from >= base` can be served records, one behind
/// `base` needs a checkpoint image.
pub(crate) struct ReplTail {
    /// The LSN just before the oldest retained record — the high-water
    /// mark of everything already pruned away.
    pub(crate) base: Timestamp,
    records: VecDeque<(Timestamp, ChangeSet)>,
}

impl ReplTail {
    /// An empty tail based at the shard's current LSN (nothing older can
    /// ever be served from it — a restarted primary makes stale
    /// followers resync via checkpoint image, by construction).
    pub(crate) fn new(base: Timestamp) -> ReplTail {
        ReplTail {
            base,
            records: VecDeque::new(),
        }
    }

    /// `true` when a follower at `from` can be served records (its next
    /// record is still retained).
    pub(crate) fn covers(&self, from: Timestamp) -> bool {
        from >= self.base
    }

    /// Append one published record and prune: down to `retain` records
    /// freely once acknowledged by every lease (`floor` is the minimum
    /// leased LSN in raw minutes; `i64::MAX` when no follower is
    /// attached), and past `HARD_CAP_FACTOR * retain` unconditionally.
    pub(crate) fn push(&mut self, at: Timestamp, changes: ChangeSet, retain: usize, floor: i64) {
        self.records.push_back((at, changes));
        let retain = retain.max(1);
        while self.records.len() > retain {
            let front_at = self.records[0].0;
            if front_at.raw_minutes() <= floor
                || self.records.len() > retain * HARD_CAP_FACTOR
            {
                self.base = front_at;
                self.records.pop_front();
            } else {
                break;
            }
        }
    }

    /// Up to `limit` retained records strictly after `from`, in LSN
    /// order. Caller checked [`ReplTail::covers`] first.
    pub(crate) fn records_after(
        &self,
        from: Timestamp,
        limit: usize,
    ) -> Vec<(Timestamp, ChangeSet)> {
        self.records
            .iter()
            .filter(|(at, _)| *at > from)
            .take(limit.max(1))
            .cloned()
            .collect()
    }

    /// Retained record count (test assertions on pruning behavior).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.records.len()
    }
}

/// db → peer → (applied LSN in raw minutes, last refresh).
type LeaseMap = HashMap<String, HashMap<String, (i64, Instant)>>;

/// Cross-shard replication bookkeeping, hung off the service's shared
/// state: follower retention leases (primary side) and the last observed
/// primary LSN per database (follower side, for `STATS` lag rows).
pub(crate) struct ReplHub {
    /// Follower retention leases keyed by database, then peer id.
    leases: Mutex<LeaseMap>,
    /// db → the primary's applied LSN last carried by a batch.
    observed_primary: Mutex<HashMap<String, i64>>,
}

impl ReplHub {
    pub(crate) fn new() -> ReplHub {
        ReplHub {
            leases: Mutex::new(HashMap::new()),
            observed_primary: Mutex::new(HashMap::new()),
        }
    }

    /// Refresh `peer`'s lease on `db` with the LSN it has applied, expire
    /// stale leases, and return the new retention floor: the minimum
    /// applied LSN across live leases (raw minutes; `i64::MAX` when none
    /// remain).
    pub(crate) fn ack(&self, db: &str, peer: &str, applied: Timestamp) -> i64 {
        let now = Instant::now();
        let mut leases = self.leases.lock();
        let per_db = leases.entry(db.to_string()).or_default();
        per_db.insert(peer.to_string(), (applied.raw_minutes(), now));
        per_db.retain(|_, (_, seen)| now.duration_since(*seen) < LEASE_TTL);
        per_db
            .values()
            .map(|(lsn, _)| *lsn)
            .min()
            .unwrap_or(i64::MAX)
    }

    /// Follower side: remember the primary's applied LSN for `db`.
    pub(crate) fn note_primary_lsn(&self, db: &str, lsn: Timestamp) {
        self.observed_primary
            .lock()
            .insert(db.to_string(), lsn.raw_minutes());
    }

    /// Follower side: the primary LSN last observed for `db`.
    pub(crate) fn observed_primary_lsn(&self, db: &str) -> Option<Timestamp> {
        self.observed_primary
            .lock()
            .get(db)
            .map(|raw| Timestamp::from_raw_minutes(*raw))
    }
}

/// Serve one `REPLICATE <db> FROM <from> [AS <peer>]` request: refresh
/// the peer's lease, then cut a batch — log records when the tail still
/// reaches back to `from`, otherwise the published checkpoint image. The
/// shard's state lock is held only to clone `Arc` handles; image
/// encoding happens outside every lock.
pub(crate) fn serve_replicate(
    shared: &Shared,
    db: &str,
    from: Timestamp,
    peer: Option<&str>,
) -> Response {
    let Some(shard) = shared.shard(db) else {
        return Response::err(ErrKind::NotFound, format!("no database named {db:?}"));
    };
    match shared.cfg.faults.check(FaultPoint::ReplicateServe) {
        Some(FaultMode::Stall(ms)) => {
            Metrics::bump(&shared.metrics.faults_injected);
            std::thread::sleep(Duration::from_millis(ms));
        }
        Some(_) => {
            Metrics::bump(&shared.metrics.faults_injected);
            return Response::err(
                ErrKind::Io,
                "injected partition while serving a replication batch",
            );
        }
        None => {}
    }
    if let Some(peer) = peer {
        let floor = shared.repl.ack(db, peer, from);
        shard.repl_floor.store(floor, Ordering::Relaxed);
    }
    let limit = shared.cfg.replication_batch.max(1);
    let (image, records, primary_lsn) = {
        let st = shard.state.read();
        if st.tail.covers(from) {
            (None, st.tail.records_after(from, limit), st.last_at)
        } else {
            (Some(st.doem.snapshot()), Vec::new(), st.last_at)
        }
    };
    if crate::trace_enabled() {
        let span = match (records.first(), records.last()) {
            (Some((a, _)), Some((b, _))) => format!("{}..{}", a.raw_minutes(), b.raw_minutes()),
            _ => "-".to_string(),
        };
        eprintln!(
            "TRACE serve id={:?} db={db} from={} primary_lsn={} epoch={} snapshot={} records={} [{span}] peer={peer:?}",
            shared.cfg.follower_id,
            from.raw_minutes(),
            primary_lsn.raw_minutes(),
            shard.epoch(),
            image.is_some(),
            records.len(),
        );
    }
    let snapshot = image.map(|d| crate::replication::stream::snapshot_bytes(&d));
    Metrics::bump(&shared.metrics.repl_batches_shipped);
    if snapshot.is_some() {
        Metrics::bump(&shared.metrics.repl_snapshots_shipped);
    }
    shared
        .metrics
        .repl_records_shipped
        .fetch_add(records.len() as u64, Ordering::Relaxed);
    let batch = ReplBatch {
        db: db.to_string(),
        from,
        primary_lsn,
        snapshot,
        records,
        epoch: shard.epoch(),
    };
    Response::Rows(batch.to_rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::guide::history_example_2_3;

    /// The i-th record of a synthetic history: change sets cycle through
    /// the guide example's, timestamps strictly increase with `i`.
    fn entry(i: usize) -> (Timestamp, ChangeSet) {
        let history = history_example_2_3();
        let entries = history.entries();
        let e = &entries[i % entries.len()];
        (Timestamp::from_raw_minutes(10 + i as i64), e.changes.clone())
    }

    #[test]
    fn tail_serves_exactly_the_records_after_from() {
        let mut tail = ReplTail::new(Timestamp::NEG_INFINITY);
        for i in 0..3 {
            let (at, c) = entry(i);
            tail.push(at, c, 16, i64::MAX);
        }
        assert!(tail.covers(Timestamp::NEG_INFINITY));
        assert_eq!(tail.records_after(Timestamp::NEG_INFINITY, 100).len(), 3);
        let first = entry(0).0;
        assert_eq!(tail.records_after(first, 100).len(), 2);
        assert_eq!(tail.records_after(first, 1).len(), 1);
    }

    #[test]
    fn unleased_tails_prune_to_retain_and_stop_covering() {
        let mut tail = ReplTail::new(Timestamp::NEG_INFINITY);
        for i in 0..5 {
            let (at, c) = entry(i);
            tail.push(at, c, 2, i64::MAX);
        }
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.base, entry(2).0);
        assert!(!tail.covers(Timestamp::NEG_INFINITY));
        assert!(tail.covers(entry(2).0));
    }

    #[test]
    fn a_lagging_lease_stretches_retention_up_to_the_hard_cap() {
        // Floor below every record: nothing may prune until the hard cap.
        let mut tail = ReplTail::new(Timestamp::NEG_INFINITY);
        let floor = i64::MIN;
        for i in 0..5 {
            let (at, c) = entry(i);
            tail.push(at, c, 2, floor);
        }
        assert_eq!(tail.len(), 5, "leased records must be retained");
        // Push far past the cap (2 * 8): retention gives up.
        let (last_at, c) = entry(5);
        let mut at = last_at;
        for _ in 0..20 {
            at = at.plus_minutes(1);
            tail.push(at, c.clone(), 2, floor);
        }
        assert!(tail.len() <= 2 * HARD_CAP_FACTOR + 1, "len {}", tail.len());
    }

    #[test]
    fn hub_floor_is_the_minimum_live_lease() {
        let hub = ReplHub::new();
        let t10 = Timestamp::from_raw_minutes(10);
        let t20 = Timestamp::from_raw_minutes(20);
        assert_eq!(hub.ack("db", "a", t20), 20);
        assert_eq!(hub.ack("db", "b", t10), 10);
        // A's refresh does not mask B's lag.
        assert_eq!(hub.ack("db", "a", t20), 10);
        // Leases are per database.
        assert_eq!(hub.ack("other", "c", t20), 20);
    }
}
