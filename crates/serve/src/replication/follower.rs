//! The follower half of replication: a background thread that pulls
//! batches from the primary and replays them into the local shards.
//!
//! The loop is deliberately client-shaped — it speaks the ordinary wire
//! protocol through a [`WireClient`], so anything between a follower and
//! its primary (proxies, fault injection, a different build) only has to
//! understand the line protocol. Each cycle lists the primary's
//! databases, then drives every one to the primary's applied LSN:
//! `REPLICATE <db> FROM <applied> AS <id>` either returns a checkpoint
//! image (installed wholesale, replacing the local shard) or a run of
//! history entries, which are applied through the **same commit path as
//! local writes** — sequenced onto the shard's group-commit pipeline
//! when durable, so follower WALs, checkpoints, and crash recovery need
//! no replication-specific code at all. The canonical change-op
//! application order inside each record is [`doem::apply_set`]'s,
//! identical on both sides by construction.
//!
//! Connection failures reconnect with exponential backoff (50ms doubling
//! to 2s, counted in `repl_reconnects`, the last slept delay published
//! as the `repl_backoff_ms` gauge); a session that made replication
//! progress — applied records or installed a snapshot — returns the
//! backoff to its floor, while a primary that accepts connections but
//! errors immediately keeps backing off. Every sleep is stop-aware so
//! shutdown never waits out a backoff.
//!
//! Promotion fencing: batches carry the serving shard's epoch. The sync
//! loop skips shards this instance has `PROMOTE`d (they are their own
//! lineage now), adopts newer epochs from batch headers, and rejects a
//! batch whose epoch is *behind* the local shard's — a deposed primary
//! resurfacing — with a `FENCED` session error.

use crate::faults::{FaultMode, FaultPoint};
use crate::metrics::Metrics;
use crate::protocol::{lsn_to_wire, ErrKind, Response};
use crate::replication::stream::ReplBatch;
use crate::service::{apply_replicated, install_replicated, install_replicated_doem, Shared};
use crate::tcp::WireClient;
use doem::DoemDatabase;
use oem::{OemDatabase, Timestamp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// First reconnect delay; doubles per failure up to [`BACKOFF_MAX`].
const BACKOFF_MIN: Duration = Duration::from_millis(50);
/// Reconnect delay ceiling.
const BACKOFF_MAX: Duration = Duration::from_secs(2);
/// Per-roundtrip wire timeout — a wedged primary surfaces as a
/// connection failure and re-enters the backoff path.
const WIRE_TIMEOUT: Duration = Duration::from_secs(5);

/// The reconnect backoff policy, factored out of the loop so the reset
/// rule is unit-testable: a session that made replication progress
/// returns the delay to [`BACKOFF_MIN`]; consecutive no-progress
/// failures double it up to [`BACKOFF_MAX`]. (An earlier version reset
/// off the *all-time* progress counters, so after the first successful
/// batch ever, every later outage was retried at the floor forever —
/// hammering a struggling primary at 50ms for the rest of the process.)
struct Backoff {
    cur: Duration,
}

impl Backoff {
    fn new() -> Backoff {
        Backoff { cur: BACKOFF_MIN }
    }

    /// The delay to sleep after a failed session; `made_progress` says
    /// whether *that session* applied records or installed a snapshot
    /// before it died.
    fn on_failure(&mut self, made_progress: bool) -> Duration {
        if made_progress {
            self.cur = BACKOFF_MIN;
        }
        let sleep = self.cur;
        self.cur = (self.cur * 2).min(BACKOFF_MAX);
        sleep
    }
}

/// The two counters that define "this session made progress".
fn progress(shared: &Shared) -> (u64, u64) {
    (
        shared.metrics.repl_records_applied.load(Ordering::Relaxed),
        shared
            .metrics
            .repl_snapshots_installed
            .load(Ordering::Relaxed),
    )
}

/// The follower thread body (spawned by `Service::start` when
/// [`crate::ServeConfig::follow`] is set). Runs until `stop`.
pub(crate) fn follower_loop(shared: &Arc<Shared>, stop: &AtomicBool) {
    let Some(addr) = shared.cfg.follow.clone() else {
        return;
    };
    let id = shared
        .cfg
        .follower_id
        .clone()
        .unwrap_or_else(|| format!("follower-{}", std::process::id()));
    let mut backoff = Backoff::new();
    while !stop.load(Ordering::SeqCst) {
        let before = progress(shared);
        let session = WireClient::connect(addr.as_str()).and_then(|mut client| {
            client.set_timeout(Some(WIRE_TIMEOUT))?;
            run_session(shared, &mut client, &id, stop)
        });
        match session {
            // A session only returns cleanly on stop.
            Ok(()) => return,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let sleep = backoff.on_failure(progress(shared) != before);
                shared
                    .metrics
                    .repl_backoff_ms
                    .store(sleep.as_millis() as u64, Ordering::Relaxed);
                Metrics::bump(&shared.metrics.repl_reconnects);
                sleep_stop_aware(stop, sleep);
            }
        }
    }
}

/// One connected session: repeatedly list the primary's databases and
/// drive each to the primary's applied LSN, then idle-poll. Any I/O or
/// decode error tears the session down to the reconnect path.
fn run_session(
    shared: &Arc<Shared>,
    client: &mut WireClient,
    id: &str,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    while !stop.load(Ordering::SeqCst) {
        let dbs = match client.roundtrip("DBS")? {
            Response::Rows(rows) => rows,
            other => {
                return Err(std::io::Error::other(format!(
                    "primary answered DBS with {other:?}"
                )))
            }
        };
        for db in dbs {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            sync_db(shared, client, &db, id, stop)?;
        }
        sleep_stop_aware(stop, shared.cfg.follow_poll);
    }
    Ok(())
}

/// Drive one database to the primary's applied LSN: request batches from
/// the local applied LSN until it catches the `primary_lsn` a batch
/// carried. Snapshot batches replace the local shard wholesale; record
/// batches commit through the ordinary write path.
fn sync_db(
    shared: &Arc<Shared>,
    client: &mut WireClient,
    db: &str,
    id: &str,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // A promoted shard is its own lineage now: replaying the old
        // primary into it would silently undo the fence.
        if shared.shard(db).is_some_and(|s| s.is_promoted()) {
            return Ok(());
        }
        let applied = applied_lsn(shared, db);
        let line = format!("REPLICATE {db} FROM {} AS {id}", lsn_to_wire(applied));
        let rows = match client.roundtrip(&line)? {
            Response::Rows(rows) => rows,
            // The database vanished between DBS and now; not an error.
            Response::Error {
                kind: ErrKind::NotFound,
                ..
            } => return Ok(()),
            Response::Error { kind, message } => {
                return Err(std::io::Error::other(format!(
                    "primary refused {line:?}: {} {message}",
                    kind.code()
                )))
            }
            Response::Ok(msg) => {
                return Err(std::io::Error::other(format!(
                    "primary answered REPLICATE with OK {msg:?}"
                )))
            }
        };
        let batch = ReplBatch::from_rows(&rows).map_err(std::io::Error::other)?;
        match shared.cfg.faults.check(FaultPoint::ReplicateApply) {
            Some(FaultMode::Stall(ms)) => {
                Metrics::bump(&shared.metrics.faults_injected);
                sleep_stop_aware(stop, Duration::from_millis(ms));
            }
            Some(_) => {
                Metrics::bump(&shared.metrics.faults_injected);
                // Dropping the connection mid-apply is the follower-side
                // partition; the reconnect path resumes from whatever
                // actually committed.
                return Err(crate::faults::Faults::injected_error(
                    FaultPoint::ReplicateApply,
                ));
            }
            None => {}
        }
        // Epoch ordering: a batch behind the local shard's epoch comes
        // from a deposed lineage (the old primary resurfacing) and must
        // not be applied; a newer epoch is adopted below, after the
        // batch lands (a snapshot install replaces the shard).
        if let Some(shard) = shared.shard(db) {
            if batch.epoch < shard.epoch() {
                Metrics::bump(&shared.metrics.fenced_rejects);
                return Err(std::io::Error::other(format!(
                    "FENCED: primary's batch for {db:?} carries stale epoch {} (local {})",
                    batch.epoch,
                    shard.epoch()
                )));
            }
        }
        if crate::trace_enabled() {
            let span = match (batch.records.first(), batch.records.last()) {
                (Some((a, _)), Some((b, _))) => format!("{}..{}", a.raw_minutes(), b.raw_minutes()),
                _ => "-".to_string(),
            };
            eprintln!(
                "TRACE sync id={id} db={db} from={} primary_lsn={} epoch={} snapshot={} records={} [{span}]",
                applied.raw_minutes(),
                batch.primary_lsn.raw_minutes(),
                batch.epoch,
                batch.snapshot.is_some(),
                batch.records.len(),
            );
        }
        shared.repl.note_primary_lsn(db, batch.primary_lsn);
        if let Some(image) = &batch.snapshot {
            install_replicated(shared, db, image, batch.primary_lsn)
                .map_err(std::io::Error::other)?;
            Metrics::bump(&shared.metrics.repl_snapshots_installed);
        } else {
            if shared.shard(db).is_none() {
                // A records-only batch means the primary's tail reaches
                // back to the beginning of the history: materialize the
                // empty database those records rebuild from (this is also
                // how an empty CREATEd database arrives at a follower).
                let empty = DoemDatabase::from_snapshot(&OemDatabase::new(db.to_string()));
                install_replicated_doem(shared, db, empty, Timestamp::NEG_INFINITY)
                    .map_err(std::io::Error::other)?;
                Metrics::bump(&shared.metrics.repl_snapshots_installed);
            }
            for (at, changes) in &batch.records {
                apply_replicated(shared, db, *at, changes).map_err(std::io::Error::other)?;
                Metrics::bump(&shared.metrics.repl_records_applied);
            }
        }
        if let Some(shard) = shared.shard(db) {
            shard.adopt_epoch(batch.epoch);
        }
        if applied_lsn(shared, db) >= batch.primary_lsn {
            return Ok(());
        }
    }
}

/// The local applied LSN for `db` (`NEG_INFINITY` when the shard does
/// not exist yet — the empty-state attach asks for everything).
fn applied_lsn(shared: &Shared, db: &str) -> Timestamp {
    shared
        .shard(db)
        .map(|s| s.state.read().last_at)
        .unwrap_or(Timestamp::NEG_INFINITY)
}

/// Sleep in short slices so a stop request never waits out a backoff.
fn sleep_stop_aware(stop: &AtomicBool, total: Duration) {
    let mut left = total;
    while !left.is_zero() && !stop.load(Ordering::SeqCst) {
        let slice = left.min(Duration::from_millis(50));
        std::thread::sleep(slice);
        left = left.saturating_sub(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_the_cap_without_progress() {
        let mut b = Backoff::new();
        let mut sleeps = Vec::new();
        for _ in 0..8 {
            sleeps.push(b.on_failure(false).as_millis());
        }
        assert_eq!(sleeps, vec![50, 100, 200, 400, 800, 1600, 2000, 2000]);
    }

    #[test]
    fn progress_resets_only_the_session_that_made_it() {
        let mut b = Backoff::new();
        // Outage: four no-progress failures climb the ladder.
        for _ in 0..4 {
            b.on_failure(false);
        }
        // A session that synced some records before dying starts over…
        assert_eq!(b.on_failure(true), BACKOFF_MIN);
        // …but the *next* failure without progress does not get the
        // floor again (the all-time-counter bug this struct replaces).
        assert_eq!(b.on_failure(false), BACKOFF_MIN * 2);
    }
}
