//! The per-database change-operation write-ahead log.
//!
//! The paper's central observation (§3) — a base snapshot `O` plus a
//! history `H` of timestamped change sets fully determines the database
//! through the `D(O, H)` construction — is, read operationally, the
//! recipe for a write-ahead log. Each committed mutation appends one
//! record to `<db>.wal`; recovery loads the latest checkpoint (a DOEM
//! image saved through [`lore::LoreStore`], exactly the Section 5.1
//! encoding `SAVE` uses) and replays the log tail through
//! [`doem::apply_set`] — the *same* code path that executed the writes
//! the first time.
//!
//! # Record format
//!
//! Records use the paper's own textual change-operation notation (the
//! `Display`/[`oem::parse_history`] round trip), one history entry per
//! record, framed for crash safety:
//!
//! ```text
//! u32 LE payload length | u32 LE CRC-32 of payload | payload
//! payload := "(<timestamp>, {op, op, …})\n"      e.g. (1Mar97 9:00am, {updNode(n1, 20)})
//! ```
//!
//! The text is the source of truth — a WAL is inspectable with `cat` and
//! editable with a text editor plus a reframing pass — while the length
//! and checksum let recovery distinguish "log ends here" from "log was
//! torn mid-append". The torn-tail rule: replay stops at the first frame
//! that is incomplete, fails its checksum, or does not parse; everything
//! before it is the **durable prefix**, everything from it on is
//! discarded (and truncated away on reopen, so later appends never chase
//! garbage bytes).
//!
//! Checkpoints: after `checkpoint_every` appends the service saves the
//! shard's DOEM image (atomic tmp-file + rename, via the lore store) and
//! only then truncates the log to zero. The crash window between save and
//! truncate is closed by a timestamp high-water mark: durable shards
//! enforce the paper's Definition 2.2 (change timestamps strictly
//! increase), so the timestamp doubles as a log sequence number, and
//! recovery skips log entries at or before the checkpoint's newest
//! annotation timestamp instead of double-applying them.

use crate::faults::{FaultMode, FaultPoint, Faults};
use crate::metrics::Metrics;
use oem::{parse_history, ChangeSet, Timestamp};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

/// CRC-32 (IEEE 802.3, reflected) of `bytes` — hand-rolled, bitwise;
/// the WAL's frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Render one history entry as a framed WAL record. Exposed so tests can
/// compute exact record boundaries for crash-point enumeration. Epoch-0
/// shorthand for [`encode_record_epoch`].
pub fn encode_record(at: Timestamp, changes: &ChangeSet) -> Vec<u8> {
    encode_record_epoch(at, changes, 0)
}

/// Render one history entry committed under promotion `epoch` as a framed
/// WAL record. Epoch 0 (the original, pre-failover lineage) emits exactly
/// the legacy payload — every WAL written before epochs existed replays
/// unchanged — while promoted lineages append an ` @e<epoch>` suffix so
/// recovery can restore the shard's fencing epoch from the log alone.
pub fn encode_record_epoch(at: Timestamp, changes: &ChangeSet, epoch: u64) -> Vec<u8> {
    let payload = if epoch == 0 {
        format!("({at}, {changes})\n").into_bytes()
    } else {
        format!("({at}, {changes}) @e{epoch}\n").into_bytes()
    };
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Split a record payload's optional ` @e<epoch>` suffix off, returning
/// the history text and the epoch (0 when absent — the legacy format).
fn split_epoch(text: &str) -> (&str, u64) {
    let body = text.strip_suffix('\n').unwrap_or(text);
    if let Some((head, tail)) = body.rsplit_once(" @e") {
        if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(epoch) = tail.parse() {
                return (head, epoch);
            }
        }
    }
    (body, 0)
}

/// What [`replay`] recovered from a log file.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// The whole-record prefix, in append order.
    pub entries: Vec<(Timestamp, ChangeSet)>,
    /// The promotion epoch each entry was committed under, parallel to
    /// `entries` (0 for records from before any failover).
    pub epochs: Vec<u64>,
    /// Byte length of that prefix — the offset reopening truncates to.
    pub good_len: u64,
    /// Whether bytes past `good_len` existed (a torn or corrupt tail).
    pub torn: bool,
}

/// Decode the longest whole-record prefix of a WAL file. A missing file
/// is an empty log. Never fails on content: any framing, checksum, or
/// parse defect ends the prefix and marks the replay torn.
pub fn replay(path: &Path) -> std::io::Result<WalReplay> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(e),
    }
    let mut out = WalReplay::default();
    let mut offset = 0usize;
    while offset + 8 <= bytes.len() {
        let len = u32::from_le_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]) as usize;
        let end = offset + 8 + len;
        if end > bytes.len() {
            break; // incomplete frame: torn mid-append
        }
        let want = u32::from_le_bytes([
            bytes[offset + 4],
            bytes[offset + 5],
            bytes[offset + 6],
            bytes[offset + 7],
        ]);
        let payload = &bytes[offset + 8..end];
        if crc32(payload) != want {
            break; // checksum mismatch: torn or corrupt
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let (body, epoch) = split_epoch(text);
        let Ok(history) = parse_history(body) else {
            break;
        };
        let Some(entry) = history.entries().first() else {
            break; // empty payload: not a record
        };
        if history.len() != 1 {
            break;
        }
        out.entries.push((entry.at, entry.changes.clone()));
        out.epochs.push(epoch);
        offset = end;
        out.good_len = offset as u64;
    }
    out.torn = (out.good_len as usize) < bytes.len();
    Ok(out)
}

/// The append half of one database's log. Held inside the shard state, so
/// the shard's write lock serializes appends, rewinds, and truncation.
#[derive(Debug)]
pub struct DbWal {
    path: PathBuf,
    file: File,
    /// Records appended since the last checkpoint; drives the service's
    /// checkpoint-every-N policy.
    pub since_checkpoint: u64,
    /// Current byte length (kept to rewind a record whose in-memory
    /// application was rejected after the append).
    len: u64,
}

impl DbWal {
    /// Open (creating if needed) the log at `path` for appending, first
    /// truncating it to `keep_len` bytes — the durable prefix a prior
    /// [`replay`] validated — so appends never follow a torn tail.
    pub fn open(path: impl AsRef<Path>, keep_len: u64) -> std::io::Result<DbWal> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        if file.metadata()?.len() != keep_len {
            file.set_len(keep_len)?;
            file.sync_data()?;
        }
        Ok(DbWal {
            path,
            file,
            since_checkpoint: 0,
            len: keep_len,
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current byte length of the log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` iff no records are in the log.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one record and fsync it. On success the record is durable
    /// before the caller applies the change in memory — the write-ahead
    /// contract. A batch of one through [`DbWal::append_batch`].
    pub fn append(
        &mut self,
        at: Timestamp,
        changes: &ChangeSet,
        faults: &Faults,
        metrics: &Metrics,
    ) -> std::io::Result<u64> {
        let frame = encode_record(at, changes);
        self.append_batch(&[frame.as_slice()], faults, metrics)
    }

    /// Append a whole staged batch of pre-encoded frames as **one**
    /// `write` followed by **one** `fsync` — the persist stage of the
    /// group-commit pipeline. The batch commits or fails atomically from
    /// the caller's point of view: an error means *no* frame in the batch
    /// may be acknowledged (whatever prefix physically reached the disk is
    /// governed by the torn-tail rule, exactly as for a crash mid-write).
    ///
    /// Fault-injection sites fire **once per batch**, not once per frame:
    /// one [`FaultPoint::WalAppend`] check guards the coalesced write
    /// (short writes cut the concatenated buffer, so a batch can tear
    /// mid-frame like any crashed `write(2)`), and one
    /// [`FaultPoint::WalFsync`] check guards the single fsync. The
    /// `faults_injected` metric therefore grows by one per failpoint hit
    /// regardless of how many records were riding the batch.
    pub fn append_batch(
        &mut self,
        frames: &[&[u8]],
        faults: &Faults,
        metrics: &Metrics,
    ) -> std::io::Result<u64> {
        if frames.is_empty() {
            return Ok(0);
        }
        let mut buf = Vec::with_capacity(frames.iter().map(|f| f.len()).sum());
        for frame in frames {
            buf.extend_from_slice(frame);
        }
        match faults.check(FaultPoint::WalAppend) {
            Some(FaultMode::Error) => {
                Metrics::bump(&metrics.faults_injected);
                return Err(Faults::injected_error(FaultPoint::WalAppend));
            }
            Some(FaultMode::ShortWrite(n)) => {
                Metrics::bump(&metrics.faults_injected);
                let n = n.min(buf.len());
                self.file.write_all(&buf[..n])?;
                let _ = self.file.sync_data();
                self.len += n as u64;
                return Err(Faults::injected_error(FaultPoint::WalAppend));
            }
            Some(FaultMode::Stall(ms)) => {
                // A slow disk, not a dead one: delay, then write normally.
                Metrics::bump(&metrics.faults_injected);
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            None => {}
        }
        self.file.write_all(&buf)?;
        self.len += buf.len() as u64;
        match faults.check(FaultPoint::WalFsync) {
            Some(FaultMode::Stall(ms)) => {
                Metrics::bump(&metrics.faults_injected);
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Some(_) => {
                Metrics::bump(&metrics.faults_injected);
                return Err(Faults::injected_error(FaultPoint::WalFsync));
            }
            None => {}
        }
        self.file.sync_data()?;
        self.since_checkpoint += frames.len() as u64;
        metrics
            .wal_appends
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
        metrics
            .wal_bytes
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        metrics.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
        if frames.len() > 1 {
            Metrics::bump(&metrics.group_commits);
        }
        Ok(buf.len() as u64)
    }

    /// Cut the log back to `len` bytes — undo of an append whose change
    /// set was rejected by in-memory application after being logged.
    pub fn rewind(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        self.len = len;
        Ok(())
    }

    /// Empty the log — the step *after* a successful checkpoint save.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.rewind(0)?;
        self.since_checkpoint = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::guide::history_example_2_3;
    use oem::parse_change_set;

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "serve-wal-{tag}-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn ts(s: &str) -> Timestamp {
        s.parse().unwrap()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("rt");
        let mut wal = DbWal::open(&path, 0).unwrap();
        let m = Metrics::new();
        let f = Faults::disabled();
        for e in history_example_2_3().entries() {
            wal.append(e.at, &e.changes, &f, &m).unwrap();
        }
        let r = replay(&path).unwrap();
        assert_eq!(r.entries.len(), 3);
        assert!(!r.torn);
        assert_eq!(r.good_len, wal.len());
        for (got, want) in r.entries.iter().zip(history_example_2_3().entries()) {
            assert_eq!(got.0, want.at);
            assert_eq!(format!("{}", got.1), format!("{}", want.changes));
        }
        assert_eq!(m.wal_appends.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn every_truncation_point_yields_the_longest_whole_prefix() {
        let path = tmp("cut");
        let mut wal = DbWal::open(&path, 0).unwrap();
        let (m, f) = (Metrics::new(), Faults::disabled());
        let mut boundaries = vec![0u64];
        for e in history_example_2_3().entries() {
            wal.append(e.at, &e.changes, &f, &m).unwrap();
            boundaries.push(wal.len());
        }
        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let r = replay(&path).unwrap();
            let want = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(r.entries.len(), want, "cut at byte {cut}");
            assert_eq!(r.good_len, boundaries[want], "cut at byte {cut}");
            assert_eq!(r.torn, (cut as u64) != boundaries[want], "cut at byte {cut}");
        }
    }

    #[test]
    fn corrupt_byte_ends_the_prefix() {
        let path = tmp("corrupt");
        let mut wal = DbWal::open(&path, 0).unwrap();
        let (m, f) = (Metrics::new(), Faults::disabled());
        for e in history_example_2_3().entries() {
            wal.append(e.at, &e.changes, &f, &m).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte in the second record.
        let first = replay(&path).unwrap().entries.len();
        assert_eq!(first, 3);
        let second_start = encode_record(
            history_example_2_3().entries()[0].at,
            &history_example_2_3().entries()[0].changes,
        )
        .len();
        bytes[second_start + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.entries.len(), 1);
        assert!(r.torn);
    }

    #[test]
    fn reopen_truncates_torn_tail_before_appending() {
        let path = tmp("reopen");
        let mut wal = DbWal::open(&path, 0).unwrap();
        let (m, f) = (Metrics::new(), Faults::disabled());
        let h = history_example_2_3();
        wal.append(h.entries()[0].at, &h.entries()[0].changes, &f, &m).unwrap();
        let good = wal.len();
        wal.append(h.entries()[1].at, &h.entries()[1].changes, &f, &m).unwrap();
        drop(wal);
        // Tear the second record, reopen keeping only the durable prefix,
        // then append a fresh record: replay must see records 1 and 3.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let r = replay(&path).unwrap();
        assert!(r.torn);
        assert_eq!(r.good_len, good);
        let mut wal = DbWal::open(&path, r.good_len).unwrap();
        wal.append(h.entries()[2].at, &h.entries()[2].changes, &f, &m).unwrap();
        let r = replay(&path).unwrap();
        assert!(!r.torn);
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[1].0, h.entries()[2].at);
    }

    #[test]
    fn rewind_undoes_the_last_record() {
        let path = tmp("rewind");
        let mut wal = DbWal::open(&path, 0).unwrap();
        let (m, f) = (Metrics::new(), Faults::disabled());
        wal.append(ts("1Jan97"), &parse_change_set("{updNode(n1, 20)}").unwrap(), &f, &m)
            .unwrap();
        let keep = wal.len();
        wal.append(ts("2Jan97"), &parse_change_set("{updNode(n1, 30)}").unwrap(), &f, &m)
            .unwrap();
        wal.rewind(keep).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.entries.len(), 1);
        assert!(!r.torn);
    }

    #[test]
    fn epoch_records_round_trip_and_epoch_zero_is_the_legacy_format() {
        let path = tmp("epoch");
        let mut wal = DbWal::open(&path, 0).unwrap();
        let (m, f) = (Metrics::new(), Faults::disabled());
        let ch = parse_change_set("{updNode(n1, 20)}").unwrap();
        // Epoch 0 must be byte-identical to the pre-epoch encoder output.
        assert_eq!(
            encode_record_epoch(ts("1Jan97"), &ch, 0),
            encode_record(ts("1Jan97"), &ch)
        );
        let frames = [
            encode_record_epoch(ts("1Jan97"), &ch, 0),
            encode_record_epoch(ts("2Jan97"), &ch, 3),
            encode_record_epoch(ts("3Jan97"), &ch, 3),
        ];
        let refs: Vec<&[u8]> = frames.iter().map(|fr| fr.as_slice()).collect();
        wal.append_batch(&refs, &f, &m).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.entries.len(), 3);
        assert_eq!(r.epochs, vec![0, 3, 3]);
        assert!(!r.torn);
        // The epoch suffix stays out of the parsed history text.
        assert_eq!(r.entries[1].0, ts("2Jan97"));
        assert_eq!(format!("{}", r.entries[1].1), format!("{ch}"));
        // good_len is still recomputable record by record.
        let total: usize = r
            .entries
            .iter()
            .zip(&r.epochs)
            .map(|((at, c), e)| encode_record_epoch(*at, c, *e).len())
            .sum();
        assert_eq!(r.good_len, total as u64);
    }

    #[test]
    fn injected_short_write_leaves_a_torn_tail() {
        let path = tmp("fault");
        let mut wal = DbWal::open(&path, 0).unwrap();
        let m = Metrics::new();
        let h = history_example_2_3();
        let f = Faults::fail_nth(FaultPoint::WalAppend, 1, FaultMode::ShortWrite(5), false);
        wal.append(h.entries()[0].at, &h.entries()[0].changes, &f, &m).unwrap();
        let err = wal
            .append(h.entries()[1].at, &h.entries()[1].changes, &f, &m)
            .unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(m.faults_injected.load(Ordering::Relaxed), 1);
        let r = replay(&path).unwrap();
        assert_eq!(r.entries.len(), 1);
        assert!(r.torn, "the 5 stray bytes must read as a torn tail");
    }
}
