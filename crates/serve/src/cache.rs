//! The query-result cache.
//!
//! Keys are `(scope, canonical query text, generation)` — scope is the
//! database (or `sub:<id>` DOEM) the query ran against, the canonical text
//! comes from the parser's printer (so formatting differences share an
//! entry), and the generation is the service's write counter. A write
//! bumps the generation, which makes every older entry unreachable.
//!
//! Before the bump, the writer may carry entries across the write with
//! [`ResultCache::advance_generation`] — the serve face of the semi-naive
//! maintenance in [`chorel::delta`] (DESIGN.md §11). An entry that can be
//! maintained keeps its raw engine rows alongside the wire strings (a
//! [`CacheEntry`] with `maintain` populated); the publish stage unions the
//! prior rows with the delta variants and re-canonicalizes, so a
//! maintained entry stays byte-identical to a fresh evaluation. Entries
//! that cannot be maintained (non-monotonic query × delta, or a translated
//! strategy that has no direct rows) are dropped by the subsequent
//! [`ResultCache::retain_generation`], exactly as before.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// A cache key. Equal keys ⇒ identical result rows.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Which database the query ran against (`sub:<id>` for subscription
    /// DOEMs).
    pub scope: String,
    /// Canonical query text (parse → print).
    pub canonical: String,
    /// Database generation the result was computed at.
    pub generation: u64,
}

/// A cached result: the canonical wire rows, plus — when the entry is
/// eligible for semi-naive maintenance — the parsed query and the raw
/// engine rows the strings were packaged from.
#[derive(Debug)]
pub struct CacheEntry {
    /// Canonical wire rows (the `ROWS` payload sent to clients).
    pub strings: Vec<String>,
    /// Maintenance state: `None` means the entry can only be dropped at
    /// the next write (translated-strategy results, subscription-scope
    /// entries).
    pub maintain: Option<(lorel::ast::Query, lorel::Rows)>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Arc<CacheEntry>>,
    order: VecDeque<CacheKey>,
}

/// A bounded FIFO result cache, shared across workers.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Look up a result.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CacheEntry>> {
        self.inner.lock().map.get(key).cloned()
    }

    /// Store a result, evicting the oldest entry when full.
    pub fn insert(&self, key: CacheKey, entry: Arc<CacheEntry>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.insert(key.clone(), entry).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                inner.map.remove(&oldest);
            }
        }
    }

    /// Carry every maintainable entry at generation `from` over to
    /// generation `to` through `f` — called at publish time, before the
    /// generation bump. `f` receives the entry's parsed query and prior
    /// raw rows and returns the maintained entry, or `None` when the
    /// query × delta is outside the monotonic fragment; `None` (and any
    /// entry with no maintenance state) drops the entry. Returns
    /// `(maintained, dropped)`.
    pub fn advance_generation<F>(&self, from: u64, to: u64, mut f: F) -> (u64, u64)
    where
        F: FnMut(&lorel::ast::Query, &lorel::Rows) -> Option<CacheEntry>,
    {
        let mut inner = self.inner.lock();
        let stale: Vec<CacheKey> = inner
            .map
            .keys()
            .filter(|k| k.generation == from)
            .cloned()
            .collect();
        let (mut kept, mut dropped) = (0, 0);
        for key in stale {
            // Collected from the map under this same lock hold, so the
            // remove cannot miss — but stay structurally panic-free.
            let Some(entry) = inner.map.remove(&key) else {
                continue;
            };
            let maintained = entry
                .maintain
                .as_ref()
                .and_then(|(query, prior)| f(query, prior));
            match maintained {
                Some(e) => {
                    let new_key = CacheKey {
                        generation: to,
                        ..key.clone()
                    };
                    for k in inner.order.iter_mut().filter(|k| **k == key) {
                        *k = new_key.clone();
                    }
                    inner.map.insert(new_key, Arc::new(e));
                    kept += 1;
                }
                None => {
                    inner.order.retain(|k| k != &key);
                    dropped += 1;
                }
            }
        }
        (kept, dropped)
    }

    /// Drop every entry computed before `generation` (they can never be
    /// hit again — the generation counter only moves forward).
    pub fn retain_generation(&self, generation: u64) {
        let mut inner = self.inner.lock();
        inner.map.retain(|k, _| k.generation >= generation);
        let map = std::mem::take(&mut inner.map);
        inner.order.retain(|k| map.contains_key(k));
        inner.map = map;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(scope: &str, q: &str, g: u64) -> CacheKey {
        CacheKey {
            scope: scope.into(),
            canonical: q.into(),
            generation: g,
        }
    }

    fn plain(rows: &[&str]) -> Arc<CacheEntry> {
        Arc::new(CacheEntry {
            strings: rows.iter().map(|s| s.to_string()).collect(),
            maintain: None,
        })
    }

    fn maintainable(rows: &[&str]) -> Arc<CacheEntry> {
        Arc::new(CacheEntry {
            strings: rows.iter().map(|s| s.to_string()).collect(),
            maintain: Some((
                lorel::parse_query("select guide.restaurant").unwrap(),
                lorel::Rows { rows: Vec::new() },
            )),
        })
    }

    #[test]
    fn hit_miss_and_generation_isolation() {
        let cache = ResultCache::new(8);
        let entry = plain(&["r"]);
        cache.insert(key("db", "q", 1), entry.clone());
        assert_eq!(
            cache.get(&key("db", "q", 1)).unwrap().strings,
            entry.strings
        );
        // Same text at a newer generation is a different key.
        assert!(cache.get(&key("db", "q", 2)).is_none());
        assert!(cache.get(&key("other", "q", 1)).is_none());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let cache = ResultCache::new(2);
        for i in 0..3u64 {
            cache.insert(key("db", &format!("q{i}"), 1), plain(&[]));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("db", "q0", 1)).is_none());
        assert!(cache.get(&key("db", "q2", 1)).is_some());
    }

    #[test]
    fn retain_generation_purges_stale() {
        let cache = ResultCache::new(8);
        cache.insert(key("db", "old", 1), plain(&[]));
        cache.insert(key("db", "new", 2), plain(&[]));
        cache.retain_generation(2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key("db", "new", 2)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0);
        cache.insert(key("db", "q", 1), plain(&[]));
        assert!(cache.is_empty());
    }

    #[test]
    fn advance_generation_maintains_or_drops() {
        let cache = ResultCache::new(8);
        cache.insert(key("db", "kept", 3), maintainable(&["old"]));
        cache.insert(key("db", "unsupported", 3), maintainable(&["x"]));
        cache.insert(key("db", "no-state", 3), plain(&["y"]));
        let (kept, dropped) = cache.advance_generation(3, 4, |_, _| {
            // Pretend only the first query survives the fragment gate.
            None
        });
        assert_eq!((kept, dropped), (0, 3));
        assert!(cache.is_empty());

        cache.insert(key("db", "kept", 3), maintainable(&["old"]));
        let (kept, dropped) = cache.advance_generation(3, 4, |_, _| {
            Some(CacheEntry {
                strings: vec!["old".into(), "new".into()],
                maintain: None,
            })
        });
        assert_eq!((kept, dropped), (1, 0));
        // The maintained entry answers at the *new* generation only.
        assert!(cache.get(&key("db", "kept", 3)).is_none());
        let e = cache.get(&key("db", "kept", 4)).expect("maintained");
        assert_eq!(e.strings, vec!["old".to_string(), "new".to_string()]);
        cache.retain_generation(4);
        assert_eq!(cache.len(), 1, "maintained entries survive the bump");
    }
}
