//! The query-result cache.
//!
//! Keys are `(scope, canonical query text, generation)` — scope is the
//! database (or `sub:<id>` DOEM) the query ran against, the canonical text
//! comes from the parser's printer (so formatting differences share an
//! entry), and the generation is the service's write counter. A write
//! bumps the generation, which makes every older entry unreachable; the
//! writer then calls [`ResultCache::retain_generation`] so dead entries
//! don't occupy capacity.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// A cache key. Equal keys ⇒ identical result rows.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Which database the query ran against (`sub:<id>` for subscription
    /// DOEMs).
    pub scope: String,
    /// Canonical query text (parse → print).
    pub canonical: String,
    /// Database generation the result was computed at.
    pub generation: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Arc<Vec<String>>>,
    order: VecDeque<CacheKey>,
}

/// A bounded FIFO result cache, shared across workers.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Look up a result.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<String>>> {
        self.inner.lock().map.get(key).cloned()
    }

    /// Store a result, evicting the oldest entry when full.
    pub fn insert(&self, key: CacheKey, rows: Arc<Vec<String>>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.insert(key.clone(), rows).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.capacity {
                let Some(oldest) = inner.order.pop_front() else {
                    break;
                };
                inner.map.remove(&oldest);
            }
        }
    }

    /// Drop every entry computed before `generation` (they can never be
    /// hit again — the generation counter only moves forward).
    pub fn retain_generation(&self, generation: u64) {
        let mut inner = self.inner.lock();
        inner.map.retain(|k, _| k.generation >= generation);
        let map = std::mem::take(&mut inner.map);
        inner.order.retain(|k| map.contains_key(k));
        inner.map = map;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(scope: &str, q: &str, g: u64) -> CacheKey {
        CacheKey {
            scope: scope.into(),
            canonical: q.into(),
            generation: g,
        }
    }

    #[test]
    fn hit_miss_and_generation_isolation() {
        let cache = ResultCache::new(8);
        let rows = Arc::new(vec!["r".to_string()]);
        cache.insert(key("db", "q", 1), rows.clone());
        assert_eq!(cache.get(&key("db", "q", 1)), Some(rows));
        // Same text at a newer generation is a different key.
        assert_eq!(cache.get(&key("db", "q", 2)), None);
        assert_eq!(cache.get(&key("other", "q", 1)), None);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let cache = ResultCache::new(2);
        for i in 0..3u64 {
            cache.insert(key("db", &format!("q{i}"), 1), Arc::new(vec![]));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("db", "q0", 1)).is_none());
        assert!(cache.get(&key("db", "q2", 1)).is_some());
    }

    #[test]
    fn retain_generation_purges_stale() {
        let cache = ResultCache::new(8);
        cache.insert(key("db", "old", 1), Arc::new(vec![]));
        cache.insert(key("db", "new", 2), Arc::new(vec![]));
        cache.retain_generation(2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key("db", "new", 2)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0);
        cache.insert(key("db", "q", 1), Arc::new(vec![]));
        assert!(cache.is_empty());
    }
}
