//! The service's metrics registry: lock-free counters plus log2-bucketed
//! latency histograms for the request pipeline stages (parse, queue wait,
//! execution, end-to-end). A snapshot is exposed over the wire as the
//! `STATS` command.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 latency buckets: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 is `< 1µs`), so the top bucket
/// covers everything from ~8.6 minutes up.
const BUCKETS: usize = 30;

/// A log2-bucketed latency histogram with exact count/sum/max.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// Record one latency sample.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Largest recorded sample in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Approximate p50 in microseconds: the upper bound of the bucket
    /// containing the median sample.
    pub fn p50_us(&self) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen * 2 >= n {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        self.max_us()
    }

    fn render(&self, name: &str, out: &mut Vec<String>) {
        out.push(format!(
            "latency {name} count={} mean_us={} p50_us={} max_us={}",
            self.count(),
            self.mean_us(),
            self.p50_us(),
            self.max_us()
        ));
    }
}

/// All counters and histograms the service maintains.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests submitted (whether or not admitted).
    pub requests: AtomicU64,
    /// Requests taking the shared read path.
    pub reads: AtomicU64,
    /// Requests taking the exclusive write path.
    pub writes: AtomicU64,
    /// Error responses produced (any kind).
    pub errors: AtomicU64,
    /// Requests rejected by admission control (queue full).
    pub busy_rejected: AtomicU64,
    /// Requests that timed out waiting for a worker's reply.
    pub timeouts: AtomicU64,
    /// Result-cache hits.
    pub cache_hits: AtomicU64,
    /// Result-cache misses.
    pub cache_misses: AtomicU64,
    /// Cache entries carried across a write by semi-naive maintenance
    /// (prior rows ∪ delta variants, re-canonicalized) instead of being
    /// invalidated (DESIGN.md §11).
    pub cache_maintained: AtomicU64,
    /// Cache entries dropped at a write because the query × delta left
    /// the monotonic fragment (or the entry carried no maintenance
    /// state) — the explicit full-re-evaluation fallback.
    pub cache_fallback: AtomicU64,
    /// QSS polls executed by TICKs and the background task.
    pub qss_polls: AtomicU64,
    /// TCP sessions accepted.
    pub sessions: AtomicU64,
    /// Requests that carried a `#<id>` pipelining tag.
    pub pipelined: AtomicU64,
    /// Writes that paid a whole-database copy-on-write clone because a
    /// query snapshot was still outstanding. With the MVCC version store
    /// (DESIGN.md §14) publishing shares structure instead of cloning, so
    /// this stays 0; the counter is kept so a regression is visible.
    pub cow_clones: AtomicU64,
    /// Versions installed into shard version rings by the publish stage.
    pub versions_installed: AtomicU64,
    /// Versions unlinked from shard version rings by retention GC.
    pub versions_gced: AtomicU64,
    /// WAL records appended (and fsynced) successfully.
    pub wal_appends: AtomicU64,
    /// Bytes of framed WAL records appended successfully.
    pub wal_bytes: AtomicU64,
    /// `fsync` calls the WAL performed. With group commit this grows once
    /// per persisted *batch*, so `wal_fsyncs / wal_appends < 1` is the
    /// batching win in one ratio.
    pub wal_fsyncs: AtomicU64,
    /// Persisted batches that carried more than one record — true group
    /// commits, where concurrent writers shared a single fsync.
    pub group_commits: AtomicU64,
    /// Snapshot checkpoints written (each followed by a log truncation).
    pub checkpoints: AtomicU64,
    /// Databases recovered from checkpoint + log replay at startup.
    pub recoveries: AtomicU64,
    /// Recoveries that found (and discarded) a torn or unusable log tail.
    pub torn_tails: AtomicU64,
    /// Faults fired by the injection layer (tests only; 0 in production).
    pub faults_injected: AtomicU64,
    /// Shards flipped to read-only by a persistent log I/O failure. The
    /// *current* count of read-only shards is the `read_only_shards`
    /// gauge appended to `STATS` by the service.
    pub read_only_flips: AtomicU64,
    /// `REPLICATE` batches this primary served to followers (snapshot or
    /// log-tail responses alike).
    pub repl_batches_shipped: AtomicU64,
    /// Log records shipped to followers inside those batches.
    pub repl_records_shipped: AtomicU64,
    /// Full checkpoint images shipped to followers (catch-up resyncs).
    pub repl_snapshots_shipped: AtomicU64,
    /// Records this follower applied through the canonical change-op
    /// order into its shards.
    pub repl_records_applied: AtomicU64,
    /// Checkpoint images this follower installed (initial attach or
    /// resync after falling behind the primary's retained tail).
    pub repl_snapshots_installed: AtomicU64,
    /// Times the follower's fetch loop reconnected to the primary after
    /// a connection-level failure (the backoff path).
    pub repl_reconnects: AtomicU64,
    /// Gauge: the reconnect backoff (milliseconds) the follower's sync
    /// loop slept before its most recent reconnect. Returns to the floor
    /// after any session that made replication progress.
    pub repl_backoff_ms: AtomicU64,
    /// `AT now` allocations that found the wall clock at or behind the
    /// shard's last LSN and clamped forward to `last_lsn + 1` instead
    /// (Definition 2.2: change timestamps are strictly increasing).
    pub clock_regressions: AtomicU64,
    /// `PROMOTE` verbs accepted: shards flipped writable under a new
    /// epoch fence.
    pub promotions: AtomicU64,
    /// Writes and replication batches rejected with the typed `FENCED`
    /// error because they carried a deposed lineage's stale epoch.
    pub fenced_rejects: AtomicU64,
    /// Time spent parsing request lines.
    pub parse: Histogram,
    /// Time jobs spent queued before a worker picked them up.
    pub queue: Histogram,
    /// Time workers spent evaluating queries/updates (cache misses only).
    pub exec: Histogram,
    /// End-to-end time from submission to reply.
    pub total: Histogram,
}

impl Metrics {
    /// Fresh, all-zero registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the `STATS` snapshot, one `counter …`/`latency …` line each.
    pub fn render(&self) -> Vec<String> {
        let c = |v: &AtomicU64| v.load(Ordering::Relaxed);
        let mut out = vec![
            format!("counter requests {}", c(&self.requests)),
            format!("counter reads {}", c(&self.reads)),
            format!("counter writes {}", c(&self.writes)),
            format!("counter errors {}", c(&self.errors)),
            format!("counter busy_rejected {}", c(&self.busy_rejected)),
            format!("counter timeouts {}", c(&self.timeouts)),
            format!("counter cache_hits {}", c(&self.cache_hits)),
            format!("counter cache_misses {}", c(&self.cache_misses)),
            format!("counter cache_maintained {}", c(&self.cache_maintained)),
            format!("counter cache_fallback {}", c(&self.cache_fallback)),
            format!("counter qss_polls {}", c(&self.qss_polls)),
            format!("counter sessions {}", c(&self.sessions)),
            format!("counter pipelined {}", c(&self.pipelined)),
            format!("counter cow_clones {}", c(&self.cow_clones)),
            format!("counter versions_installed {}", c(&self.versions_installed)),
            format!("counter versions_gced {}", c(&self.versions_gced)),
            format!("counter wal_appends {}", c(&self.wal_appends)),
            format!("counter wal_bytes {}", c(&self.wal_bytes)),
            format!("counter wal_fsyncs {}", c(&self.wal_fsyncs)),
            format!("counter group_commits {}", c(&self.group_commits)),
            format!("counter checkpoints {}", c(&self.checkpoints)),
            format!("counter recoveries {}", c(&self.recoveries)),
            format!("counter torn_tails {}", c(&self.torn_tails)),
            format!("counter faults_injected {}", c(&self.faults_injected)),
            format!("counter read_only_flips {}", c(&self.read_only_flips)),
            format!("counter repl_batches_shipped {}", c(&self.repl_batches_shipped)),
            format!("counter repl_records_shipped {}", c(&self.repl_records_shipped)),
            format!("counter repl_snapshots_shipped {}", c(&self.repl_snapshots_shipped)),
            format!("counter repl_records_applied {}", c(&self.repl_records_applied)),
            format!("counter repl_snapshots_installed {}", c(&self.repl_snapshots_installed)),
            format!("counter repl_reconnects {}", c(&self.repl_reconnects)),
            format!("gauge repl_backoff_ms {}", c(&self.repl_backoff_ms)),
            format!("counter clock_regressions {}", c(&self.clock_regressions)),
            format!("counter promotions {}", c(&self.promotions)),
            format!("counter fenced_rejects {}", c(&self.fenced_rejects)),
        ];
        self.parse.render("parse", &mut out);
        self.queue.render("queue", &mut out);
        self.exec.render("exec", &mut out);
        self.total.render("total", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_statistics() {
        let h = Histogram::default();
        for us in [1u64, 10, 100, 1000, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_us(), 10_000);
        assert_eq!(h.mean_us(), (1 + 10 + 100 + 1000 + 10_000) / 5);
        let p50 = h.p50_us();
        assert!((64..=256).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn huge_samples_clamp_to_top_bucket() {
        let h = Histogram::default();
        h.record(Duration::from_secs(1 << 40));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stats_snapshot_mentions_every_stage() {
        let m = Metrics::new();
        Metrics::bump(&m.requests);
        m.exec.record(Duration::from_micros(42));
        let lines = m.render();
        assert!(lines.iter().any(|l| l == "counter requests 1"));
        for stage in ["parse", "queue", "exec", "total"] {
            assert!(lines.iter().any(|l| l.contains(&format!("latency {stage} "))));
        }
    }
}
