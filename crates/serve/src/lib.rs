//! # serve — a concurrent multi-session query service over the DOEM stack
//!
//! The paper's Lore context ran as a long-lived server process; this crate
//! supplies that missing deployment layer for the reproduction. One
//! process owns a set of OEM/DOEM databases plus an embedded Query
//! Subscription Service, and serves many concurrent sessions over two
//! transports that share every byte of machinery:
//!
//! * an in-process [`Client`] handle (cheap to clone, used by tests and
//!   benchmarks), and
//! * a hand-rolled line-oriented TCP protocol ([`protocol`], specified in
//!   full in `crates/serve/PROTOCOL.md`) behind [`Service::listen`],
//!   spoken by the `doem-serve` binary.
//!
//! Architecture (full treatment: DESIGN.md, "Concurrency model"):
//! sessions parse requests at the edge and submit jobs to a **bounded**
//! queue (admission control — a full queue answers `BUSY` immediately). A
//! fixed worker pool executes jobs against a **sharded registry**: each
//! database is its own shard with its own `RwLock`, **generation
//! counter**, and result cache, so writers to different databases never
//! contend. Within a shard, queries are **snapshot isolated** — they
//! clone a cheap copy-on-write handle ([`doem::SharedDoem`]) under a
//! brief lock and evaluate entirely outside it, so a slow query never
//! delays a write, even to its own database. Query results are cached
//! keyed on *(database, canonical query text, shard generation)* — a
//! write structurally invalidates every stale entry without any
//! notification machinery. QSS state lives in a separate control shard,
//! so polls invalidate only subscription-query caches.
//!
//! TCP sessions may **pipeline**: requests tagged `#<id>` complete out of
//! order, with the tag echoed on the response frame for matching
//! (in-process, the same split is [`Client::begin_line`] +
//! [`PendingReply::wait`]); a service-wide completion pool waits out the
//! tagged requests. A [`metrics`] registry (counters + log2 latency
//! histograms for parse / queue-wait / exec / end-to-end) is readable
//! over the wire as `STATS`.
//!
//! With [`ServeConfig::wal_dir`] set the service is **durable**
//! (DESIGN.md §8): every committed mutation is appended to a per-database
//! change-operation [`wal`] (the paper's own notation, length+CRC framed,
//! fsynced before the in-memory apply), periodically folded into snapshot
//! checkpoints, and replayed through the `D(O, H)` construction on
//! startup — tolerating a torn final record. A deterministic [`faults`]
//! layer can fail any append/fsync/checkpoint at a chosen operation
//! index for crash testing, and a shard whose log stops accepting writes
//! degrades to read-only ([`ErrKind::ReadOnly`]) instead of taking the
//! service down.
//!
//! With [`ServeConfig::follow`] set the instance is a **replication
//! follower** ([`replication`], DESIGN.md §10): it pulls the primary's
//! WAL over the wire protocol (`REPLICATE` batches, checkpoint-image
//! catch-up), replays it through the same commit pipeline, serves
//! snapshot reads at its applied LSN (`LSN <db>`), and refuses client
//! writes with the typed `READONLY` error — until `PROMOTE <db>` flips a
//! shard writable under an **epoch fence** (failover: the deposed
//! primary answers `FENCED`, and its stale replication batches are
//! rejected by epoch comparison).
//!
//! ```
//! use serve::{Service, ServeConfig, Response};
//! use oem::guide::{guide_figure2, history_example_2_3};
//!
//! let svc = Service::start(ServeConfig::default()).unwrap();
//! svc.install(&guide_figure2(), &history_example_2_3()).unwrap();
//! let client = svc.client();
//! let resp = client.request_line("QUERY guide select guide.restaurant");
//! assert!(matches!(resp, Response::Rows(ref rows) if rows.len() == 3));
//! svc.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod faults;
pub mod metrics;
pub mod protocol;
pub mod replication;
mod service;
mod tcp;
pub mod wal;

pub use faults::{FaultMode, FaultPoint, Faults};

/// `true` when `SERVE_TRACE` is set in the environment: replication and
/// recovery paths then print one `TRACE …` line per batch served/applied,
/// per recovery, and per snapshot install to stderr. Checked once per
/// process — chaos-harness triage flips it for a whole run, not per call.
pub(crate) fn trace_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("SERVE_TRACE").is_some())
}
pub use protocol::{parse_request, parse_tagged_request, ErrKind, ProtoError, Request, Response};
pub use replication::{snapshot_bytes, snapshot_from_bytes, ReplBatch};
pub use service::{AutoTick, Client, DynSource, PendingReply, ServeConfig, Service, WallClock};
pub use tcp::{RetryPolicy, TcpHandle, WireClient};
