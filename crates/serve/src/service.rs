//! The service core: a sharded database registry, snapshot-isolated query
//! execution, a worker pool fed by a bounded [`crossbeam`] channel, and
//! the request executor.
//!
//! Concurrency model (see DESIGN.md §7 for the full treatment): sessions
//! parse requests at the edge and submit jobs to a bounded queue
//! (`try_send` — a full queue is an immediate `BUSY`, the admission-control
//! contract). Workers pull jobs and execute them against a **shard map**:
//! a lightweight `RwLock<HashMap>` from database name to an [`Arc<Shard>`],
//! where each shard owns its *own* lock, generation counter, and result
//! cache. Writers to different databases therefore never contend — the map
//! lock is held only to look up or insert a shard, never during execution.
//!
//! Inside a shard, queries are **snapshot isolated**: a reader takes the
//! shard lock just long enough to clone a cheap [`SharedDoem`] handle
//! (an `Arc` of the annotated graph) plus the generation, then evaluates
//! Chorel entirely outside the lock. A slow query never stalls updates;
//! an update that lands while snapshots are outstanding pays one
//! copy-on-write clone (counted in `STATS` as `cow_clones`) and bumps the
//! shard generation, which structurally invalidates that shard's cache.
//!
//! QSS state (subscriptions, the registry of named queries, the simulated
//! clock) lives in a separate *control* shard with its own lock and
//! generation, so QSS ticks invalidate only subscription-query caches,
//! never per-database ones. The submitting session waits on a single-slot
//! reply channel with a deadline — a worker stuck on a slow query turns
//! into a `TIMEOUT` response instead of a hung session; pipelined sessions
//! get the same guarantee through [`PendingReply::wait`].

use crate::cache::{CacheKey, ResultCache};
use crate::metrics::Metrics;
use crate::protocol::{ErrKind, Request, Response};
use chorel::{canonical_row_strings, run_chorel_parsed, Strategy};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use doem::{apply_set, current_snapshot, doem_from_history, DoemDatabase, SharedDoem};
use lorel::{run_update, QueryRegistry};
use oem::{History, OemDatabase, SharedOem, Timestamp};
use parking_lot::RwLock;
use qss::{QssServer, ScriptedSource, Source, Subscription};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// The source type the embedded QSS polls: any [`Source`], boxed. `Sync`
/// is required because the QSS lives under the control shard's `RwLock`.
pub type DynSource = Box<dyn Source + Sync>;

/// Background QSS driving: every `interval` of wall-clock time, advance
/// the simulated clock by `step_minutes` and run the polls that came due.
#[derive(Clone, Copy, Debug)]
pub struct AutoTick {
    /// Wall-clock period between ticks.
    pub interval: Duration,
    /// Simulated minutes per tick.
    pub step_minutes: i64,
}

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing requests (min 1).
    pub workers: usize,
    /// Bounded request-queue depth; a full queue rejects with `BUSY`.
    pub queue_depth: usize,
    /// How long a session waits for its reply before answering `TIMEOUT`.
    pub request_timeout: Duration,
    /// Result-cache capacity in entries, per database shard (0 disables
    /// caching).
    pub cache_capacity: usize,
    /// Chorel evaluation strategy for queries.
    pub strategy: Strategy,
    /// Initial simulated time (QSS subscriptions start here).
    pub epoch: Timestamp,
    /// Drive the embedded QSS from a background thread.
    pub autotick: Option<AutoTick>,
    /// Directory for SAVE/LOAD persistence (no store when `None`).
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            request_timeout: Duration::from_secs(5),
            cache_capacity: 256,
            strategy: Strategy::Direct,
            epoch: Timestamp::from_ymd(1996, 12, 30),
            autotick: None,
            store_dir: None,
        }
    }
}

/// The graphs one database shard guards: the DOEM database behind a
/// copy-on-write handle (queries snapshot it), the plain-OEM replica kept
/// in lockstep (change validity is judged against it, and Lorel update
/// statements compile against it), and the shard's write counter.
pub(crate) struct ShardState {
    pub(crate) doem: SharedDoem,
    pub(crate) replica: SharedOem,
    /// Bumped by every successful write to this shard; cache keys carry
    /// it, so a bump structurally invalidates the shard's cache.
    pub(crate) generation: u64,
}

/// One database shard: its own lock, generation counter, and result
/// cache. Shards are handed around as `Arc<Shard>` so the registry lock
/// is never held during execution.
pub(crate) struct Shard {
    pub(crate) state: RwLock<ShardState>,
    pub(crate) cache: ResultCache,
}

impl Shard {
    fn new(doem: DoemDatabase, replica: OemDatabase, cache_capacity: usize) -> Shard {
        Shard {
            state: RwLock::new(ShardState {
                doem: SharedDoem::new(doem),
                replica: SharedOem::new(replica),
                generation: 1,
            }),
            cache: ResultCache::new(cache_capacity),
        }
    }

    /// Bump the shard generation and drop newly unreachable cache entries.
    fn bump(state: &mut ShardState, cache: &ResultCache) -> u64 {
        state.generation += 1;
        cache.retain_generation(state.generation);
        state.generation
    }
}

/// Everything behind the control shard's lock: QSS subscriptions, the
/// registry of named queries, and the simulated clock.
pub(crate) struct ControlState {
    /// Simulated time (QSS polls run up to here).
    pub(crate) clock: Timestamp,
    pub(crate) registry: QueryRegistry,
    pub(crate) qss: QssServer<DynSource>,
    /// Bumped whenever a QSS poll, subscribe, or unsubscribe changes what
    /// subscription queries can observe; keys the `sub:` cache.
    pub(crate) generation: u64,
}

/// State shared by the service handle, every worker, and every client.
pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    /// Database name → shard. Held only to look up / insert / list
    /// shards; execution happens against a cloned `Arc<Shard>`.
    pub(crate) shards: RwLock<HashMap<String, Arc<Shard>>>,
    /// The QSS/registry/clock shard.
    pub(crate) control: RwLock<ControlState>,
    /// Result cache for subscription (`sub:<id>`) queries, keyed by the
    /// control generation.
    pub(crate) sub_cache: ResultCache,
    /// SAVE/LOAD storage; internally synchronized, so no lock here.
    pub(crate) store: Option<lore::LoreStore>,
    /// Monotonic write counter across *all* shards — the `GEN` verb.
    pub(crate) global_gen: AtomicU64,
    pub(crate) metrics: Metrics,
}

impl Shared {
    /// Look up a shard, cloning its `Arc` so the map lock drops
    /// immediately.
    fn shard(&self, db: &str) -> Option<Arc<Shard>> {
        self.shards.read().get(db).cloned()
    }

    fn bump_global(&self) -> u64 {
        self.global_gen.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// A queued unit of work.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) reply: Sender<Response>,
    pub(crate) enqueued: Instant,
}

/// The service handle: owns the worker pool and (optionally) the QSS
/// ticker. Create sessions with [`Service::client`], stop everything with
/// [`Service::shutdown`].
pub struct Service {
    pub(crate) shared: Arc<Shared>,
    job_tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    pub(crate) stop: Arc<AtomicBool>,
}

impl Service {
    /// Start a service over the paper's guide source (Example 6.1's
    /// scripted restaurant guide feeds the embedded QSS).
    pub fn start(cfg: ServeConfig) -> std::io::Result<Service> {
        Service::start_with_source(cfg, Box::new(ScriptedSource::paper_guide()))
    }

    /// Start a service polling the given source.
    pub fn start_with_source(cfg: ServeConfig, source: DynSource) -> std::io::Result<Service> {
        let store = match &cfg.store_dir {
            Some(dir) => Some(
                lore::LoreStore::open(dir)
                    .map_err(|e| std::io::Error::other(e.to_string()))?,
            ),
            None => None,
        };
        let control = ControlState {
            clock: cfg.epoch,
            registry: QueryRegistry::new(),
            qss: QssServer::new(source).with_strategy(cfg.strategy),
            generation: 1,
        };
        let (job_tx, job_rx) = channel::bounded::<Job>(cfg.queue_depth.max(1));
        let shared = Arc::new(Shared {
            shards: RwLock::new(HashMap::new()),
            control: RwLock::new(control),
            sub_cache: ResultCache::new(cfg.cache_capacity),
            store,
            global_gen: AtomicU64::new(1),
            metrics: Metrics::new(),
            cfg,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = job_rx.clone();
                let stop = Arc::clone(&stop);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx, &stop))
                    .expect("spawn worker")
            })
            .collect();
        let ticker = shared.cfg.autotick.map(|tick| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("serve-qss-ticker".into())
                .spawn(move || ticker_loop(&shared, tick, &stop))
                .expect("spawn ticker")
        });
        Ok(Service {
            shared,
            job_tx,
            workers,
            ticker,
            stop,
        })
    }

    /// Install a database built from an initial snapshot and a history
    /// (the name comes from the snapshot). Replaces any same-named shard —
    /// in-flight queries against the old shard finish against their
    /// snapshots; its cache dies with it.
    pub fn install(&self, initial: &OemDatabase, history: &History) -> doem::Result<()> {
        let doem = doem_from_history(initial, history)?;
        let replica = current_snapshot(&doem);
        let name = doem.name().to_string();
        let shard = Arc::new(Shard::new(doem, replica, self.shared.cfg.cache_capacity));
        self.shared.shards.write().insert(name, shard);
        self.shared.bump_global();
        Ok(())
    }

    /// A new in-process session sharing this service's worker pool.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            tx: self.job_tx.clone(),
        }
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Stop workers and the ticker and wait for them. In-flight requests
    /// finish; queued-but-unclaimed jobs are dropped (their sessions see
    /// a disconnect or timeout).
    pub fn shutdown(self) {
        let Service {
            shared: _,
            job_tx,
            workers,
            ticker,
            stop,
        } = self;
        stop.store(true, Ordering::SeqCst);
        drop(job_tx);
        for w in workers {
            let _ = w.join();
        }
        if let Some(t) = ticker {
            let _ = t.join();
        }
    }
}

/// An in-process session handle. Cloning is cheap; every clone shares the
/// service's queue, caches, and metrics.
#[derive(Clone)]
pub struct Client {
    pub(crate) shared: Arc<Shared>,
    tx: Sender<Job>,
}

/// An in-flight request: the submission half has already happened (with
/// admission control applied); [`PendingReply::wait`] blocks for the
/// response, enforcing the configured request timeout. This is what lets
/// a pipelined session keep reading new requests while earlier ones
/// execute.
pub struct PendingReply {
    shared: Arc<Shared>,
    started: Instant,
    state: PendingState,
}

enum PendingState {
    /// Resolved at submission time (parse error, BUSY, shutdown).
    Ready(Response),
    /// A worker will send the response here.
    Waiting(Receiver<Response>),
}

impl PendingReply {
    fn ready(shared: Arc<Shared>, started: Instant, resp: Response) -> PendingReply {
        PendingReply {
            shared,
            started,
            state: PendingState::Ready(resp),
        }
    }

    /// Block until the response arrives (or the request timeout elapses),
    /// recording end-to-end latency and error metrics exactly once.
    pub fn wait(self) -> Response {
        let m = &self.shared.metrics;
        let resp = match self.state {
            PendingState::Ready(resp) => resp,
            PendingState::Waiting(rx) => {
                match rx.recv_timeout(self.shared.cfg.request_timeout) {
                    Ok(resp) => resp,
                    Err(_) => {
                        Metrics::bump(&m.timeouts);
                        Response::err(
                            ErrKind::Timeout,
                            format!("no reply within {:?}", self.shared.cfg.request_timeout),
                        )
                    }
                }
            }
        };
        m.total.record(self.started.elapsed());
        if resp.is_error() {
            Metrics::bump(&m.errors);
        }
        resp
    }
}

impl Client {
    /// Parse one protocol line and execute it, honoring admission control
    /// and the request timeout. Never blocks longer than the configured
    /// timeout (plus queue admission, which is immediate).
    pub fn request_line(&self, line: &str) -> Response {
        let (_tag, pending) = self.begin_line(line);
        pending.wait()
    }

    /// Submit an already-parsed request and block for the response.
    pub fn submit(&self, req: Request) -> Response {
        self.begin(req).wait()
    }

    /// Parse one protocol line — including an optional `#<id>` pipelining
    /// tag — and submit it without blocking for the response. Returns the
    /// tag (to match the eventual response to its request) and the
    /// in-flight handle.
    pub fn begin_line(&self, line: &str) -> (Option<String>, PendingReply) {
        let m = &self.shared.metrics;
        let started = Instant::now();
        let (tag, parsed) = crate::protocol::parse_tagged_request(line);
        m.parse.record(started.elapsed());
        if tag.is_some() {
            Metrics::bump(&m.pipelined);
        }
        match parsed {
            Ok(req) => (tag, self.begin(req)),
            Err(e) => {
                Metrics::bump(&m.requests);
                (
                    tag,
                    PendingReply::ready(Arc::clone(&self.shared), started, e.into()),
                )
            }
        }
    }

    /// Submit an already-parsed request without blocking for the
    /// response. Admission control applies immediately: a full queue
    /// resolves the reply to `BUSY` before this returns.
    pub fn begin(&self, req: Request) -> PendingReply {
        let m = &self.shared.metrics;
        Metrics::bump(&m.requests);
        Metrics::bump(if req.is_read() { &m.reads } else { &m.writes });
        let started = Instant::now();
        let (reply_tx, reply_rx) = channel::bounded(1);
        let job = Job {
            req,
            reply: reply_tx,
            enqueued: Instant::now(),
        };
        let state = match self.tx.try_send(job) {
            Err(channel::TrySendError::Full(_)) => {
                Metrics::bump(&m.busy_rejected);
                PendingState::Ready(Response::err(ErrKind::Busy, "request queue full, try again"))
            }
            Err(channel::TrySendError::Disconnected(_)) => {
                PendingState::Ready(Response::err(ErrKind::Internal, "service is shut down"))
            }
            Ok(()) => PendingState::Waiting(reply_rx),
        };
        PendingReply {
            shared: Arc::clone(&self.shared),
            started,
            state,
        }
    }

    /// Convenience: run a query and return its canonical row strings.
    pub fn query(&self, db: &str, text: &str) -> Result<Vec<String>, (ErrKind, String)> {
        match self.request_line(&format!("QUERY {db} {text}")) {
            Response::Rows(rows) => Ok(rows),
            Response::Ok(msg) => Ok(vec![msg]),
            Response::Error { kind, message } => Err((kind, message)),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Receiver<Job>, stop: &AtomicBool) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => {
                shared.metrics.queue.record(job.enqueued.elapsed());
                let resp = execute(shared, job.req);
                // The session may have timed out and gone; that's fine.
                let _ = job.reply.send(resp);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn ticker_loop(shared: &Shared, tick: AutoTick, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        thread::sleep(tick.interval);
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut ctl = shared.control.write();
        let horizon = ctl.clock.plus_minutes(tick.step_minutes);
        if let Ok(polls) = ctl.qss.run_until(horizon) {
            ctl.clock = horizon;
            if polls > 0 {
                ctl.generation += 1;
                shared.sub_cache.retain_generation(ctl.generation);
                shared.bump_global();
                shared
                    .metrics
                    .qss_polls
                    .fetch_add(polls as u64, Ordering::Relaxed);
            }
        }
    }
}

fn not_found(what: &str, name: &str) -> Response {
    Response::err(ErrKind::NotFound, format!("no {what} named {name:?}"))
}

/// Run a parsed query against a DOEM snapshot through a shard's cache.
/// The caller has already dropped every lock: `doem` is a snapshot
/// handle, so evaluation happens entirely outside the shard.
fn cached_query(
    shared: &Shared,
    cache: &ResultCache,
    scope: String,
    key: String,
    generation: u64,
    doem: &DoemDatabase,
    query: &lorel::ast::Query,
) -> Response {
    let ck = CacheKey {
        scope,
        canonical: key,
        generation,
    };
    if let Some(rows) = cache.get(&ck) {
        Metrics::bump(&shared.metrics.cache_hits);
        return Response::Rows(rows.as_ref().clone());
    }
    Metrics::bump(&shared.metrics.cache_misses);
    let t = Instant::now();
    let outcome = run_chorel_parsed(doem, query, shared.cfg.strategy);
    shared.metrics.exec.record(t.elapsed());
    match outcome {
        Ok(result) => {
            let rows = canonical_row_strings(doem, &result);
            cache.insert(ck, Arc::new(rows.clone()));
            Response::Rows(rows)
        }
        Err(e) => Response::err(ErrKind::Conflict, format!("query failed: {e}")),
    }
}

/// Execute one request. Queries resolve their shard, snapshot it, and
/// evaluate lock-free; writes take only their own shard's write lock;
/// QSS/registry requests take the control lock.
pub(crate) fn execute(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Ping => Response::Ok("pong".into()),
        Request::Quit => Response::Ok("bye".into()),
        Request::Stats => Response::Rows(shared.metrics.render()),
        Request::Generation { db: None } => {
            Response::Ok(shared.global_gen.load(Ordering::Relaxed).to_string())
        }
        Request::Generation { db: Some(db) } => {
            let Some(shard) = shared.shard(&db) else {
                return not_found("database", &db);
            };
            let g = shard.state.read().generation;
            Response::Ok(g.to_string())
        }
        Request::ListDbs => {
            let shards = shared.shards.read();
            let mut names: Vec<String> = shards.keys().cloned().collect();
            names.sort();
            Response::Rows(names)
        }
        Request::Create { db } => {
            let mut shards = shared.shards.write();
            if shards.contains_key(&db) {
                return Response::err(ErrKind::Conflict, format!("database {db:?} exists"));
            }
            let initial = OemDatabase::new(db.clone());
            let doem = DoemDatabase::from_snapshot(&initial);
            shards.insert(
                db.clone(),
                Arc::new(Shard::new(doem, initial, shared.cfg.cache_capacity)),
            );
            drop(shards);
            let g = shared.bump_global();
            Response::Ok(format!("created {db}; generation {g}"))
        }
        Request::Save { db } => {
            let Some(store) = &shared.store else {
                return Response::err(ErrKind::Io, "no store configured");
            };
            let Some(shard) = shared.shard(&db) else {
                return not_found("database", &db);
            };
            let st = shard.state.read();
            match store.save_doem(&db, &st.doem) {
                Ok(()) => Response::Ok(format!("saved {db}")),
                Err(e) => Response::err(ErrKind::Io, format!("save failed: {e}")),
            }
        }
        Request::Load { db } => {
            let Some(store) = &shared.store else {
                return Response::err(ErrKind::Io, "no store configured");
            };
            match store.load_doem(&db) {
                Ok(doem) => {
                    let replica = current_snapshot(&doem);
                    let shard = Arc::new(Shard::new(doem, replica, shared.cfg.cache_capacity));
                    shared.shards.write().insert(db.clone(), shard);
                    let g = shared.bump_global();
                    Response::Ok(format!("loaded {db}; generation {g}"))
                }
                Err(e) => Response::err(ErrKind::NotFound, format!("load failed: {e}")),
            }
        }
        Request::Query { db, query, key } => {
            let Some(shard) = shared.shard(&db) else {
                return not_found("database", &db);
            };
            // Snapshot: hold the shard lock only for an Arc clone.
            let (doem, generation) = {
                let st = shard.state.read();
                (st.doem.snapshot(), st.generation)
            };
            cached_query(shared, &shard.cache, db, key, generation, &doem, &query)
        }
        Request::SubQuery { id, query, key } => {
            let ck = {
                let ctl = shared.control.read();
                if ctl.qss.doem_of(&id).is_none() {
                    return Response::err(
                        ErrKind::NotFound,
                        format!("no DOEM for subscription {id:?} (not yet polled?)"),
                    );
                }
                CacheKey {
                    scope: format!("sub:{id}"),
                    canonical: key,
                    generation: ctl.generation,
                }
            };
            if let Some(rows) = shared.sub_cache.get(&ck) {
                Metrics::bump(&shared.metrics.cache_hits);
                return Response::Rows(rows.as_ref().clone());
            }
            // Miss: materialize a snapshot (subscription DOEMs are small —
            // they hold poll results, not whole databases) and evaluate
            // outside the control lock.
            let doem = {
                let ctl = shared.control.read();
                match ctl.qss.doem_of(&id) {
                    Some(d) => d.clone(),
                    // Unsubscribed between the two lock acquisitions.
                    None => return not_found("subscription", &id),
                }
            };
            Metrics::bump(&shared.metrics.cache_misses);
            let t = Instant::now();
            let outcome = run_chorel_parsed(&doem, &query, shared.cfg.strategy);
            shared.metrics.exec.record(t.elapsed());
            match outcome {
                Ok(result) => {
                    let rows = canonical_row_strings(&doem, &result);
                    shared.sub_cache.insert(ck, Arc::new(rows.clone()));
                    Response::Rows(rows)
                }
                Err(e) => Response::err(ErrKind::Conflict, format!("query failed: {e}")),
            }
        }
        Request::Update { db, at, changes } => {
            let Some(shard) = shared.shard(&db) else {
                return not_found("database", &db);
            };
            let mut st = shard.state.write();
            let t = Instant::now();
            if st.doem.is_shared() || st.replica.is_shared() {
                Metrics::bump(&shared.metrics.cow_clones);
            }
            let ShardState { doem, replica, .. } = &mut *st;
            let outcome = apply_set(doem.make_mut(), replica.make_mut(), &changes, at);
            shared.metrics.exec.record(t.elapsed());
            match outcome {
                Ok(()) => {
                    let g = Shard::bump(&mut st, &shard.cache);
                    shared.bump_global();
                    Response::Ok(format!("applied {} ops at {at}; generation {g}", changes.len()))
                }
                Err(e) => Response::err(ErrKind::Conflict, format!("change set rejected: {e}")),
            }
        }
        Request::Mutate { db, at, stmt } => {
            let Some(shard) = shared.shard(&db) else {
                return not_found("database", &db);
            };
            let mut st = shard.state.write();
            let t = Instant::now();
            let compiled = match run_update(&st.replica, &stmt) {
                Ok(c) => c,
                Err(e) => {
                    shared.metrics.exec.record(t.elapsed());
                    return Response::err(ErrKind::Conflict, format!("update rejected: {e}"));
                }
            };
            if st.doem.is_shared() || st.replica.is_shared() {
                Metrics::bump(&shared.metrics.cow_clones);
            }
            let ShardState { doem, replica, .. } = &mut *st;
            let outcome = apply_set(doem.make_mut(), replica.make_mut(), &compiled.changes, at);
            shared.metrics.exec.record(t.elapsed());
            match outcome {
                Ok(()) => {
                    let g = Shard::bump(&mut st, &shard.cache);
                    shared.bump_global();
                    Response::Ok(format!(
                        "applied {} ops ({} created) at {at}; generation {g}",
                        compiled.changes.len(),
                        compiled.created.len()
                    ))
                }
                Err(e) => Response::err(ErrKind::Conflict, format!("change set rejected: {e}")),
            }
        }
        Request::Define { program } => {
            let mut ctl = shared.control.write();
            match ctl.registry.load(&program) {
                Ok(_) => Response::Ok(format!(
                    "defined; registry has {} queries",
                    ctl.registry.names().len()
                )),
                Err(e) => Response::err(ErrKind::Syntax, e.to_string()),
            }
        }
        Request::Subscribe {
            id,
            polling,
            filter,
            freq,
        } => {
            let mut ctl = shared.control.write();
            if ctl.qss.subscription_ids().iter().any(|s| s == &id) {
                return Response::err(ErrKind::Conflict, format!("subscription {id:?} exists"));
            }
            let sub =
                match Subscription::from_registry(id.clone(), freq, &ctl.registry, &polling, &filter)
                {
                    Ok(sub) => sub,
                    Err(e) => return Response::err(ErrKind::NotFound, e.to_string()),
                };
            let clock = ctl.clock;
            ctl.qss.subscribe(sub, clock);
            ctl.generation += 1;
            shared.sub_cache.retain_generation(ctl.generation);
            let g = shared.bump_global();
            Response::Ok(format!("subscribed {id} at {clock}; generation {g}"))
        }
        Request::Unsubscribe { id } => {
            let mut ctl = shared.control.write();
            if !ctl.qss.subscription_ids().iter().any(|s| s == &id) {
                return not_found("subscription", &id);
            }
            ctl.qss.unsubscribe(&id);
            ctl.generation += 1;
            shared.sub_cache.retain_generation(ctl.generation);
            let g = shared.bump_global();
            Response::Ok(format!("unsubscribed {id}; generation {g}"))
        }
        Request::Tick { until } => {
            let mut ctl = shared.control.write();
            if until <= ctl.clock {
                return Response::Ok(format!("clock already at {}", ctl.clock));
            }
            let t = Instant::now();
            let outcome = ctl.qss.run_until(until);
            shared.metrics.exec.record(t.elapsed());
            match outcome {
                Ok(polls) => {
                    ctl.clock = until;
                    shared
                        .metrics
                        .qss_polls
                        .fetch_add(polls as u64, Ordering::Relaxed);
                    let g = if polls > 0 {
                        ctl.generation += 1;
                        shared.sub_cache.retain_generation(ctl.generation);
                        shared.bump_global()
                    } else {
                        shared.global_gen.load(Ordering::Relaxed)
                    };
                    Response::Ok(format!("clock {until}; {polls} polls; generation {g}"))
                }
                Err(e) => Response::err(ErrKind::Conflict, format!("qss poll failed: {e}")),
            }
        }
        Request::Notes { id } => {
            let ctl = shared.control.read();
            if id != "*" && !ctl.qss.subscription_ids().iter().any(|s| s == &id) {
                return not_found("subscription", &id);
            }
            let rows = ctl
                .qss
                .notifications()
                .iter()
                .filter(|n| id == "*" || n.subscription == id)
                .map(|n| format!("{} at {}: {} rows", n.subscription, n.at, n.rows()))
                .collect();
            Response::Rows(rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::guide::{guide_figure2, history_example_2_3};

    fn guide_service(cfg: ServeConfig) -> Service {
        let svc = Service::start(cfg).unwrap();
        svc.install(&guide_figure2(), &history_example_2_3()).unwrap();
        svc
    }

    #[test]
    fn ping_stats_gen_dbs() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        assert_eq!(c.request_line("PING"), Response::Ok("pong".into()));
        assert_eq!(c.request_line("GEN"), Response::Ok("2".into()));
        // Per-shard generation: fresh shard, no writes yet.
        assert_eq!(c.request_line("GEN guide"), Response::Ok("1".into()));
        assert!(c.request_line("GEN nosuch").is_error());
        assert_eq!(
            c.request_line("DBS"),
            Response::Rows(vec!["guide".into()])
        );
        let Response::Rows(stats) = c.request_line("STATS") else {
            panic!("STATS must return rows")
        };
        assert!(stats.iter().any(|l| l.starts_with("counter requests ")));
        svc.shutdown();
    }

    #[test]
    fn queries_hit_the_cache_until_a_write() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        let q = "QUERY guide select guide.restaurant";
        let first = c.request_line(q);
        let second = c.request_line(q);
        assert_eq!(first, second);
        assert!(matches!(first, Response::Rows(ref r) if !r.is_empty()));
        let hits = svc.metrics().cache_hits.load(Ordering::Relaxed);
        assert_eq!(hits, 1, "second identical query must hit the cache");

        // A write invalidates: same text, fresh evaluation, new rows.
        let resp =
            c.request_line("UPDATE guide AT 1Mar97 9:00am ; {creNode(n95, \"Via Mare\"), addArc(n4, restaurant, n95)}");
        assert!(!resp.is_error(), "{resp:?}");
        let third = c.request_line(q);
        let Response::Rows(rows3) = &third else {
            panic!("query after update failed: {third:?}")
        };
        let Response::Rows(rows1) = &first else { unreachable!() };
        assert_eq!(rows3.len(), rows1.len() + 1);
        // The write bumped both the shard and the global counters.
        assert_eq!(c.request_line("GEN guide"), Response::Ok("2".into()));
        assert_eq!(c.request_line("GEN"), Response::Ok("3".into()));
        svc.shutdown();
    }

    #[test]
    fn whitespace_variants_share_one_cache_entry() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        let a = c.request_line("QUERY guide select guide.restaurant");
        let b = c.request_line("QUERY guide select   guide . restaurant");
        assert_eq!(a, b);
        assert_eq!(svc.metrics().cache_hits.load(Ordering::Relaxed), 1);
        svc.shutdown();
    }

    #[test]
    fn writes_to_distinct_databases_have_distinct_generations() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        assert!(!c.request_line("CREATE a").is_error());
        assert!(!c.request_line("CREATE b").is_error());
        for i in 0..3 {
            let resp = c.request_line(&format!(
                "UPDATE a AT 1Mar97 9:0{i}am ; {{creNode(n{}, {i}), addArc(n1, x, n{})}}",
                10 + i,
                10 + i
            ));
            assert!(!resp.is_error(), "{resp:?}");
        }
        // Shard generations move independently: a took 3 writes, b none.
        assert_eq!(c.request_line("GEN a"), Response::Ok("4".into()));
        assert_eq!(c.request_line("GEN b"), Response::Ok("1".into()));
        assert_eq!(c.request_line("GEN guide"), Response::Ok("1".into()));
        svc.shutdown();
    }

    #[test]
    fn chorel_annotations_and_errors() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        let resp = c.request_line("QUERY guide select guide.<add at T>restaurant where T > 1Jan97");
        assert!(matches!(resp, Response::Rows(_)), "{resp:?}");
        let resp = c.request_line("QUERY nosuch select x.y");
        assert!(matches!(resp, Response::Error { kind: ErrKind::NotFound, .. }), "{resp:?}");
        let resp = c.request_line("QUERY guide selec x.y");
        assert!(matches!(resp, Response::Error { kind: ErrKind::Syntax, .. }), "{resp:?}");
        svc.shutdown();
    }

    #[test]
    fn mutate_compiles_against_live_snapshot() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        let resp = c.request_line(
            "MUTATE guide AT 5Mar97 1:00pm ; update X.price := 99 from guide.restaurant X",
        );
        // Whichever update-grammar shape the seed supports, the request
        // must not be silently dropped: either applied or a typed error.
        match resp {
            Response::Ok(msg) => assert!(msg.contains("generation")),
            Response::Error { kind, .. } => {
                assert!(matches!(kind, ErrKind::Conflict | ErrKind::Syntax))
            }
            other => panic!("unexpected: {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn qss_subscription_lifecycle_example_6_1() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        let resp = c.request_line(
            "DEFINE polling query Restaurants as select guide.restaurant \
             define filter query NewRestaurants as \
             select Restaurants.restaurant<cre at T> where T > t[-1]",
        );
        assert_eq!(resp, Response::Ok("defined; registry has 2 queries".into()));
        let resp = c.request_line(
            "SUBSCRIBE S1 POLL Restaurants FILTER NewRestaurants FREQ every night at 11:30pm",
        );
        assert!(!resp.is_error(), "{resp:?}");
        let resp = c.request_line("TICK 1Jan97 11:30pm");
        assert!(!resp.is_error(), "{resp:?}");
        // Example 6.1: two notifications (initial results + Hakata).
        let Response::Rows(notes) = c.request_line("NOTES S1") else {
            panic!("NOTES must return rows")
        };
        assert_eq!(notes.len(), 2, "{notes:?}");
        // The subscription's DOEM is queryable.
        let resp = c.request_line("SUBQUERY S1 select Restaurants.restaurant");
        assert!(matches!(resp, Response::Rows(ref r) if !r.is_empty()), "{resp:?}");
        // And cleanly removable.
        assert!(!c.request_line("UNSUBSCRIBE S1").is_error());
        assert!(c.request_line("NOTES S1").is_error());
        svc.shutdown();
    }

    #[test]
    fn qss_ticks_do_not_invalidate_database_caches() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        c.request_line(
            "DEFINE polling query Restaurants as select guide.restaurant \
             define filter query NewRestaurants as \
             select Restaurants.restaurant<cre at T> where T > t[-1]",
        );
        c.request_line(
            "SUBSCRIBE S1 POLL Restaurants FILTER NewRestaurants FREQ every night at 11:30pm",
        );
        let q = "QUERY guide select guide.restaurant";
        let _ = c.request_line(q); // prime the guide shard cache
        assert!(!c.request_line("TICK 1Jan97 11:30pm").is_error());
        let hits_before = svc.metrics().cache_hits.load(Ordering::Relaxed);
        let _ = c.request_line(q);
        assert_eq!(
            svc.metrics().cache_hits.load(Ordering::Relaxed),
            hits_before + 1,
            "a QSS poll must not evict database query results"
        );
        svc.shutdown();
    }

    #[test]
    fn admission_control_rejects_when_queue_full() {
        // Zero workers is not allowed, so wedge the single worker with a
        // write while the queue (depth 1) fills up.
        let svc = guide_service(ServeConfig {
            workers: 1,
            queue_depth: 1,
            request_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        });
        let c = svc.client();
        // Saturate: submit from threads that will block on the reply.
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(thread::spawn(move || {
                c.request_line("QUERY guide select guide.restaurant")
            }));
        }
        let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let busy = responses
            .iter()
            .filter(|r| matches!(r, Response::Error { kind: ErrKind::Busy, .. }))
            .count();
        let ok = responses.iter().filter(|r| !r.is_error()).count();
        assert!(ok >= 1, "at least one query must get through: {responses:?}");
        // With 8 submitters, 1 worker and queue depth 1, rejections are
        // not guaranteed on any single run — but the busy counter must
        // agree with what we observed.
        assert_eq!(
            svc.metrics().busy_rejected.load(Ordering::Relaxed),
            busy as u64
        );
        svc.shutdown();
    }

    #[test]
    fn save_and_load_round_trip_through_store() {
        let dir = std::env::temp_dir().join(format!(
            "serve-store-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let svc = guide_service(ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let c = svc.client();
        let rows_before = c.query("guide", "select guide.restaurant").unwrap();
        assert!(!c.request_line("SAVE guide").is_error());
        svc.shutdown();

        let svc2 = Service::start(ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let c2 = svc2.client();
        assert!(!c2.request_line("LOAD guide").is_error());
        let rows_after = c2.query("guide", "select guide.restaurant").unwrap();
        assert_eq!(rows_before, rows_after);
        svc2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
