//! The service core: shared database state behind a [`RwLock`], a worker
//! pool fed by a bounded [`crossbeam`] channel, and the request executor.
//!
//! Concurrency model (one paragraph): sessions parse requests at the edge
//! and submit jobs to a bounded queue (`try_send` — a full queue is an
//! immediate `BUSY`, the admission-control contract). Workers pull jobs
//! and execute them against `RwLock<DbState>`: queries take the shared
//! read path (many run in parallel), updates/QSS polls take the exclusive
//! write path and bump the generation counter, which structurally
//! invalidates the result cache. The submitting session waits on a
//! single-slot reply channel with a deadline — a worker stuck on a slow
//! query turns into a `TIMEOUT` response instead of a hung session.

use crate::cache::{CacheKey, ResultCache};
use crate::metrics::Metrics;
use crate::protocol::{ErrKind, Request, Response};
use chorel::{canonical_row_strings, run_chorel_parsed, Strategy};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use doem::{apply_set, current_snapshot, doem_from_history, DoemDatabase};
use lorel::{run_update, QueryRegistry};
use oem::{History, OemDatabase, Timestamp};
use parking_lot::RwLock;
use qss::{QssServer, ScriptedSource, Source, Subscription};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// The source type the embedded QSS polls: any [`Source`], boxed. `Sync`
/// is required because the QSS lives under the service's `RwLock`.
pub type DynSource = Box<dyn Source + Sync>;

/// Background QSS driving: every `interval` of wall-clock time, advance
/// the simulated clock by `step_minutes` and run the polls that came due.
#[derive(Clone, Copy, Debug)]
pub struct AutoTick {
    /// Wall-clock period between ticks.
    pub interval: Duration,
    /// Simulated minutes per tick.
    pub step_minutes: i64,
}

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing requests (min 1).
    pub workers: usize,
    /// Bounded request-queue depth; a full queue rejects with `BUSY`.
    pub queue_depth: usize,
    /// How long a session waits for its reply before answering `TIMEOUT`.
    pub request_timeout: Duration,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Chorel evaluation strategy for queries.
    pub strategy: Strategy,
    /// Initial simulated time (QSS subscriptions start here).
    pub epoch: Timestamp,
    /// Drive the embedded QSS from a background thread.
    pub autotick: Option<AutoTick>,
    /// Directory for SAVE/LOAD persistence (no store when `None`).
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            request_timeout: Duration::from_secs(5),
            cache_capacity: 256,
            strategy: Strategy::Direct,
            epoch: Timestamp::from_ymd(1996, 12, 30),
            autotick: None,
            store_dir: None,
        }
    }
}

/// One database the service owns: the DOEM graph plus the plain-OEM
/// replica kept in lockstep (change validity is judged against the
/// replica, and Lorel update statements compile against it).
pub(crate) struct DbEntry {
    pub(crate) doem: DoemDatabase,
    pub(crate) replica: OemDatabase,
}

/// Everything behind the lock.
pub(crate) struct DbState {
    /// Write counter; every mutation bumps it, invalidating the cache.
    pub(crate) generation: u64,
    /// Simulated time (QSS polls run up to here).
    pub(crate) clock: Timestamp,
    pub(crate) dbs: HashMap<String, DbEntry>,
    pub(crate) registry: QueryRegistry,
    pub(crate) qss: QssServer<DynSource>,
    pub(crate) store: Option<lore::LoreStore>,
}

impl DbState {
    fn bump(&mut self, cache: &ResultCache) -> u64 {
        self.generation += 1;
        cache.retain_generation(self.generation);
        self.generation
    }
}

/// State shared by the service handle, every worker, and every client.
pub(crate) struct Shared {
    pub(crate) cfg: ServeConfig,
    pub(crate) state: RwLock<DbState>,
    pub(crate) cache: ResultCache,
    pub(crate) metrics: Metrics,
}

/// A queued unit of work.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) reply: Sender<Response>,
    pub(crate) enqueued: Instant,
}

/// The service handle: owns the worker pool and (optionally) the QSS
/// ticker. Create sessions with [`Service::client`], stop everything with
/// [`Service::shutdown`].
pub struct Service {
    pub(crate) shared: Arc<Shared>,
    job_tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    pub(crate) stop: Arc<AtomicBool>,
}

impl Service {
    /// Start a service over the paper's guide source (Example 6.1's
    /// scripted restaurant guide feeds the embedded QSS).
    pub fn start(cfg: ServeConfig) -> std::io::Result<Service> {
        Service::start_with_source(cfg, Box::new(ScriptedSource::paper_guide()))
    }

    /// Start a service polling the given source.
    pub fn start_with_source(cfg: ServeConfig, source: DynSource) -> std::io::Result<Service> {
        let store = match &cfg.store_dir {
            Some(dir) => Some(
                lore::LoreStore::open(dir)
                    .map_err(|e| std::io::Error::other(e.to_string()))?,
            ),
            None => None,
        };
        let state = DbState {
            generation: 1,
            clock: cfg.epoch,
            dbs: HashMap::new(),
            registry: QueryRegistry::new(),
            qss: QssServer::new(source).with_strategy(cfg.strategy),
            store,
        };
        let (job_tx, job_rx) = channel::bounded::<Job>(cfg.queue_depth.max(1));
        let shared = Arc::new(Shared {
            cache: ResultCache::new(cfg.cache_capacity),
            metrics: Metrics::new(),
            state: RwLock::new(state),
            cfg,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = job_rx.clone();
                let stop = Arc::clone(&stop);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx, &stop))
                    .expect("spawn worker")
            })
            .collect();
        let ticker = shared.cfg.autotick.map(|tick| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("serve-qss-ticker".into())
                .spawn(move || ticker_loop(&shared, tick, &stop))
                .expect("spawn ticker")
        });
        Ok(Service {
            shared,
            job_tx,
            workers,
            ticker,
            stop,
        })
    }

    /// Install a database built from an initial snapshot and a history
    /// (the name comes from the snapshot). Replaces any same-named
    /// database and invalidates the cache.
    pub fn install(&self, initial: &OemDatabase, history: &History) -> doem::Result<()> {
        let doem = doem_from_history(initial, history)?;
        let replica = current_snapshot(&doem);
        let mut st = self.shared.state.write();
        st.dbs.insert(doem.name().to_string(), DbEntry { doem, replica });
        st.bump(&self.shared.cache);
        Ok(())
    }

    /// A new in-process session sharing this service's worker pool.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            tx: self.job_tx.clone(),
        }
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Stop workers and the ticker and wait for them. In-flight requests
    /// finish; queued-but-unclaimed jobs are dropped (their sessions see
    /// a disconnect or timeout).
    pub fn shutdown(self) {
        let Service {
            shared: _,
            job_tx,
            workers,
            ticker,
            stop,
        } = self;
        stop.store(true, Ordering::SeqCst);
        drop(job_tx);
        for w in workers {
            let _ = w.join();
        }
        if let Some(t) = ticker {
            let _ = t.join();
        }
    }
}

/// An in-process session handle. Cloning is cheap; every clone shares the
/// service's queue, cache, and metrics.
#[derive(Clone)]
pub struct Client {
    pub(crate) shared: Arc<Shared>,
    tx: Sender<Job>,
}

impl Client {
    /// Parse one protocol line and execute it, honoring admission control
    /// and the request timeout. Never blocks longer than the configured
    /// timeout (plus queue admission, which is immediate).
    pub fn request_line(&self, line: &str) -> Response {
        let t = Instant::now();
        let parsed = crate::protocol::parse_request(line);
        self.shared.metrics.parse.record(t.elapsed());
        match parsed {
            Ok(req) => self.submit(req),
            Err(e) => {
                Metrics::bump(&self.shared.metrics.requests);
                Metrics::bump(&self.shared.metrics.errors);
                e.into()
            }
        }
    }

    /// Submit an already-parsed request.
    pub fn submit(&self, req: Request) -> Response {
        let m = &self.shared.metrics;
        Metrics::bump(&m.requests);
        Metrics::bump(if req.is_read() { &m.reads } else { &m.writes });
        let started = Instant::now();
        let (reply_tx, reply_rx) = channel::bounded(1);
        let job = Job {
            req,
            reply: reply_tx,
            enqueued: Instant::now(),
        };
        let resp = match self.tx.try_send(job) {
            Err(channel::TrySendError::Full(_)) => {
                Metrics::bump(&m.busy_rejected);
                Response::err(ErrKind::Busy, "request queue full, try again")
            }
            Err(channel::TrySendError::Disconnected(_)) => {
                Response::err(ErrKind::Internal, "service is shut down")
            }
            Ok(()) => match reply_rx.recv_timeout(self.shared.cfg.request_timeout) {
                Ok(resp) => resp,
                Err(_) => {
                    Metrics::bump(&m.timeouts);
                    Response::err(
                        ErrKind::Timeout,
                        format!(
                            "no reply within {:?}",
                            self.shared.cfg.request_timeout
                        ),
                    )
                }
            },
        };
        m.total.record(started.elapsed());
        if resp.is_error() {
            Metrics::bump(&m.errors);
        }
        resp
    }

    /// Convenience: run a query and return its canonical row strings.
    pub fn query(&self, db: &str, text: &str) -> Result<Vec<String>, (ErrKind, String)> {
        match self.request_line(&format!("QUERY {db} {text}")) {
            Response::Rows(rows) => Ok(rows),
            Response::Ok(msg) => Ok(vec![msg]),
            Response::Error { kind, message } => Err((kind, message)),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Receiver<Job>, stop: &AtomicBool) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => {
                shared.metrics.queue.record(job.enqueued.elapsed());
                let resp = execute(shared, job.req);
                // The session may have timed out and gone; that's fine.
                let _ = job.reply.send(resp);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn ticker_loop(shared: &Shared, tick: AutoTick, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        thread::sleep(tick.interval);
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut st = shared.state.write();
        let horizon = st.clock.plus_minutes(tick.step_minutes);
        if let Ok(polls) = st.qss.run_until(horizon) {
            st.clock = horizon;
            if polls > 0 {
                st.bump(&shared.cache);
                shared
                    .metrics
                    .qss_polls
                    .fetch_add(polls as u64, Ordering::Relaxed);
            }
        }
    }
}

fn not_found(what: &str, name: &str) -> Response {
    Response::err(ErrKind::NotFound, format!("no {what} named {name:?}"))
}

/// Run a parsed query against a DOEM database through the cache.
fn cached_query(
    shared: &Shared,
    scope: String,
    key: String,
    generation: u64,
    doem: &DoemDatabase,
    query: &lorel::ast::Query,
) -> Response {
    let ck = CacheKey {
        scope,
        canonical: key,
        generation,
    };
    if let Some(rows) = shared.cache.get(&ck) {
        Metrics::bump(&shared.metrics.cache_hits);
        return Response::Rows(rows.as_ref().clone());
    }
    Metrics::bump(&shared.metrics.cache_misses);
    let t = Instant::now();
    let outcome = run_chorel_parsed(doem, query, shared.cfg.strategy);
    shared.metrics.exec.record(t.elapsed());
    match outcome {
        Ok(result) => {
            let rows = canonical_row_strings(doem, &result);
            shared.cache.insert(ck, Arc::new(rows.clone()));
            Response::Rows(rows)
        }
        Err(e) => Response::err(ErrKind::Conflict, format!("query failed: {e}")),
    }
}

/// Execute one request against the shared state. Read requests take the
/// shared lock; everything else takes the exclusive lock.
pub(crate) fn execute(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Ping => Response::Ok("pong".into()),
        Request::Quit => Response::Ok("bye".into()),
        Request::Stats => Response::Rows(shared.metrics.render()),
        Request::Generation => {
            let g = shared.state.read().generation;
            Response::Ok(g.to_string())
        }
        Request::ListDbs => {
            let st = shared.state.read();
            let mut names: Vec<String> = st.dbs.keys().cloned().collect();
            names.sort();
            Response::Rows(names)
        }
        Request::Create { db } => {
            let mut st = shared.state.write();
            if st.dbs.contains_key(&db) {
                return Response::err(ErrKind::Conflict, format!("database {db:?} exists"));
            }
            let initial = OemDatabase::new(db.clone());
            st.dbs.insert(
                db.clone(),
                DbEntry {
                    doem: DoemDatabase::from_snapshot(&initial),
                    replica: initial,
                },
            );
            let g = st.bump(&shared.cache);
            Response::Ok(format!("created {db}; generation {g}"))
        }
        Request::Save { db } => {
            let st = shared.state.read();
            let Some(store) = &st.store else {
                return Response::err(ErrKind::Io, "no store configured");
            };
            let Some(entry) = st.dbs.get(&db) else {
                return not_found("database", &db);
            };
            match store.save_doem(&db, &entry.doem) {
                Ok(()) => Response::Ok(format!("saved {db}")),
                Err(e) => Response::err(ErrKind::Io, format!("save failed: {e}")),
            }
        }
        Request::Load { db } => {
            let mut st = shared.state.write();
            if st.store.is_none() {
                return Response::err(ErrKind::Io, "no store configured");
            }
            let loaded = st.store.as_ref().expect("checked above").load_doem(&db);
            match loaded {
                Ok(doem) => {
                    let replica = current_snapshot(&doem);
                    st.dbs.insert(db.clone(), DbEntry { doem, replica });
                    let g = st.bump(&shared.cache);
                    Response::Ok(format!("loaded {db}; generation {g}"))
                }
                Err(e) => Response::err(ErrKind::NotFound, format!("load failed: {e}")),
            }
        }
        Request::Query { db, query, key } => {
            let st = shared.state.read();
            let Some(entry) = st.dbs.get(&db) else {
                return not_found("database", &db);
            };
            cached_query(shared, db, key, st.generation, &entry.doem, &query)
        }
        Request::SubQuery { id, query, key } => {
            let st = shared.state.read();
            let Some(doem) = st.qss.doem_of(&id) else {
                return Response::err(
                    ErrKind::NotFound,
                    format!("no DOEM for subscription {id:?} (not yet polled?)"),
                );
            };
            cached_query(shared, format!("sub:{id}"), key, st.generation, doem, &query)
        }
        Request::Update { db, at, changes } => {
            let mut st = shared.state.write();
            let Some(entry) = st.dbs.get_mut(&db) else {
                return not_found("database", &db);
            };
            let t = Instant::now();
            let outcome = apply_set(&mut entry.doem, &mut entry.replica, &changes, at);
            shared.metrics.exec.record(t.elapsed());
            match outcome {
                Ok(()) => {
                    let g = st.bump(&shared.cache);
                    Response::Ok(format!("applied {} ops at {at}; generation {g}", changes.len()))
                }
                Err(e) => Response::err(ErrKind::Conflict, format!("change set rejected: {e}")),
            }
        }
        Request::Mutate { db, at, stmt } => {
            let mut st = shared.state.write();
            let Some(entry) = st.dbs.get_mut(&db) else {
                return not_found("database", &db);
            };
            let t = Instant::now();
            let compiled = match run_update(&entry.replica, &stmt) {
                Ok(c) => c,
                Err(e) => {
                    shared.metrics.exec.record(t.elapsed());
                    return Response::err(ErrKind::Conflict, format!("update rejected: {e}"));
                }
            };
            let outcome = apply_set(&mut entry.doem, &mut entry.replica, &compiled.changes, at);
            shared.metrics.exec.record(t.elapsed());
            match outcome {
                Ok(()) => {
                    let g = st.bump(&shared.cache);
                    Response::Ok(format!(
                        "applied {} ops ({} created) at {at}; generation {g}",
                        compiled.changes.len(),
                        compiled.created.len()
                    ))
                }
                Err(e) => Response::err(ErrKind::Conflict, format!("change set rejected: {e}")),
            }
        }
        Request::Define { program } => {
            let mut st = shared.state.write();
            match st.registry.load(&program) {
                Ok(_) => Response::Ok(format!(
                    "defined; registry has {} queries",
                    st.registry.names().len()
                )),
                Err(e) => Response::err(ErrKind::Syntax, e.to_string()),
            }
        }
        Request::Subscribe {
            id,
            polling,
            filter,
            freq,
        } => {
            let mut st = shared.state.write();
            if st.qss.subscription_ids().iter().any(|s| s == &id) {
                return Response::err(ErrKind::Conflict, format!("subscription {id:?} exists"));
            }
            let sub =
                match Subscription::from_registry(id.clone(), freq, &st.registry, &polling, &filter)
                {
                    Ok(sub) => sub,
                    Err(e) => return Response::err(ErrKind::NotFound, e.to_string()),
                };
            let clock = st.clock;
            st.qss.subscribe(sub, clock);
            let g = st.bump(&shared.cache);
            Response::Ok(format!("subscribed {id} at {clock}; generation {g}"))
        }
        Request::Unsubscribe { id } => {
            let mut st = shared.state.write();
            if !st.qss.subscription_ids().iter().any(|s| s == &id) {
                return not_found("subscription", &id);
            }
            st.qss.unsubscribe(&id);
            let g = st.bump(&shared.cache);
            Response::Ok(format!("unsubscribed {id}; generation {g}"))
        }
        Request::Tick { until } => {
            let mut st = shared.state.write();
            if until <= st.clock {
                return Response::Ok(format!("clock already at {}", st.clock));
            }
            let t = Instant::now();
            let outcome = st.qss.run_until(until);
            shared.metrics.exec.record(t.elapsed());
            match outcome {
                Ok(polls) => {
                    st.clock = until;
                    shared
                        .metrics
                        .qss_polls
                        .fetch_add(polls as u64, Ordering::Relaxed);
                    let g = if polls > 0 {
                        st.bump(&shared.cache)
                    } else {
                        st.generation
                    };
                    Response::Ok(format!("clock {until}; {polls} polls; generation {g}"))
                }
                Err(e) => Response::err(ErrKind::Conflict, format!("qss poll failed: {e}")),
            }
        }
        Request::Notes { id } => {
            let st = shared.state.read();
            if id != "*" && !st.qss.subscription_ids().iter().any(|s| s == &id) {
                return not_found("subscription", &id);
            }
            let rows = st
                .qss
                .notifications()
                .iter()
                .filter(|n| id == "*" || n.subscription == id)
                .map(|n| format!("{} at {}: {} rows", n.subscription, n.at, n.rows()))
                .collect();
            Response::Rows(rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oem::guide::{guide_figure2, history_example_2_3};

    fn guide_service(cfg: ServeConfig) -> Service {
        let svc = Service::start(cfg).unwrap();
        svc.install(&guide_figure2(), &history_example_2_3()).unwrap();
        svc
    }

    #[test]
    fn ping_stats_gen_dbs() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        assert_eq!(c.request_line("PING"), Response::Ok("pong".into()));
        assert_eq!(c.request_line("GEN"), Response::Ok("2".into()));
        assert_eq!(
            c.request_line("DBS"),
            Response::Rows(vec!["guide".into()])
        );
        let Response::Rows(stats) = c.request_line("STATS") else {
            panic!("STATS must return rows")
        };
        assert!(stats.iter().any(|l| l.starts_with("counter requests ")));
        svc.shutdown();
    }

    #[test]
    fn queries_hit_the_cache_until_a_write() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        let q = "QUERY guide select guide.restaurant";
        let first = c.request_line(q);
        let second = c.request_line(q);
        assert_eq!(first, second);
        assert!(matches!(first, Response::Rows(ref r) if !r.is_empty()));
        let hits = svc.metrics().cache_hits.load(Ordering::Relaxed);
        assert_eq!(hits, 1, "second identical query must hit the cache");

        // A write invalidates: same text, fresh evaluation, new rows.
        let resp =
            c.request_line("UPDATE guide AT 1Mar97 9:00am ; {creNode(n95, \"Via Mare\"), addArc(n4, restaurant, n95)}");
        assert!(!resp.is_error(), "{resp:?}");
        let third = c.request_line(q);
        let Response::Rows(rows3) = &third else {
            panic!("query after update failed: {third:?}")
        };
        let Response::Rows(rows1) = &first else { unreachable!() };
        assert_eq!(rows3.len(), rows1.len() + 1);
        svc.shutdown();
    }

    #[test]
    fn whitespace_variants_share_one_cache_entry() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        let a = c.request_line("QUERY guide select guide.restaurant");
        let b = c.request_line("QUERY guide select   guide . restaurant");
        assert_eq!(a, b);
        assert_eq!(svc.metrics().cache_hits.load(Ordering::Relaxed), 1);
        svc.shutdown();
    }

    #[test]
    fn chorel_annotations_and_errors() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        let resp = c.request_line("QUERY guide select guide.<add at T>restaurant where T > 1Jan97");
        assert!(matches!(resp, Response::Rows(_)), "{resp:?}");
        let resp = c.request_line("QUERY nosuch select x.y");
        assert!(matches!(resp, Response::Error { kind: ErrKind::NotFound, .. }), "{resp:?}");
        let resp = c.request_line("QUERY guide selec x.y");
        assert!(matches!(resp, Response::Error { kind: ErrKind::Syntax, .. }), "{resp:?}");
        svc.shutdown();
    }

    #[test]
    fn mutate_compiles_against_live_snapshot() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        let resp = c.request_line(
            "MUTATE guide AT 5Mar97 1:00pm ; update X.price := 99 from guide.restaurant X",
        );
        // Whichever update-grammar shape the seed supports, the request
        // must not be silently dropped: either applied or a typed error.
        match resp {
            Response::Ok(msg) => assert!(msg.contains("generation")),
            Response::Error { kind, .. } => {
                assert!(matches!(kind, ErrKind::Conflict | ErrKind::Syntax))
            }
            other => panic!("unexpected: {other:?}"),
        }
        svc.shutdown();
    }

    #[test]
    fn qss_subscription_lifecycle_example_6_1() {
        let svc = guide_service(ServeConfig::default());
        let c = svc.client();
        let resp = c.request_line(
            "DEFINE polling query Restaurants as select guide.restaurant \
             define filter query NewRestaurants as \
             select Restaurants.restaurant<cre at T> where T > t[-1]",
        );
        assert_eq!(resp, Response::Ok("defined; registry has 2 queries".into()));
        let resp = c.request_line(
            "SUBSCRIBE S1 POLL Restaurants FILTER NewRestaurants FREQ every night at 11:30pm",
        );
        assert!(!resp.is_error(), "{resp:?}");
        let resp = c.request_line("TICK 1Jan97 11:30pm");
        assert!(!resp.is_error(), "{resp:?}");
        // Example 6.1: two notifications (initial results + Hakata).
        let Response::Rows(notes) = c.request_line("NOTES S1") else {
            panic!("NOTES must return rows")
        };
        assert_eq!(notes.len(), 2, "{notes:?}");
        // The subscription's DOEM is queryable.
        let resp = c.request_line("SUBQUERY S1 select Restaurants.restaurant");
        assert!(matches!(resp, Response::Rows(ref r) if !r.is_empty()), "{resp:?}");
        // And cleanly removable.
        assert!(!c.request_line("UNSUBSCRIBE S1").is_error());
        assert!(c.request_line("NOTES S1").is_error());
        svc.shutdown();
    }

    #[test]
    fn admission_control_rejects_when_queue_full() {
        // Zero workers is not allowed, so wedge the single worker with a
        // write while the queue (depth 1) fills up.
        let svc = guide_service(ServeConfig {
            workers: 1,
            queue_depth: 1,
            request_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        });
        let c = svc.client();
        // Saturate: submit from threads that will block on the reply.
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(thread::spawn(move || {
                c.request_line("QUERY guide select guide.restaurant")
            }));
        }
        let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let busy = responses
            .iter()
            .filter(|r| matches!(r, Response::Error { kind: ErrKind::Busy, .. }))
            .count();
        let ok = responses.iter().filter(|r| !r.is_error()).count();
        assert!(ok >= 1, "at least one query must get through: {responses:?}");
        // With 8 submitters, 1 worker and queue depth 1, rejections are
        // not guaranteed on any single run — but the busy counter must
        // agree with what we observed.
        assert_eq!(
            svc.metrics().busy_rejected.load(Ordering::Relaxed),
            busy as u64
        );
        svc.shutdown();
    }

    #[test]
    fn save_and_load_round_trip_through_store() {
        let dir = std::env::temp_dir().join(format!(
            "serve-store-{}-{:?}",
            std::process::id(),
            thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let svc = guide_service(ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let c = svc.client();
        let rows_before = c.query("guide", "select guide.restaurant").unwrap();
        assert!(!c.request_line("SAVE guide").is_error());
        svc.shutdown();

        let svc2 = Service::start(ServeConfig {
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let c2 = svc2.client();
        assert!(!c2.request_line("LOAD guide").is_error());
        let rows_after = c2.query("guide", "select guide.restaurant").unwrap();
        assert_eq!(rows_before, rows_after);
        svc2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
